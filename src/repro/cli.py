"""Command-line tools: generate, encode, inspect, analyze.

``python -m repro.cli <command>`` gives the library a shell-level surface
for the common dataset chores:

* ``generate``  — write a synthetic CosmoFlow/DeepCAM dataset to a
  TFRecord-style file, raw or plugin-encoded (optionally gzip).
* ``inspect``   — print a record file's per-sample codec, sizes, shapes.
* ``analyze``   — Fig-5-style compressibility statistics for a record file.
* ``bench``     — time decode throughput of a record file on this machine.
* ``stats``     — codec-level statistics of encoded samples (line modes,
  table sizes, compression); ``--all`` instead emits one merged
  document over every subsystem (loader, pipeline, tiers, remote
  server, cluster, ingest) with a stable key schema.
* ``verify``    — integrity-check every container in a record file
  (container-v2 CRC32s); non-zero exit when corruption is found.
* ``chaos``     — run epochs over a record file under seeded fault
  injection with retries and a bad-sample policy; prints the retry and
  quarantine report.
* ``tune``      — cost-model-driven search for the fastest pipeline
  configuration on a simulated machine (``repro.tune``); prints the
  winner, the paper's hand-chosen baseline, and the ranked trial log.
* ``vectors``   — generate (once) or verify (always) the golden-vector
  conformance corpus (``repro.conformance.vectors``).
* ``fuzz``      — differential fuzzing of every codec implementation,
  count- or time-budgeted, with crash-corpus save/replay
  (``repro.conformance.fuzzer``); non-zero exit on any disagreement.
* ``serve``     — run a :class:`repro.serve.DataServer` over a record
  file (or, with ``--ingest-dir``, over a live ingest directory with
  manifest-pinned epoch coordination): networked sample serving with a
  shared verify-before-cache, bounded connections, and shard-aware
  epoch coordination; drains gracefully on SIGINT/SIGTERM.
* ``ingest``    — online ingestion (``repro.ingest``): ``append``
  encodes deterministic synthetic samples into an append-only shard
  directory (publishing snapshot manifests as it goes), ``status``
  reports committed/torn bytes and the manifest history, ``recover``
  truncates torn shard tails after a crash.
* ``manifest``  — inspect the snapshot-manifest history of an ingest
  directory: ``list`` the published chain, ``show`` one manifest,
  ``verify`` a manifest against the shard bytes on disk (non-zero exit
  on mismatch).
* ``fetch``     — client of a running server: health/info/stats probes,
  sample fetches by explicit indices or by ``EPOCH``-coordinated shard,
  optional integrity verification and record-file export.
* ``cluster``   — fault-tolerant serving fleet (``repro.cluster``):
  ``start`` runs a dispatcher plus N replicated workers over a record
  file (draining gracefully on SIGINT/SIGTERM), ``status`` prints a
  running dispatcher's membership/lease/routing view, ``drain`` removes
  one worker from the routing table without dropping in-flight clients.
* ``tiers``     — drive a record file through a RAM → NVMe tier
  hierarchy (``repro.tiering``) for a few probe epochs, migrating hot
  samples between them, then report ``status`` (per-level hit rates and
  counters), ``plan`` (the pending migration moves) or ``migrate`` (one
  more applied cycle).
* ``graph``     — the preprocessing-graph compiler (``repro.graph``):
  ``show`` prints a workload's declared preprocessing DAG (nodes,
  attributes, derived conflict edges); ``optimize`` compiles the naive
  and optimized plans side by side with the pass trace and cost terms,
  and with ``--check`` differentially executes both over the record
  file, exiting non-zero unless every surviving sample is bit-identical.

* ``trace``     — the observability plane (``repro.observe``):
  ``record`` runs traced epochs over a record file and writes the
  per-sample span trees to a trace JSON file; ``export`` renders a
  trace file as a ``chrome://tracing`` timeline, flamegraph.pl folded
  stacks, or a text tree; ``top`` prints the per-span-name time table
  from a trace file or scraped live from a running server's METRICS op.

``bench``, ``stats``, ``tune``, ``vectors verify``, ``fuzz``, ``serve``,
``fetch``, ``cluster``, ``tiers``, ``graph``, ``ingest``, ``manifest``
and ``trace`` accept ``--json`` for machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.encoding import analysis, container
from repro.core.plugins import (
    CosmoflowBaselinePlugin,
    CosmoflowLutPlugin,
    DeepcamBaselinePlugin,
    DeepcamDeltaPlugin,
)
from repro.datasets import cosmoflow, deepcam
from repro.experiments.harness import print_table
from repro.storage import tfrecord

__all__ = ["main"]

_PLUGINS = {
    ("cosmoflow", "base"): CosmoflowBaselinePlugin,
    ("cosmoflow", "plugin"): lambda: CosmoflowLutPlugin("cpu"),
    ("deepcam", "base"): DeepcamBaselinePlugin,
    ("deepcam", "plugin"): lambda: DeepcamDeltaPlugin("cpu"),
}


def _make_plugin(workload: str, representation: str):
    factory = _PLUGINS.get((workload, representation))
    if factory is None:
        raise SystemExit(
            f"no {representation!r} representation for {workload!r}"
        )
    return factory()


def cmd_generate(args) -> int:
    plugin = _make_plugin(args.workload, args.representation)
    if args.workload == "cosmoflow":
        cfg = cosmoflow.CosmoflowConfig(grid=args.size)
        samples = cosmoflow.generate_dataset(args.count, cfg, seed=args.seed)
    else:
        cfg = deepcam.DeepcamConfig(height=args.size, width=args.size + args.size // 2)
        samples = deepcam.generate_dataset(args.count, cfg, seed=args.seed)
    compression = "gzip" if args.gzip else None
    with tfrecord.TfRecordWriter(args.output, compression=compression) as w:
        for s in samples:
            w.write(plugin.encode(s.data, s.label))
    size = Path(args.output).stat().st_size
    print(
        f"wrote {args.count} {args.workload}/{args.representation} samples "
        f"to {args.output} ({size / 1e6:.2f} MB"
        f"{', gzip' if args.gzip else ''})"
    )
    return 0


def _iter_samples(path: str, gzip_flag: bool):
    compression = "gzip" if gzip_flag else None
    yield from tfrecord.iter_records(path, compression)


def cmd_inspect(args) -> int:
    rows = []
    total = 0
    for i, blob in enumerate(_iter_samples(args.input, args.gzip)):
        codec, payload, label, _ = container.unpack_sample(blob)
        if codec == "raw":
            shape = tuple(payload.shape)
        elif codec == "delta":
            shape = (len(payload),) + payload[0].shape
        else:
            shape = payload.shape
        rows.append([i, codec, str(shape), len(blob), str(label.dtype)])
        total += len(blob)
    print_table(["sample", "codec", "shape", "bytes", "label dtype"], rows)
    print(f"total: {len(rows)} samples, {total / 1e6:.2f} MB")
    return 0


def cmd_analyze(args) -> int:
    rows = []
    for i, blob in enumerate(_iter_samples(args.input, args.gzip)):
        codec, payload, _, _ = container.unpack_sample(blob)
        if codec != "raw":
            raise SystemExit("analyze expects raw (baseline) containers")
        st = analysis.analyze_cosmoflow_sample(payload)
        rows.append(
            [i, st.n_unique_values, st.n_unique_groups,
             f"{st.powerlaw_slope:.2f}",
             "yes" if st.keys_fit_16bit else "NO"]
        )
    print_table(
        ["sample", "unique values", "unique groups", "slope", "16-bit keys"],
        rows,
    )
    return 0


def cmd_bench(args) -> int:
    plugin = _make_plugin(args.workload, args.representation)
    blobs = list(_iter_samples(args.input, args.gzip))
    if not blobs:
        raise SystemExit("no records in input")
    t0 = time.perf_counter()
    decoded_bytes = 0
    for blob in blobs:
        tensor, _ = plugin.decode_cpu(blob)
        decoded_bytes += tensor.nbytes
    dt = time.perf_counter() - t0
    if args.json:
        print(json.dumps({
            "workload": args.workload,
            "representation": args.representation,
            "samples": len(blobs),
            "elapsed_s": dt,
            "samples_per_s": len(blobs) / dt,
            "decoded_bytes": decoded_bytes,
            "decoded_mb_per_s": decoded_bytes / dt / 1e6,
        }, indent=2))
        return 0
    print(
        f"decoded {len(blobs)} samples in {dt:.3f}s — "
        f"{len(blobs) / dt:.1f} samples/s, "
        f"{decoded_bytes / dt / 1e6:.1f} MB/s decoded"
    )
    return 0


def _pipeline_counters(args, blobs) -> dict:
    """Run one graph-compiled epoch and collect ``pipeline.*`` counters."""
    from repro.pipeline import DataLoader, ListSource

    plugin = _make_plugin(args.workload, args.representation)
    loader = DataLoader(
        ListSource(blobs), plugin, batch_size=2, shuffle=False, graph=True
    )
    for _ in loader.batches(0):
        pass
    return {
        name: {"count": n, "seconds": seconds}
        for name, (n, seconds) in sorted(loader.stats.snapshot().items())
        if name.startswith("pipeline.")
    }


_MERGED_STATS_KEYS = (
    "loader", "pipeline", "tiers", "remote", "cluster", "ingest"
)


def _merged_stats(args) -> dict:
    """One document over every subsystem (``repro stats --all``).

    The key schema is stable: every subsystem key is always present,
    ``null`` when that subsystem was not probed — so dashboards can
    index ``doc["cluster"]["workers"]`` without existence checks.
    Local sections (loader/pipeline) need ``--workload``; tiers need
    ``--tiers``; remote/cluster/ingest attach to running systems via
    ``--port`` / ``--dispatcher-port`` / ``--ingest-dir``.
    """
    from repro.pipeline import DataLoader, ListSource

    blobs = list(_iter_samples(args.input, args.gzip))
    out: dict = {
        "schema": 1,
        "input": args.input,
        "samples": {
            "n": len(blobs),
            "bytes": sum(len(b) for b in blobs),
        },
        **{key: None for key in _MERGED_STATS_KEYS},
    }
    if args.workload:
        plugin = _make_plugin(args.workload, args.representation)
        loader = DataLoader(
            ListSource(blobs), plugin, batch_size=2, shuffle=False,
            graph=True,
        )
        for _ in loader.batches(0):
            pass
        snap = loader.stats.snapshot()

        def section(prefixes: set) -> dict:
            return {
                name: {"count": n, "seconds": seconds}
                for name, (n, seconds) in sorted(snap.items())
                if name.split(".", 1)[0] in prefixes
            }

        out["loader"] = section({"loader", "executor", "cache", "source",
                                 "retry"})
        out["pipeline"] = section({"pipeline"})
    if args.tiers:
        out["tiers"] = _probe_tiers(args).status()
    if args.port:
        from repro.serve import RemoteSource

        try:
            with RemoteSource(
                args.host, args.port, timeout_s=args.timeout_s
            ) as src:
                out["remote"] = src.metrics()
        except OSError as exc:
            raise SystemExit(f"cannot reach {args.host}:{args.port}: {exc}")
    if args.dispatcher_port:
        from repro.cluster.dispatcher import dispatcher_call
        from repro.serve import protocol

        try:
            out["cluster"] = dispatcher_call(
                args.host, args.dispatcher_port, protocol.OP_LEASE,
                {"action": "status"}, timeout_s=args.timeout_s,
            )
        except OSError as exc:
            raise SystemExit(
                f"cannot reach dispatcher {args.host}:"
                f"{args.dispatcher_port}: {exc}"
            )
    if args.ingest_dir:
        out["ingest"] = _ingest_status(Path(args.ingest_dir))
    return out


def cmd_stats(args) -> int:
    from repro.core.encoding.delta import LINE_CONST, LINE_DELTA, LINE_RAW

    if args.all:
        out = _merged_stats(args)
        if args.json:
            print(json.dumps(out, indent=2))
            return 0
        print(
            f"{out['samples']['n']} sample(s), "
            f"{out['samples']['bytes'] / 1e6:.2f} MB"
        )
        for key in _MERGED_STATS_KEYS:
            sec = out[key]
            print(
                f"{key}: " + ("not probed" if sec is None
                              else f"{len(sec)} key(s)")
            )
        return 0

    rows = []
    records = []
    blobs = list(_iter_samples(args.input, args.gzip))
    for i, blob in enumerate(blobs):
        codec, payload, _, _ = container.unpack_sample(blob)
        if codec == "delta":
            modes = np.concatenate([c.line_modes for c in payload])
            hist = np.bincount(modes, minlength=3)
            decoded = sum(2 * c.shape[0] * c.shape[1] for c in payload)
            rows.append([
                i, "delta",
                f"C:{hist[LINE_CONST]} D:{hist[LINE_DELTA]} "
                f"R:{hist[LINE_RAW]}",
                f"{decoded / len(blob):.2f}x vs fp16",
            ])
            records.append({
                "sample": i, "codec": "delta", "bytes": len(blob),
                "lines_const": int(hist[LINE_CONST]),
                "lines_delta": int(hist[LINE_DELTA]),
                "lines_raw": int(hist[LINE_RAW]),
                "compression_vs_fp16": decoded / len(blob),
            })
        elif codec == "lut":
            keys = sum(t.keys.nbytes for t in payload.tables)
            tables = sum(t.values.nbytes for t in payload.tables)
            rows.append([
                i, "lut",
                f"{payload.n_groups_total} groups, "
                f"{len(payload.tables)} table(s)",
                f"keys {keys}B + tables {tables}B",
            ])
            records.append({
                "sample": i, "codec": "lut", "bytes": len(blob),
                "groups": int(payload.n_groups_total),
                "tables": len(payload.tables),
                "key_bytes": int(keys), "table_bytes": int(tables),
            })
        else:
            rows.append([i, "raw", "-", f"{len(blob)}B"])
            records.append({"sample": i, "codec": "raw", "bytes": len(blob)})
    pipeline = None
    if args.pipeline:
        if not args.workload:
            raise SystemExit("--pipeline needs --workload")
        pipeline = _pipeline_counters(args, blobs)
    if args.json:
        out = {"input": args.input, "samples": records}
        if args.tiers:
            out["tiers"] = _probe_tiers(args).status()
        if pipeline is not None:
            out["pipeline"] = pipeline
        print(json.dumps(out, indent=2))
        return 0
    print_table(["sample", "codec", "structure", "size detail"], rows)
    if args.tiers:
        _print_tier_status(_probe_tiers(args).status())
    if pipeline is not None:
        print_table(
            ["stage", "items", "seconds"],
            [
                [name.removeprefix("pipeline."), c["count"],
                 f"{c['seconds']:.4f}"]
                for name, c in pipeline.items()
            ],
        )
    return 0


def cmd_verify(args) -> int:
    rows = []
    bad = 0
    samples = enumerate(_iter_samples(args.input, args.gzip))
    while True:
        try:
            i, blob = next(samples)
        except StopIteration:
            break
        except ValueError as exc:
            # the record framing itself is damaged; nothing after this
            # point in the file can be trusted, so report and stop
            bad += 1
            rows.append([len(rows), "?", "CORRUPT (record framing)"])
            if args.verbose:
                print(f"record framing: {exc}", file=sys.stderr)
            break
        try:
            version = container.verify_sample(blob, sample_id=i)
        except ValueError as exc:  # includes CorruptSampleError
            bad += 1
            section = getattr(exc, "section", "structure") or "structure"
            rows.append([i, "?", f"CORRUPT ({section})"])
            if args.verbose:
                print(f"sample {i}: {exc}", file=sys.stderr)
        else:
            rows.append([i, f"v{version}",
                         "ok" if version >= 2 else "ok (no checksums)"])
    print_table(["sample", "format", "integrity"], rows)
    print(f"{len(rows)} samples, {bad} corrupt")
    return 1 if bad else 0


def cmd_chaos(args) -> int:
    from repro.pipeline import DataLoader, ListSource
    from repro.robust import (
        FaultInjector,
        FaultPlan,
        RetryingSource,
        RetryPolicy,
    )

    plugin = _make_plugin(args.workload, args.representation)
    blobs = list(_iter_samples(args.input, args.gzip))
    if not blobs:
        raise SystemExit("no records in input")
    try:
        corrupt_ids = frozenset(
            int(t) for t in args.corrupt.split(",") if t.strip() != ""
        )
    except ValueError:
        raise SystemExit(
            f"--corrupt expects a comma-separated list of sample ids, "
            f"got {args.corrupt!r}"
        )
    try:
        plan = FaultPlan(
            io_error_rate=args.io_error_rate,
            truncate_rate=args.truncate_rate,
            bitflip_rate=args.bitflip_rate,
            latency_rate=args.latency_rate,
            latency_s=args.latency_s,
            corrupt_ids=corrupt_ids,
            seed=args.seed,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid fault plan: {exc}")
    injector = FaultInjector(ListSource(blobs), plan)
    source = RetryingSource(
        injector,
        RetryPolicy(
            max_attempts=args.retries,
            base_delay_s=args.backoff_s,
            timeout_s=args.read_timeout_s,
        ),
        verify=True,
        seed=args.seed,
    )
    loader = DataLoader(
        source,
        plugin,
        batch_size=args.batch_size,
        shuffle=True,
        seed=args.seed,
        num_workers=args.workers,
        bad_sample_policy=args.policy,
        verify_reads=True,
    )
    n_batches = n_samples = 0
    try:
        for epoch in range(args.epochs):
            for batch, _ in loader.batches(epoch):
                n_batches += 1
                n_samples += batch.shape[0]
    except Exception as exc:
        idx = getattr(exc, "sample_index", "?")
        print(f"epoch aborted at sample {idx}: {exc}", file=sys.stderr)
        return 1
    finally:
        rs, fs = source.stats, injector.stats
        print(
            f"chaos: {n_samples} samples / {n_batches} batches over "
            f"{args.epochs} epoch(s) [policy={args.policy}]"
        )
        print(
            f"faults injected: {dict(fs.injected) or 'none'} "
            f"over {fs.reads} reads"
        )
        print(
            f"retries: {rs.retries}, aborts: {rs.aborts}, "
            f"verify failures: {rs.verify_failures}, "
            f"backoff {rs.backoff_seconds * 1e3:.1f} ms"
        )
        print(loader.quarantine.report())
    return 0


def cmd_serve(args) -> int:
    import signal
    import threading

    from repro.pipeline.sources import ListSource, TfRecordSource
    from repro.serve import DataServer
    from repro.storage.cache import SampleCache

    coordinator = None
    manifest_store = None
    if args.ingest_dir:
        if args.input:
            raise SystemExit("pass either --input or --ingest-dir, not both")
        from repro.ingest import (
            LiveIngestSource,
            ManifestEpochCoordinator,
            ManifestStore,
        )

        source = LiveIngestSource(args.ingest_dir)
        manifest_store = ManifestStore(args.ingest_dir)
        coordinator = ManifestEpochCoordinator(
            manifest_store, world_size=args.world_size, seed=args.seed
        )
    elif not args.input:
        raise SystemExit("one of --input or --ingest-dir is required")
    elif args.gzip:
        # gzip permits only sequential access: materialize, then serve
        source = ListSource(list(_iter_samples(args.input, True)))
    else:
        source = TfRecordSource(args.input)
    if len(source) == 0 and not args.ingest_dir:
        raise SystemExit("no records in input")
    cache = (
        SampleCache(args.cache_mb * 1e6) if args.cache_mb > 0 else None
    )
    recorder = None
    if args.trace:
        from repro.observe import TraceRecorder

        recorder = TraceRecorder(
            sample_rate=args.trace_sample_rate, seed=args.seed,
            proc="server",
        )
    server = DataServer(
        source,
        host=args.host,
        port=args.port,
        cache=cache,
        verify=True if args.verify else None,
        max_connections=args.max_connections,
        world_size=args.world_size,
        seed=args.seed,
        coordinator=coordinator,
        manifest_store=manifest_store,
        service_delay_s=args.service_delay_ms / 1e3,
        trace=recorder,
    )
    server.start()
    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, lambda *_: stop.set())
        except ValueError:  # not the main thread (tests)
            pass
    info = {**server.info(), "host": server.address[0],
            "port": server.address[1]}
    if args.json:
        print(json.dumps(info), flush=True)
    else:
        print(
            f"serving {info['n_samples']} samples on "
            f"{info['host']}:{info['port']} "
            f"(world_size={info['world_size']}, "
            f"cache={'%.0f MB' % args.cache_mb if cache is not None else 'off'}, "
            f"max_connections={args.max_connections}) — Ctrl-C to drain",
            flush=True,
        )
    stop.wait(timeout=args.duration_s)
    server.close(drain=True)
    snap = server.stats.snapshot()
    reads, read_s = snap.get("serve.read", (0, 0.0))
    _, read_bytes = snap.get("serve.read.bytes", (0, 0.0))
    summary = {
        "reads": reads,
        "read_seconds": read_s,
        "read_bytes": int(read_bytes),
        "connections": snap.get("serve.connections", (0, 0.0))[0],
        "errors": snap.get("serve.errors", (0, 0.0))[0],
    }
    if args.json:
        print(json.dumps({"drained": True, **summary}))
    else:
        print(
            f"drained: served {summary['reads']} reads "
            f"({summary['read_bytes'] / 1e6:.2f} MB) over "
            f"{summary['connections']} connection(s), "
            f"{summary['errors']} error(s)"
        )
    return 0


def cmd_fetch(args) -> int:
    from repro.serve import RemoteSource

    try:
        src = RemoteSource(args.host, args.port, timeout_s=args.timeout_s)
    except OSError as exc:
        raise SystemExit(f"cannot reach {args.host}:{args.port}: {exc}")
    with src:
        if args.health or args.stats_only or args.info:
            report = (
                src.health() if args.health
                else src.stats_report() if args.stats_only
                else src.info()
            )
            if args.json:
                print(json.dumps(report, indent=2))
            else:
                for key, val in report.items():
                    print(f"{key}: {val}")
            return 0

        manifest_id = None
        if args.epoch is not None:
            if args.manifest:
                manifest_id, _, shard = src.epoch_shard_manifest(
                    args.rank, args.epoch
                )
                indices = shard.tolist()
            else:
                indices = src.epoch_shard(args.rank, args.epoch).tolist()
        elif args.indices:
            try:
                indices = [int(t) for t in args.indices.split(",") if t.strip()]
            except ValueError:
                raise SystemExit(
                    f"--indices expects comma-separated ints, got "
                    f"{args.indices!r}"
                )
        else:
            indices = list(range(len(src)))

        writer = (
            tfrecord.TfRecordWriter(args.output) if args.output else None
        )
        t0 = time.perf_counter()
        total = 0
        bad = 0
        try:
            for i in indices:
                try:
                    blob = src.read(i)
                except container.CorruptSampleError as exc:
                    # a verifying server refuses the sample outright
                    bad += 1
                    print(f"sample {i}: {exc}", file=sys.stderr)
                    continue
                total += len(blob)
                if args.verify:
                    try:
                        container.verify_sample(blob, sample_id=i)
                    except ValueError as exc:
                        bad += 1
                        print(f"sample {i}: {exc}", file=sys.stderr)
                        continue
                if writer is not None:
                    writer.write(blob)
        finally:
            if writer is not None:
                writer.close()
        dt = time.perf_counter() - t0
        result = {
            "samples": len(indices),
            "bytes": total,
            "elapsed_s": dt,
            "samples_per_s": len(indices) / dt if dt > 0 else 0.0,
            "mb_per_s": total / dt / 1e6 if dt > 0 else 0.0,
            "corrupt": bad,
        }
        if args.epoch is not None:
            result["epoch"] = args.epoch
            result["rank"] = args.rank
        if manifest_id is not None:
            result["manifest_id"] = manifest_id
        if args.output:
            result["output"] = args.output
        if args.json:
            print(json.dumps(result, indent=2))
        else:
            print(
                f"fetched {result['samples']} samples "
                f"({total / 1e6:.2f} MB) in {dt:.3f}s — "
                f"{result['samples_per_s']:.1f} samples/s, "
                f"{result['mb_per_s']:.1f} MB/s"
                + (f", {bad} corrupt" if bad else "")
            )
        return 1 if bad else 0


def _ingest_status(root: Path) -> dict:
    """Committed/torn/manifest counters of an ingest directory.

    Shared by ``repro ingest status`` and ``repro stats --all``.
    """
    from repro.ingest import ManifestStore, scan_shard
    from repro.ingest.writer import _list_shards

    store = ManifestStore(root)
    shards = []
    for path in _list_shards(root):
        scan = scan_shard(path)
        shards.append(
            {
                "name": path.name,
                "n_samples": scan.n_records,
                "committed_bytes": scan.valid_end,
                "torn_bytes": scan.torn_bytes,
            }
        )
    latest = store.latest()
    return {
        "dir": str(root),
        "n_samples": sum(s["n_samples"] for s in shards),
        "n_shards": len(shards),
        "torn_bytes": sum(s["torn_bytes"] for s in shards),
        "manifests": len(store.ids()),
        "latest_manifest": None if latest is None else latest.manifest_id,
        "published_samples": None if latest is None else latest.n_samples,
        "shards": shards,
    }


def cmd_ingest(args) -> int:
    from repro.ingest import IngestWriter, recover_directory

    root = Path(args.dir)

    if args.action == "recover":
        reports = recover_directory(root)
        out = {
            "shards": [
                {
                    "name": r.path.name,
                    "n_records": r.n_records,
                    "truncated_bytes": r.truncated_bytes,
                }
                for r in reports
            ],
            "truncated_bytes": sum(r.truncated_bytes for r in reports),
        }
        if args.json:
            print(json.dumps(out, indent=2))
        else:
            for shard in out["shards"]:
                cut = shard["truncated_bytes"]
                print(
                    f"{shard['name']}: {shard['n_records']} committed "
                    f"record(s)" + (f", truncated {cut} torn byte(s)" if cut
                                    else ", clean")
                )
            print(f"recovered: {out['truncated_bytes']} torn byte(s) removed")
        return 0

    if args.action == "status":
        out = _ingest_status(root)
        if args.json:
            print(json.dumps(out, indent=2))
        else:
            print(
                f"{out['n_samples']} committed sample(s) in "
                f"{out['n_shards']} shard(s), {out['torn_bytes']} torn "
                f"byte(s); {out['manifests']} manifest(s) published"
                + (
                    f", latest {out['latest_manifest'][:12]}… covers "
                    f"{out['published_samples']}"
                    if out["latest_manifest"] is not None
                    else ""
                )
            )
        return 0

    # append: encode deterministic synthetic samples keyed by their
    # global index, so an interrupted run re-invoked with the same seed
    # continues the identical sample sequence (the CI crash smoke
    # depends on this)
    cfg = deepcam.DeepcamConfig(
        height=args.height, width=args.width, n_channels=args.channels
    )
    plugin = DeepcamDeltaPlugin("cpu")
    fingerprint = {
        "dataset": "deepcam",
        "plugin": "deepcam-delta",
        "height": args.height,
        "width": args.width,
        "channels": args.channels,
        "seed": args.seed,
    }
    published: list[str] = []
    with IngestWriter(
        root,
        fingerprint=fingerprint,
        shard_max_bytes=int(args.shard_max_mb * 1e6),
    ) as writer:
        recovered = sum(r.truncated_bytes for r in writer.recovery)
        start = writer.n_samples
        for i in range(start, start + args.count):
            sample = deepcam.generate_sample(
                cfg, seed=np.random.default_rng([args.seed, i])
            )
            writer.append_sample(plugin, sample.data, sample.label)
            done = i - start + 1
            if (
                args.publish_every > 0
                and done % args.publish_every == 0
                and not args.no_publish
            ):
                published.append(writer.publish().manifest_id)
        if not args.no_publish:
            manifest = writer.publish()
            if not published or published[-1] != manifest.manifest_id:
                published.append(manifest.manifest_id)
        if args.torn_tail_bytes > 0:
            # simulate a crash mid-append: leave a partial frame on the
            # open shard tail (repro ingest recover truncates it)
            writer.flush()
            with open(writer._open.path, "ab") as fh:
                fh.write(b"\x6b" * args.torn_tail_bytes)
        out = {
            "appended": args.count,
            "n_samples": writer.n_samples,
            "n_shards": writer.n_shards,
            "recovered_bytes": recovered,
            "published": published,
            "torn_tail_bytes": args.torn_tail_bytes,
        }
    if args.json:
        print(json.dumps(out, indent=2))
    else:
        print(
            f"appended {out['appended']} sample(s) "
            f"(now {out['n_samples']} across {out['n_shards']} shard(s)); "
            f"published {len(published)} manifest(s)"
            + (f"; recovered {recovered} torn byte(s)" if recovered else "")
            + (
                f"; left {args.torn_tail_bytes} torn byte(s) on the tail"
                if args.torn_tail_bytes
                else ""
            )
        )
    return 0


def cmd_manifest(args) -> int:
    from repro.ingest import ManifestStore, verify_manifest

    store = ManifestStore(Path(args.dir))

    def resolve():
        if args.id:
            try:
                return store.load(args.id)
            except KeyError as exc:
                raise SystemExit(str(exc))
        latest = store.latest()
        if latest is None:
            raise SystemExit(f"no manifests published under {args.dir}")
        return latest

    if args.action == "list":
        history = store.history()
        if args.json:
            print(
                json.dumps(
                    [
                        {
                            "manifest_id": m.manifest_id,
                            "seq": m.seq,
                            "n_samples": m.n_samples,
                            "n_shards": len(m.shards),
                            "parent": m.parent,
                        }
                        for m in history
                    ],
                    indent=2,
                )
            )
        else:
            rows = [
                [str(m.seq), m.manifest_id[:16] + "…", str(m.n_samples),
                 str(len(m.shards))]
                for m in history
            ]
            print_table(["seq", "manifest", "samples", "shards"], rows)
        return 0

    if args.action == "show":
        print(json.dumps(resolve().to_json(), indent=2))
        return 0

    # verify
    manifest = resolve()
    try:
        report = verify_manifest(Path(args.dir), manifest, deep=args.deep)
    except (ValueError, container.CorruptSampleError) as exc:
        if args.json:
            print(
                json.dumps(
                    {
                        "manifest_id": manifest.manifest_id,
                        "ok": False,
                        "error": str(exc),
                    }
                )
            )
        else:
            print(f"FAIL {manifest.manifest_id[:16]}…: {exc}")
        return 1
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(
            f"OK {manifest.manifest_id[:16]}… — {report['n_samples']} "
            f"sample(s) across {report['n_shards']} shard(s)"
            + (" (deep-verified)" if args.deep else "")
        )
    return 0


def cmd_cluster(args) -> int:
    from repro.cluster.dispatcher import dispatcher_call
    from repro.serve import protocol

    if args.action == "status":
        try:
            status = dispatcher_call(
                args.host, args.port, protocol.OP_LEASE, {"action": "status"},
                timeout_s=args.timeout_s,
            )
        except OSError as exc:
            raise SystemExit(f"cannot reach {args.host}:{args.port}: {exc}")
        if args.json:
            print(json.dumps(status, indent=2))
            return 0
        rows = [
            [w["worker_id"], f"{w['host']}:{w['port']}", w["incarnation"],
             "draining" if w["draining"] else "serving",
             w["heartbeats"], f"{w['lease_remaining_s']:.2f}s"]
            for w in status["workers"]
        ]
        print_table(
            ["worker", "address", "incarnation", "state", "heartbeats",
             "lease left"],
            rows,
        )
        print(
            f"membership v{status['version']}, "
            f"routing v{status.get('routing_version')}, "
            f"lease {status['lease_s']}s, "
            f"replication {status.get('replication')} "
            f"over {status.get('n_buckets')} buckets"
        )
        return 0

    if args.action == "drain":
        if not args.worker_id:
            raise SystemExit("cluster drain requires --worker-id")
        try:
            reply = dispatcher_call(
                args.host, args.port, protocol.OP_LEASE,
                {"action": "drain", "worker_id": args.worker_id},
                timeout_s=args.timeout_s,
            )
        except OSError as exc:
            raise SystemExit(f"cannot reach {args.host}:{args.port}: {exc}")
        if args.json:
            print(json.dumps(reply, indent=2))
        else:
            print(
                f"{args.worker_id}: "
                + ("draining (left the routing table, membership "
                   f"v{reply['version']})" if reply["drained"]
                   else "not drained (unknown or already draining)")
            )
        return 0 if reply["drained"] else 1

    # start: dispatcher + N in-process workers over one record file
    import signal
    import threading

    from repro.cluster import ClusterWorker, Dispatcher
    from repro.pipeline.sources import ListSource, TfRecordSource
    from repro.serve.admission import AdmissionController, AdmissionPolicy
    from repro.storage.cache import SampleCache

    if args.input is None:
        raise SystemExit("cluster start requires --input")
    if args.gzip:
        source = ListSource(list(_iter_samples(args.input, True)))
    else:
        source = TfRecordSource(args.input)
    if len(source) == 0:
        raise SystemExit("no records in input")

    dispatcher = Dispatcher(
        host=args.host,
        port=args.port,
        lease_s=args.lease_s,
        replication=args.replication,
        world_size=args.world_size,
        seed=args.seed,
    ).start()

    def make_admission():
        if args.rate_per_client <= 0 and args.max_inflight <= 0:
            return None
        return AdmissionController(AdmissionPolicy(
            rate_per_client=args.rate_per_client or None,
            max_inflight=args.max_inflight or None,
        ))

    workers = [
        ClusterWorker(
            source,
            dispatcher=dispatcher.address,
            host=args.host,
            cache=(SampleCache(args.cache_mb * 1e6)
                   if args.cache_mb > 0 else None),
            admission=make_admission(),
        ).start()
        for _ in range(args.workers)
    ]
    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, lambda *_: stop.set())
        except ValueError:  # not the main thread (tests)
            pass
    startup = {
        "dispatcher": {"host": dispatcher.address[0],
                       "port": dispatcher.address[1]},
        "workers": [
            {"worker_id": w.worker_id, "host": w.address[0],
             "port": w.address[1]}
            for w in workers
        ],
        "n_samples": len(source),
        "replication": args.replication,
        "lease_s": args.lease_s,
    }
    if args.json:
        print(json.dumps(startup), flush=True)
    else:
        print(
            f"dispatcher on {dispatcher.address[0]}:{dispatcher.address[1]} "
            f"— {len(workers)} worker(s), replication {args.replication}, "
            f"{len(source)} samples — Ctrl-C to drain",
            flush=True,
        )
        for w in startup["workers"]:
            print(f"  {w['worker_id']}: {w['host']}:{w['port']}", flush=True)
    stop.wait(timeout=args.duration_s)
    for w in workers:
        w.close(drain=True)
    dispatcher.close(drain=True)
    snap = dispatcher.stats.snapshot()
    summary = {
        "drained": True,
        "registrations": snap.get("dispatch.register", (0, 0.0))[0],
        "heartbeats": snap.get("dispatch.heartbeat", (0, 0.0))[0],
        "route_fetches": snap.get("dispatch.route", (0, 0.0))[0],
        "expired": snap.get("dispatch.expired", (0, 0.0))[0],
    }
    if args.json:
        print(json.dumps(summary))
    else:
        print(
            f"drained: {summary['registrations']} registration(s), "
            f"{summary['heartbeats']} heartbeat(s), "
            f"{summary['route_fetches']} route fetch(es), "
            f"{summary['expired']} expired lease(s)"
        )
    return 0


def cmd_tune(args) -> int:
    from repro.tune import (
        paper_config,
        resolve_machine,
        simulate_config,
        tune,
        workload_space,
    )

    try:
        machine = resolve_machine(args.machine)
        space = workload_space(args.workload)
    except ValueError as exc:
        raise SystemExit(str(exc))
    result = tune(
        machine,
        space,
        samples_per_gpu=args.samples_per_gpu,
        batch_size=args.batch_size,
        seed=args.seed,
        max_rounds=args.max_rounds,
        validate=not args.no_validate,
    )
    paper = paper_config(machine, space, batch_size=args.batch_size)
    paper_sim = simulate_config(
        machine, space, paper, args.samples_per_gpu
    ).node_samples_per_s

    if args.json:
        out = result.to_json()
        out["paper_config"] = vars(paper).copy()
        out["paper_simulated_samples_per_s"] = paper_sim
        out["trials"] = out["trials"][: args.top]
        print(json.dumps(out, indent=2))
        return 0

    best = result.best
    print(
        f"tune {result.machine}/{result.workload}: "
        f"{result.evaluations} configurations in {result.rounds} round(s)"
        f"{' (converged)' if result.converged else ''}"
    )
    print(f"  best:  {best.config.describe()}  "
          f"predicted {best.predicted:.1f} samples/s "
          f"(bottleneck: {best.prediction.bottleneck})")
    if best.simulated_samples_per_s:
        print(f"         simulated {best.simulated_samples_per_s:.1f} samples/s "
              f"(prediction error {best.prediction_error:.1%})")
    print(f"  paper: {paper.describe()}  "
          f"simulated {paper_sim:.1f} samples/s")
    rows = [
        [i, t.config.describe(), f"{t.predicted:.1f}",
         t.prediction.bottleneck, f"{t.prediction.hit_rate:.0%}"]
        for i, t in enumerate(result.trials[: args.top])
    ]
    print_table(["rank", "config", "pred samples/s", "bottleneck", "hit"], rows)
    return 0


def cmd_graph(args) -> int:
    from repro.conformance import check_graph_equivalence
    from repro.graph import compile_graph
    from repro.pipeline import ListSource

    blobs = list(_iter_samples(args.input, args.gzip))
    if not blobs:
        raise SystemExit("no records in input")
    plugin = _make_plugin(args.workload, args.representation)
    kwargs = {}
    if args.holdout:
        if not isinstance(plugin, DeepcamDeltaPlugin):
            raise SystemExit(
                "--holdout needs the deepcam 'plugin' representation"
            )
        kwargs["holdout"] = args.holdout
    graph = plugin.declare_preprocessing(ListSource(blobs), **kwargs)

    if args.action == "show":
        if args.json:
            print(json.dumps(graph.to_json(), indent=2))
            return 0
        print(graph.describe())
        print("edges:")
        for a, b in graph.edges():
            print(f"  {a} -> {b}")
        return 0

    naive = compile_graph(graph, optimize=False)
    optimized = compile_graph(graph, optimize=True)
    report = None
    if args.check:
        # the legacy-decode comparison only holds for the plugin's own
        # default declaration (a holdout changes which samples survive)
        legacy = None if args.holdout else plugin
        report = check_graph_equivalence(
            graph, epochs=args.epochs, legacy_plugin=legacy
        )

    if args.json:
        out = {
            "workload": args.workload,
            "representation": args.representation,
            "samples": len(blobs),
            "naive": naive.to_json(),
            "optimized": optimized.to_json(),
        }
        if report is not None:
            out["check"] = {
                "ok": report.ok,
                "impls": report.impls,
                "epochs": args.epochs,
                "mismatches": [str(m) for m in report.mismatches],
            }
        print(json.dumps(out, indent=2))
    else:
        print(naive.describe())
        print()
        print(optimized.describe())
        if report is not None:
            verdict = (
                "bit-identical" if report.ok
                else f"{len(report.mismatches)} MISMATCH(ES)"
            )
            print()
            print(
                f"check: {len(blobs)} sample(s) x {args.epochs} epoch(s) "
                f"across {'/'.join(report.impls)}: {verdict}"
            )
            for m in report.mismatches:
                print(f"  {m}", file=sys.stderr)
    return 0 if report is None or report.ok else 1


def cmd_vectors(args) -> int:
    from repro.conformance import generate_vectors, verify_vectors
    from repro.conformance.vectors import DEFAULT_SEED

    if args.action == "generate":
        try:
            manifest = generate_vectors(
                args.dir,
                seed=DEFAULT_SEED if args.seed is None else args.seed,
                force=args.force,
            )
        except FileExistsError as exc:
            raise SystemExit(str(exc))
        print(
            f"wrote {len(manifest['cases'])} golden vectors to {args.dir} "
            f"(seed {manifest['seed']})"
        )
        return 0
    report = verify_vectors(args.dir)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
        return 0 if report.ok else 1
    rows = [
        [r.name, r.codec, "ok" if r.ok else "FAIL",
         "; ".join(r.errors) or "-"]
        for r in report.results
    ]
    print_table(["case", "codec", "status", "detail"], rows)
    n_bad = len(report.failed)
    print(f"{len(report.results)} cases, {n_bad} failing")
    return 1 if n_bad or not report.results else 0


def cmd_fuzz(args) -> int:
    from repro.conformance import fuzz, replay_crashes
    from repro.conformance.fuzzer import FuzzReport

    if args.replay:
        report = replay_crashes(args.replay)
    else:
        if args.samples is None and args.budget_s is None:
            raise SystemExit("one of --samples / --budget-s is required")
        codecs = ("delta", "lut") if args.codec == "all" else (args.codec,)
        budget = (
            None if args.budget_s is None else args.budget_s / len(codecs)
        )
        report = FuzzReport(codec=args.codec, seed=args.seed)
        for codec in codecs:
            report.merge(fuzz(
                codec,
                samples=args.samples,
                budget_s=budget,
                seed=args.seed,
                crash_dir=args.crash_dir,
            ))
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
        return 0 if report.ok else 1
    what = "replayed" if args.replay else "fuzzed"
    print(
        f"{what} {report.cases} cases in {report.elapsed_s:.1f}s "
        f"({', '.join(f'{k}:{v}' for k, v in sorted(report.by_kind.items()))})"
    )
    for m in report.mismatches:
        print(f"MISMATCH {m}", file=sys.stderr)
    for c in report.crashes:
        print(f"CRASH {c['kind']}: {c['error']}", file=sys.stderr)
    if report.saved:
        print(f"saved {len(report.saved)} reproducer(s):")
        for p in report.saved:
            print(f"  {p}")
    print("conformance: " + ("OK" if report.ok else "FAILED"))
    return 0 if report.ok else 1


def _probe_tiers(args):
    """Build a tier hierarchy over a record file and run probe epochs.

    Shared by ``repro tiers`` and the ``repro stats --tiers`` probe: the
    record file becomes the backing store, and ``--epochs`` shuffled
    read sweeps run with a migration cycle between consecutive epochs —
    the same cadence training uses — so the reported hit rates reflect a
    promoted working set, not a cold hierarchy.  Returns the manager
    with the last epoch's access window still open (``plan`` needs it).
    """
    from repro.pipeline.sources import ListSource
    from repro.tiering import TieredSource, build_hierarchy
    from repro.tune import resolve_machine

    blobs = list(_iter_samples(args.input, args.gzip))
    if not blobs:
        raise SystemExit("no records in input")
    try:
        machine = resolve_machine(args.machine)
    except ValueError as exc:
        raise SystemExit(str(exc))
    manager = build_hierarchy(
        machine,
        ram_budget_bytes=args.ram_mb * 1e6,
        nvme_budget_bytes=args.nvme_mb * 1e6,
        nvme_dir=args.nvme_dir,
        policy=args.policy,
        verify=True,
    )
    source = TieredSource(ListSource(blobs), manager)
    rng = np.random.default_rng(args.seed)
    for epoch in range(args.epochs):
        for i in rng.permutation(len(source)):
            source.read(int(i))
        if epoch < args.epochs - 1:
            source.end_epoch(max_moves=args.max_moves)
    return manager


def _print_tier_status(status: dict) -> None:
    rows = [
        [lv["name"], lv["policy"],
         f"{lv['used_bytes'] / 1e6:.2f}/{lv['budget_bytes'] / 1e6:.2f}",
         lv["entries"], lv["hits"], f"{lv['hit_rate']:.0%}",
         f"{lv['modeled_read_s'] * 1e3:.2f}"]
        for lv in status["levels"]
    ]
    print_table(
        ["level", "policy", "used/budget MB", "entries", "hits",
         "hit rate", "modeled read ms"],
        rows,
    )
    print(
        f"overall hit rate {status['hit_rate']:.0%}, "
        f"{status['misses']} misses, "
        f"{status['backing_reads']} backing reads, "
        f"{status['promotions']} promotions, "
        f"{status['demotions']} demotions, "
        f"{status['evictions']} evictions, "
        f"{status['rejected_oversize']} oversize rejects, "
        f"{status['verify_failures']} verify failures, "
        f"{status['rebalances']} rebalances — "
        f"modeled read {status['modeled_read_s'] * 1e3:.1f} ms total"
    )


def cmd_tiers(args) -> int:
    manager = _probe_tiers(args)
    if args.action == "status":
        status = manager.status()
        if args.json:
            print(json.dumps(status, indent=2))
        else:
            _print_tier_status(status)
        return 0
    if args.action == "plan":
        plan = manager.plan_migrations(max_moves=args.max_moves)
        if args.json:
            print(json.dumps(plan.to_json(), indent=2))
            return 0
        rows = [[m.key, m.kind, m.src, m.dst or "-", m.nbytes]
                for m in plan.moves]
        print_table(["sample", "move", "from", "to", "bytes"], rows)
        counts = plan.counts()
        print(", ".join(f"{v} {k}" for k, v in counts.items()))
        return 0
    # migrate: apply one more cycle, then show where that left the tiers
    summary = manager.end_epoch(max_moves=args.max_moves)
    status = manager.status()
    if args.json:
        print(json.dumps({"migrated": summary, "status": status}, indent=2))
        return 0
    print("migrated: " + (
        ", ".join(f"{k}={v}" for k, v in sorted(summary.items()))
        or "nothing to move"
    ))
    _print_tier_status(status)
    return 0


def cmd_trace(args) -> int:
    from repro.observe import (
        TraceRecorder,
        build_trees,
        chrome_trace,
        folded_stacks,
        load_spans,
        render_top,
        render_tree,
        top_spans,
    )

    if args.action == "record":
        from repro.pipeline import DataLoader, ListSource

        if not args.input or not args.workload:
            raise SystemExit("trace record needs --input and --workload")
        if not args.output:
            raise SystemExit("trace record needs --output (the trace file)")
        plugin = _make_plugin(args.workload, args.representation)
        blobs = list(_iter_samples(args.input, args.gzip))
        if not blobs:
            raise SystemExit("no records in input")
        recorder = TraceRecorder(
            capacity=args.capacity,
            sample_rate=args.sample_rate,
            seed=args.seed,
            exemplars=args.exemplars,
            proc="loader",
        )
        loader = DataLoader(
            ListSource(blobs), plugin, batch_size=args.batch_size,
            shuffle=False, graph=True, trace=recorder,
        )
        n = 0
        for epoch in range(args.epochs):
            for batch, _ in loader.batches(epoch):
                n += batch.shape[0]
        doc = recorder.to_json()
        Path(args.output).write_text(json.dumps(doc, indent=2))
        summary = {
            "samples": n,
            "epochs": args.epochs,
            "spans": len(doc["spans"]),
            "exemplars": len(doc["exemplars"]),
            "sample_rate": args.sample_rate,
            "output": args.output,
        }
        if args.json:
            print(json.dumps(summary, indent=2))
        else:
            print(
                f"traced {n} sample(s) over {args.epochs} epoch(s): "
                f"{summary['spans']} span(s), {summary['exemplars']} "
                f"exemplar tree(s) -> {args.output}"
            )
        return 0

    if args.action == "export":
        if not args.trace:
            raise SystemExit("trace export needs --trace (a record file)")
        spans = load_spans(args.trace)
        if args.format == "chrome":
            text = json.dumps(chrome_trace(spans), indent=2)
        elif args.format == "folded":
            text = "\n".join(folded_stacks(spans))
        else:
            text = render_tree(build_trees(spans))
        if args.output:
            Path(args.output).write_text(text + "\n")
            print(
                f"wrote {args.format} export of {len(spans)} span(s) "
                f"to {args.output}"
            )
        else:
            print(text)
        return 0

    # top: the "where did the time go" table, from a recorded trace
    # file or scraped live from a running server's METRICS op
    if args.trace:
        rows = top_spans(load_spans(args.trace))
    elif args.port:
        from repro.serve import RemoteSource

        try:
            with RemoteSource(
                args.host, args.port, timeout_s=args.timeout_s
            ) as src:
                observe = src.metrics().get("observe")
        except OSError as exc:
            raise SystemExit(f"cannot reach {args.host}:{args.port}: {exc}")
        if not observe:
            raise SystemExit(
                f"server {args.host}:{args.port} has no trace recorder "
                f"attached (start it with tracing enabled)"
            )
        rows = [
            {
                "name": name,
                "n": st["n"],
                "total_s": st["total_s"],
                "mean_s": st["total_s"] / max(1, st["n"]),
                "max_s": st["max_s"],
            }
            for name, st in observe["spans"].items()
        ]
        rows.sort(key=lambda r: -r["total_s"])
    else:
        raise SystemExit(
            "trace top needs --trace FILE or --port of a live server"
        )
    if args.json:
        print(json.dumps(rows[:args.limit], indent=2))
    else:
        print(render_top(rows, limit=args.limit))
    return 0


def _add_tier_probe_args(p: argparse.ArgumentParser) -> None:
    """The knobs of the :func:`_probe_tiers` read sweep (``tiers``/``stats``)."""
    from repro.tiering import POLICIES

    p.add_argument("--machine", default="summit",
                   help="tier specs come from this simulated machine "
                        "(summit, cori-v100, cori-a100)")
    p.add_argument("--ram-mb", type=float, default=4.0,
                   help="RAM-level capacity budget; 0 omits the level")
    p.add_argument("--nvme-mb", type=float, default=16.0,
                   help="NVMe-level capacity budget; 0 omits the level")
    p.add_argument("--nvme-dir", default=None,
                   help="directory backing the NVMe level (default: "
                        "in-memory, modeled at NVMe bandwidth)")
    p.add_argument("--policy", choices=POLICIES, default="lru",
                   help="per-level eviction policy")
    p.add_argument("--epochs", type=int, default=2,
                   help="probe read-sweep epochs (migration runs between "
                        "consecutive epochs)")
    p.add_argument("--seed", type=int, default=0,
                   help="epoch shuffle seed")
    p.add_argument("--max-moves", type=int, default=None,
                   help="cap migration moves per cycle")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="write a synthetic dataset")
    g.add_argument("--workload", choices=("cosmoflow", "deepcam"),
                   required=True)
    g.add_argument("--representation", choices=("base", "plugin"),
                   default="base")
    g.add_argument("--count", type=int, default=4)
    g.add_argument("--size", type=int, default=32,
                   help="grid (cosmoflow) or height (deepcam)")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--gzip", action="store_true")
    g.add_argument("--output", required=True)
    g.set_defaults(func=cmd_generate)

    i = sub.add_parser("inspect", help="list a record file's samples")
    i.add_argument("--input", required=True)
    i.add_argument("--gzip", action="store_true")
    i.set_defaults(func=cmd_inspect)

    a = sub.add_parser("analyze", help="Fig-5 statistics of raw samples")
    a.add_argument("--input", required=True)
    a.add_argument("--gzip", action="store_true")
    a.set_defaults(func=cmd_analyze)

    b = sub.add_parser("bench", help="decode throughput of a record file")
    b.add_argument("--workload", choices=("cosmoflow", "deepcam"),
                   required=True)
    b.add_argument("--representation", choices=("base", "plugin"),
                   default="plugin")
    b.add_argument("--input", required=True)
    b.add_argument("--gzip", action="store_true")
    b.add_argument("--json", action="store_true",
                   help="machine-readable output")
    b.set_defaults(func=cmd_bench)

    st = sub.add_parser("stats", help="codec statistics of encoded samples")
    st.add_argument("--input", required=True)
    st.add_argument("--gzip", action="store_true")
    st.add_argument("--tiers", action="store_true",
                    help="also probe a tier hierarchy over the file and "
                         "report its hit rates and migration counters")
    st.add_argument("--pipeline", action="store_true",
                    help="also run one graph-compiled epoch over the file "
                         "and report per-stage pipeline.* time counters")
    st.add_argument("--workload", choices=("cosmoflow", "deepcam"),
                    help="workload for --pipeline")
    st.add_argument("--representation", choices=("base", "plugin"),
                    default="plugin", help="representation for --pipeline")
    _add_tier_probe_args(st)
    st.add_argument("--all", action="store_true",
                    help="emit one merged document over every subsystem "
                         "(loader, pipeline, tiers, remote, cluster, "
                         "ingest) with a stable key schema; sections not "
                         "probed are null")
    st.add_argument("--host", default="127.0.0.1",
                    help="with --all: server/dispatcher contact address")
    st.add_argument("--port", type=int, default=0,
                    help="with --all: include a running server's counters "
                         "and trace summary (METRICS scrape)")
    st.add_argument("--dispatcher-port", type=int, default=0,
                    help="with --all: include a running dispatcher's "
                         "membership/routing status")
    st.add_argument("--ingest-dir", default=None,
                    help="with --all: include this ingest directory's "
                         "committed/torn/manifest counters")
    st.add_argument("--timeout-s", type=float, default=5.0,
                    help="with --all: remote probe timeout")
    st.add_argument("--json", action="store_true",
                    help="machine-readable output")
    st.set_defaults(func=cmd_stats)

    v = sub.add_parser("verify", help="integrity-check a record file")
    v.add_argument("--input", required=True)
    v.add_argument("--gzip", action="store_true")
    v.add_argument("--verbose", action="store_true",
                   help="print each corruption detail to stderr")
    v.set_defaults(func=cmd_verify)

    c = sub.add_parser(
        "chaos", help="run epochs under fault injection with retries"
    )
    c.add_argument("--workload", choices=("cosmoflow", "deepcam"),
                   required=True)
    c.add_argument("--representation", choices=("base", "plugin"),
                   default="plugin")
    c.add_argument("--input", required=True)
    c.add_argument("--gzip", action="store_true")
    c.add_argument("--epochs", type=int, default=1)
    c.add_argument("--batch-size", type=int, default=2)
    c.add_argument("--workers", type=int, default=2)
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--io-error-rate", type=float, default=0.0,
                   help="probability of a transient IOError per read")
    c.add_argument("--truncate-rate", type=float, default=0.0,
                   help="probability of a truncated blob per read")
    c.add_argument("--bitflip-rate", type=float, default=0.0,
                   help="probability of a flipped bit per read")
    c.add_argument("--latency-rate", type=float, default=0.0,
                   help="probability of a latency spike per read")
    c.add_argument("--latency-s", type=float, default=0.01,
                   help="duration of one injected latency spike")
    c.add_argument("--corrupt", default="",
                   help="comma-separated sample ids corrupted at rest")
    c.add_argument("--retries", type=int, default=3,
                   help="max read attempts (RetryingSource)")
    c.add_argument("--backoff-s", type=float, default=0.001,
                   help="base exponential-backoff delay")
    c.add_argument("--read-timeout-s", type=float, default=None,
                   help="per-read wall-clock budget incl. retries")
    c.add_argument("--policy", choices=("raise", "skip", "substitute"),
                   default="raise", help="bad-sample policy")
    c.set_defaults(func=cmd_chaos)

    sv = sub.add_parser(
        "serve", help="serve a record file to networked trainer clients"
    )
    sv.add_argument("--input", default=None,
                    help="record file to serve (or use --ingest-dir)")
    sv.add_argument("--ingest-dir", default=None,
                    help="serve a live repro.ingest directory instead of a "
                         "record file; EPOCH_MANIFEST pins each epoch to "
                         "the latest published snapshot manifest")
    sv.add_argument("--gzip", action="store_true",
                    help="input is gzip-compressed (materialized in memory)")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=0,
                    help="0 picks an ephemeral port (printed at startup)")
    sv.add_argument("--cache-mb", type=float, default=64.0,
                    help="shared sample cache size; 0 disables caching")
    sv.add_argument("--verify", action="store_true",
                    help="checksum-verify every uncached read")
    sv.add_argument("--max-connections", type=int, default=32,
                    help="concurrent connection bound (back-pressure above)")
    sv.add_argument("--world-size", type=int, default=1,
                    help="ranks in the shard plan served by EPOCH")
    sv.add_argument("--seed", type=int, default=0,
                    help="shard-plan shuffle seed")
    sv.add_argument("--service-delay-ms", type=float, default=0.0,
                    help="simulated per-read link/storage latency "
                         "(benchmarking aid; see docs/serving.md)")
    sv.add_argument("--trace", action="store_true",
                    help="attach a span recorder; scrape it live with "
                         "`repro trace top --port` (METRICS op)")
    sv.add_argument("--trace-sample-rate", type=float, default=1.0,
                    help="head-sampling probability for --trace")
    sv.add_argument("--duration-s", type=float, default=None,
                    help="serve for N seconds then drain (default: until "
                         "SIGINT/SIGTERM)")
    sv.add_argument("--json", action="store_true",
                    help="machine-readable startup/summary lines")
    sv.set_defaults(func=cmd_serve)

    fe = sub.add_parser(
        "fetch", help="fetch samples or reports from a running server"
    )
    fe.add_argument("--host", default="127.0.0.1")
    fe.add_argument("--port", type=int, required=True)
    fe.add_argument("--timeout-s", type=float, default=10.0)
    what = fe.add_mutually_exclusive_group()
    what.add_argument("--health", action="store_true",
                      help="print the server health report and exit")
    what.add_argument("--info", action="store_true",
                      help="print the dataset/server info and exit")
    what.add_argument("--stats-only", action="store_true",
                      help="print the server counter snapshot and exit")
    what.add_argument("--indices", default="",
                      help="comma-separated sample indices to fetch")
    what.add_argument("--epoch", type=int, default=None,
                      help="fetch this rank's EPOCH-coordinated shard")
    fe.add_argument("--rank", type=int, default=0,
                    help="rank for --epoch shard requests")
    fe.add_argument("--manifest", action="store_true",
                    help="with --epoch: use EPOCH_MANIFEST, pinning the "
                         "shard to the server's snapshot manifest")
    fe.add_argument("--verify", action="store_true",
                    help="integrity-check every fetched container")
    fe.add_argument("--output", default=None,
                    help="write fetched blobs to a record file")
    fe.add_argument("--json", action="store_true",
                    help="machine-readable output")
    fe.set_defaults(func=cmd_fetch)

    ing = sub.add_parser(
        "ingest", help="append-only online ingestion (repro.ingest)"
    )
    ing.add_argument("action", choices=("append", "status", "recover"))
    ing.add_argument("--dir", required=True,
                     help="ingest directory (shards + manifests)")
    ing.add_argument("--count", type=int, default=16,
                     help="samples to append")
    ing.add_argument("--publish-every", type=int, default=0,
                     help="publish a snapshot manifest every N appends "
                          "(0: only once at the end)")
    ing.add_argument("--no-publish", action="store_true",
                     help="append without publishing any manifest")
    ing.add_argument("--shard-max-mb", type=float, default=64.0,
                     help="roll to a new shard past this size")
    ing.add_argument("--height", type=int, default=48)
    ing.add_argument("--width", type=int, default=72)
    ing.add_argument("--channels", type=int, default=16)
    ing.add_argument("--seed", type=int, default=0,
                     help="content seed; sample i is generated from "
                          "(seed, i), so re-runs continue the sequence")
    ing.add_argument("--torn-tail-bytes", type=int, default=0,
                     help="after appending, leave N garbage bytes on the "
                          "open shard (crash simulation for tests/CI)")
    ing.add_argument("--json", action="store_true",
                     help="machine-readable output")
    ing.set_defaults(func=cmd_ingest)

    mf = sub.add_parser(
        "manifest", help="inspect an ingest directory's snapshot manifests"
    )
    mf.add_argument("action", choices=("list", "show", "verify"))
    mf.add_argument("--dir", required=True,
                    help="ingest directory (shards + manifests)")
    mf.add_argument("--id", default=None,
                    help="manifest id (default: latest published)")
    mf.add_argument("--deep", action="store_true",
                    help="verify: also CRC-check every sample payload")
    mf.add_argument("--json", action="store_true",
                    help="machine-readable output")
    mf.set_defaults(func=cmd_manifest)

    cl = sub.add_parser(
        "cluster", help="fault-tolerant serving fleet (dispatcher + workers)"
    )
    cl.add_argument("action", choices=("start", "status", "drain"))
    cl.add_argument("--host", default="127.0.0.1",
                    help="dispatcher bind/contact address")
    cl.add_argument("--port", type=int, default=0,
                    help="dispatcher port (start: 0 picks ephemeral; "
                         "status/drain: the running dispatcher's port)")
    cl.add_argument("--input", default=None,
                    help="record file every worker serves (start)")
    cl.add_argument("--gzip", action="store_true",
                    help="input is gzip-compressed (materialized in memory)")
    cl.add_argument("--workers", type=int, default=3,
                    help="data-plane workers to launch (start)")
    cl.add_argument("--replication", type=int, default=2,
                    help="replicas per sample range (start)")
    cl.add_argument("--lease-s", type=float, default=2.0,
                    help="worker heartbeat lease (start)")
    cl.add_argument("--cache-mb", type=float, default=64.0,
                    help="per-worker sample cache; 0 disables (start)")
    cl.add_argument("--rate-per-client", type=float, default=0.0,
                    help="admission token-bucket rate per client; "
                         "0 disables (start)")
    cl.add_argument("--max-inflight", type=int, default=0,
                    help="per-worker global in-flight cap; 0 disables (start)")
    cl.add_argument("--world-size", type=int, default=1,
                    help="ranks in the cluster-wide shard plan (start)")
    cl.add_argument("--seed", type=int, default=0,
                    help="shard-plan shuffle seed (start)")
    cl.add_argument("--duration-s", type=float, default=None,
                    help="run for N seconds then drain (default: until "
                         "SIGINT/SIGTERM; start only)")
    cl.add_argument("--worker-id", default=None,
                    help="worker to remove from routing (drain)")
    cl.add_argument("--timeout-s", type=float, default=5.0,
                    help="control-call timeout (status/drain)")
    cl.add_argument("--json", action="store_true",
                    help="machine-readable output")
    cl.set_defaults(func=cmd_cluster)

    t = sub.add_parser(
        "tune", help="search for the fastest pipeline configuration"
    )
    t.add_argument("--machine", required=True,
                   help="simulated machine (summit, cori-v100, cori-a100)")
    t.add_argument("--workload", choices=("cosmoflow", "deepcam"),
                   required=True)
    t.add_argument("--samples-per-gpu", type=int, default=2048,
                   help="nominal dataset size per GPU (drives cache fit)")
    t.add_argument("--batch-size", type=int, default=4)
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--max-rounds", type=int, default=8,
                   help="coordinate-descent round budget")
    t.add_argument("--no-validate", action="store_true",
                   help="skip the discrete-event what-if of the winner")
    t.add_argument("--top", type=int, default=10,
                   help="ranked trials to show")
    t.add_argument("--json", action="store_true",
                   help="machine-readable output")
    t.set_defaults(func=cmd_tune)

    vec = sub.add_parser(
        "vectors", help="golden-vector conformance corpus"
    )
    vec.add_argument("action", choices=("generate", "verify"))
    vec.add_argument("--dir", default="tests/vectors",
                     help="corpus directory (default: tests/vectors)")
    vec.add_argument("--seed", type=int, default=None,
                     help="generation seed (generate only)")
    vec.add_argument("--force", action="store_true",
                     help="overwrite an existing corpus (deliberate "
                          "format changes only)")
    vec.add_argument("--json", action="store_true",
                     help="machine-readable output (verify only)")
    vec.set_defaults(func=cmd_vectors)

    f = sub.add_parser(
        "fuzz", help="differential fuzzing across codec implementations"
    )
    f.add_argument("--codec", choices=("delta", "lut", "all"),
                   default="all")
    f.add_argument("--samples", type=int, default=None,
                   help="cases per codec")
    f.add_argument("--budget-s", type=float, default=None,
                   help="total wall-clock budget, split across codecs")
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--crash-dir", default=None,
                   help="save failing inputs here as .npz reproducers")
    f.add_argument("--replay", default=None, metavar="DIR",
                   help="replay a crash-corpus directory instead of fuzzing")
    f.add_argument("--json", action="store_true",
                   help="machine-readable output")
    f.set_defaults(func=cmd_fuzz)

    gr = sub.add_parser(
        "graph",
        help="show or optimize a workload's declared preprocessing graph",
    )
    gr.add_argument("action", choices=("show", "optimize"))
    gr.add_argument("--workload", choices=("cosmoflow", "deepcam"),
                    required=True)
    gr.add_argument("--representation", choices=("base", "plugin"),
                    default="plugin")
    gr.add_argument("--input", required=True)
    gr.add_argument("--gzip", action="store_true")
    gr.add_argument("--holdout", type=float, default=0.0,
                    help="declare a training-split filter (deepcam plugin "
                         "only) the optimizer hoists to a prefilter")
    gr.add_argument("--check", action="store_true",
                    help="with optimize: differentially execute naive vs "
                         "optimized (and the legacy decode path) over the "
                         "record file; non-zero exit on any bit mismatch")
    gr.add_argument("--epochs", type=int, default=2,
                    help="epochs the --check executes")
    gr.add_argument("--json", action="store_true",
                    help="machine-readable output")
    gr.set_defaults(func=cmd_graph)

    ti = sub.add_parser(
        "tiers", help="probe a record file through a tier hierarchy"
    )
    ti.add_argument("action", choices=("status", "plan", "migrate"))
    ti.add_argument("--input", required=True)
    ti.add_argument("--gzip", action="store_true")
    _add_tier_probe_args(ti)
    ti.add_argument("--json", action="store_true",
                    help="machine-readable output")
    ti.set_defaults(func=cmd_tiers)

    tr = sub.add_parser(
        "trace",
        help="record, export, and summarize per-sample span traces",
    )
    tr.add_argument("action", choices=("record", "export", "top"))
    tr.add_argument("--workload", choices=("cosmoflow", "deepcam"),
                    help="record: workload plugin")
    tr.add_argument("--representation", choices=("base", "plugin"),
                    default="plugin")
    tr.add_argument("--input", default=None,
                    help="record: record file to run traced epochs over")
    tr.add_argument("--gzip", action="store_true")
    tr.add_argument("--epochs", type=int, default=1)
    tr.add_argument("--batch-size", type=int, default=2)
    tr.add_argument("--sample-rate", type=float, default=1.0,
                    help="head-sampling probability; slowest-K exemplar "
                         "trees are kept at any rate")
    tr.add_argument("--capacity", type=int, default=4096,
                    help="span ring-buffer capacity")
    tr.add_argument("--exemplars", type=int, default=8,
                    help="slowest-K full trace trees to retain")
    tr.add_argument("--seed", type=int, default=0,
                    help="sampling/id seed (reproduces which samples "
                         "were traced)")
    tr.add_argument("--output", default=None,
                    help="record: trace JSON file to write (required); "
                         "export: write here instead of stdout")
    tr.add_argument("--trace", default=None,
                    help="export/top: a trace file written by record")
    tr.add_argument("--format", choices=("chrome", "folded", "tree"),
                    default="chrome",
                    help="export format: chrome://tracing JSON, "
                         "flamegraph.pl folded stacks, or a text tree")
    tr.add_argument("--host", default="127.0.0.1",
                    help="top: live server to scrape (METRICS op)")
    tr.add_argument("--port", type=int, default=0,
                    help="top: live server port")
    tr.add_argument("--timeout-s", type=float, default=5.0)
    tr.add_argument("--limit", type=int, default=20,
                    help="top: rows to print")
    tr.add_argument("--json", action="store_true",
                    help="machine-readable output")
    tr.set_defaults(func=cmd_trace)
    return p


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the selected subcommand."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
