"""Codec microbenchmarks: real encode/decode throughput of both codecs.

Unlike the exhibit benches (deterministic single-round regenerations),
these measure actual wall-clock performance of the Python implementations
on reduced-shape samples, and report MB/s via pytest-benchmark's timing.
"""

import numpy as np
import pytest

from repro.core.encoding import delta, lut
from repro.core.plugins import DeepcamDeltaPlugin, CosmoflowLutPlugin
from repro.datasets import cosmoflow, deepcam


@pytest.fixture(scope="module")
def deepcam_data():
    cfg = deepcam.DeepcamConfig(height=96, width=144, n_channels=8)
    return deepcam.generate_sample(cfg, seed=0)


@pytest.fixture(scope="module")
def cosmo_data():
    cfg = cosmoflow.CosmoflowConfig(grid=32)
    return cosmoflow.generate_sample(cfg, seed=0)


def test_delta_encode_throughput(benchmark, deepcam_data):
    ch = deepcam_data.data[0]
    enc = benchmark(delta.encode_image, ch)
    assert enc.nbytes < ch.nbytes


def test_delta_encode_fast_throughput(benchmark, deepcam_data):
    from repro.core.encoding.delta_fast import encode_image_fast

    ch = deepcam_data.data[0]
    enc = benchmark(encode_image_fast, ch)
    assert enc.payload == delta.encode_image(ch).payload


def test_delta_decode_throughput(benchmark, deepcam_data):
    ch = deepcam_data.data[0]
    enc = delta.encode_image(ch)
    out = benchmark(delta.decode_image, enc)
    assert out.dtype == np.float16


def test_delta_decode_fast_throughput(benchmark, deepcam_data):
    from repro.core.encoding.delta_decode_fast import decode_image_fast

    ch = deepcam_data.data[0]
    enc = delta.encode_image(ch)
    out = benchmark(decode_image_fast, enc)
    assert np.array_equal(out, delta.decode_image(enc))


def test_lut_encode_throughput(benchmark, cosmo_data):
    enc = benchmark(lut.encode_sample, cosmo_data.data)
    assert enc.nbytes < cosmo_data.data.nbytes


def test_lut_decode_throughput(benchmark, cosmo_data):
    enc = lut.encode_sample(cosmo_data.data)
    fused = lut.apply_to_tables(
        enc, lambda v: np.log1p(v.astype(np.float32)), out_dtype=np.float16
    )
    out = benchmark(lut.decode_sample, fused, dtype=np.float16)
    assert out.dtype == np.float16


def test_deepcam_plugin_roundtrip(benchmark, deepcam_data):
    plugin = DeepcamDeltaPlugin("cpu")
    blob = plugin.encode(deepcam_data.data, deepcam_data.label)

    def roundtrip():
        return plugin.decode_cpu(blob)

    tensor, _ = benchmark(roundtrip)
    assert tensor.dtype == np.float16


def test_cosmoflow_plugin_roundtrip(benchmark, cosmo_data):
    plugin = CosmoflowLutPlugin("cpu")
    blob = plugin.encode(cosmo_data.data, cosmo_data.label)

    def roundtrip():
        return plugin.decode_cpu(blob)

    tensor, _ = benchmark(roundtrip)
    assert tensor.dtype == np.float16
