"""Model ablation: plain bottleneck vs DeepLabv3+-style ASPP bottleneck.

The paper's DeepCAM model is DeepLabv3+ (atrous spatial pyramid pooling);
our reduced model defaults to a plain conv bottleneck for speed.  This
ablation trains both variants on the same data/schedule and compares
convergence and parameter count — the multi-rate context block earns its
parameters on the multi-scale segmentation task.
"""

import numpy as np

from repro.datasets import deepcam
from repro.experiments.harness import print_table
from repro.ml import SGD, Trainer, WarmupSchedule, build_deepcam
from repro.ml.losses import softmax_cross_entropy
from repro.pipeline import DataLoader, ListSource
from repro.core.plugins import DeepcamDeltaPlugin

_WEIGHTS = np.array([1.0, 5.0, 2.0], dtype=np.float32)


def _train(use_aspp: bool, blobs, plugin, epochs=6, seed=0):
    loader = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=seed)
    model = build_deepcam(in_channels=8, base_filters=4, seed=seed,
                          use_aspp=use_aspp)
    trainer = Trainer(
        model,
        lambda p, t: softmax_cross_entropy(p, t, class_weights=_WEIGHTS),
        SGD(model.parameters(), WarmupSchedule(base_lr=0.05, warmup_steps=4),
            momentum=0.9),
        mixed_precision=True,
    )
    for e in range(epochs):
        trainer.train_epoch(loader.batches(e))
    return model.n_parameters(), trainer.history.epoch_losses


def test_ablation_aspp_bottleneck(once):
    cfg = deepcam.DeepcamConfig(height=32, width=48, n_channels=8)
    samples = deepcam.generate_dataset(12, cfg, seed=3)
    plugin = DeepcamDeltaPlugin("cpu")
    blobs = [plugin.encode(s.data, s.label) for s in samples]

    def sweep():
        rows = []
        for use_aspp in (False, True):
            n_params, losses = _train(use_aspp, blobs, plugin)
            rows.append(["ASPP" if use_aspp else "plain conv",
                         n_params, losses[0], losses[-1]])
        return rows

    rows = once(sweep)
    print()
    print_table(["bottleneck", "params", "first-epoch loss",
                 "final loss"], rows)
    # both learn; ASPP has more parameters and must not diverge
    for row in rows:
        assert row[3] < row[2]
    assert rows[1][1] > rows[0][1]
