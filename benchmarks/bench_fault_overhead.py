"""Fault-tolerance overhead on the clean path.

The robustness layers (container-v2 CRC32 verification and the
``RetryingSource`` wrapper) run on every read — their cost must be noise
against decode.  This microbench measures the clean-path overhead directly
and asserts it stays **under 5% of decode time**: a CRC32 over an encoded
blob is a single C-speed pass over a few hundred KB, while decode touches
every element of the much larger decoded tensor.

Run with ``pytest benchmarks/bench_fault_overhead.py -s`` to print the
measured ratio; the run recorded in CHANGES.md used this module.
"""

import time

import pytest

from repro.core.encoding.container import verify_sample
from repro.core.plugins import CosmoflowLutPlugin, DeepcamDeltaPlugin
from repro.datasets import cosmoflow, deepcam
from repro.pipeline import ListSource
from repro.robust import RetryingSource, RetryPolicy


@pytest.fixture(scope="module")
def deepcam_blob():
    cfg = deepcam.DeepcamConfig(height=96, width=144, n_channels=8)
    s = deepcam.generate_sample(cfg, seed=0)
    plugin = DeepcamDeltaPlugin("cpu")
    return plugin, plugin.encode(s.data, s.label)


@pytest.fixture(scope="module")
def cosmo_blob():
    cfg = cosmoflow.CosmoflowConfig(grid=64)
    s = cosmoflow.generate_sample(cfg, seed=0)
    plugin = CosmoflowLutPlugin("cpu")
    return plugin, plugin.encode(s.data, s.label)


def _best_of(fn, repeats=7, inner=20):
    """Best-of-N timing to suppress scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def test_verify_overhead_under_5pct_of_decode(deepcam_blob, cosmo_blob):
    for name, (plugin, blob) in {
        "deepcam/delta": deepcam_blob,
        "cosmoflow/lut": cosmo_blob,
    }.items():
        decode_s = _best_of(lambda: plugin.decode_cpu(blob))
        verify_s = _best_of(lambda: verify_sample(blob))
        ratio = verify_s / decode_s
        print(
            f"\n{name}: decode {decode_s * 1e6:.0f} µs, "
            f"verify {verify_s * 1e6:.1f} µs — {ratio:.2%} of decode"
        )
        assert ratio < 0.05, (
            f"{name}: checksum verification costs {ratio:.1%} of decode"
        )


def test_retry_wrapper_overhead_under_5pct_of_decode(deepcam_blob):
    from bench_util import record_bench

    plugin, blob = deepcam_blob
    plain = ListSource([blob] * 8)
    wrapped = RetryingSource(
        ListSource([blob] * 8),
        RetryPolicy(max_attempts=3),
        verify=True,
    )

    def sweep(source):
        for i in range(len(plain)):
            source.read(i)

    decode_s = _best_of(lambda: plugin.decode_cpu(blob)) * len(plain)
    plain_s = _best_of(lambda: sweep(plain))
    wrapped_s = _best_of(lambda: sweep(wrapped))
    overhead = max(wrapped_s - plain_s, 0.0)
    ratio = overhead / decode_s
    print(
        f"\nclean-path retry+verify: {overhead * 1e6:.1f} µs per 8 reads "
        f"({ratio:.2%} of the matching decode time)"
    )
    record_bench(
        "fault_overhead",
        {
            "clean_path_overhead_us": round(overhead * 1e6, 2),
            "overhead_vs_decode_frac": round(ratio, 4),
        },
    )
    assert ratio < 0.05
    assert wrapped.stats.retries == 0  # clean path: the wrapper never fires


def test_fault_free_chaos_epoch_overhead(benchmark, deepcam_blob):
    """End-to-end: a fully wrapped (injector-less) epoch through the
    loader with verification on, timed for the record."""
    from repro.pipeline import DataLoader

    plugin, blob = deepcam_blob
    loader = DataLoader(
        RetryingSource(ListSource([blob] * 8), verify=True),
        plugin,
        batch_size=4,
        shuffle=False,
        bad_sample_policy="skip",
        verify_reads=True,
    )
    batches = benchmark(lambda: list(loader.batches(0)))
    assert len(batches) == 2
    assert not loader.quarantine
