"""Ablations of the codec design choices DESIGN.md §6 calls out.

Sweeps the differential codec's knobs — mantissa/exponent bit split,
segment (block) size, quality-gate tolerance, gate on/off — and the LUT
codec's table-size limit, measuring compression ratio and error tail on
one synthetic DeepCAM/CosmoFlow sample.  Each row answers a "why this
design point?" question:

* 4 mantissa bits (paper's choice) balances ratio against the >10%-error
  tail; fewer mantissa bits widen the exponent window but blow up the tail.
* 64-diff segments amortize descriptor overhead while the FP16 literal
  re-anchors keep drift bounded.
* the quality gate trades a little ratio for a hard error bound.
"""

import numpy as np

from repro.core.encoding import lut
from repro.core.encoding.delta import DeltaCodecConfig, decode_image, encode_image
from repro.core.plugins.deepcam import _normalize, channel_stats
from repro.datasets import cosmoflow, deepcam
from repro.experiments.harness import print_table


def _deepcam_channels():
    cfg = deepcam.DeepcamConfig(height=64, width=96, n_channels=8)
    s = deepcam.generate_sample(cfg, seed=11)
    mean, std = channel_stats(s.data)
    return _normalize(s.data, mean, std)


def _codec_stats(channels, cfg):
    enc_bytes = 0
    err_tail = []
    for ch in channels:
        enc = encode_image(ch, cfg)
        enc_bytes += enc.nbytes
        out = decode_image(enc).astype(np.float32)
        rel = np.abs(out - ch) / np.maximum(np.abs(ch), 1e-12)
        err_tail.append(np.mean(rel > 0.10))
    raw = channels.nbytes
    return raw / enc_bytes, float(np.mean(err_tail))


def test_ablation_mantissa_bits(once):
    channels = _deepcam_channels()

    def sweep():
        rows = []
        for bits in (2, 3, 4, 5):
            cfg = DeltaCodecConfig(mantissa_bits=bits, quality_gate=False)
            ratio, tail = _codec_stats(channels, cfg)
            rows.append([f"{bits}m/{7 - bits}e", ratio, 100 * tail])
        return rows

    rows = once(sweep)
    print()
    print_table(["bit split", "ratio", ">10% err (%)"], rows)
    ratios = [r[1] for r in rows]
    # wider exponent windows (fewer mantissa bits) compress at least as well
    assert ratios[0] >= ratios[-1] - 0.2
    # every split is open-loop here, so the near-zero error tail is of the
    # same order across splits; what changes is the per-value precision,
    # which the compression column captures
    assert all(r[2] < 25.0 for r in rows)


def test_ablation_block_size(once):
    channels = _deepcam_channels()

    def sweep():
        rows = []
        for bs in (8, 16, 64, 256):
            cfg = DeltaCodecConfig(block_size=bs)
            ratio, tail = _codec_stats(channels, cfg)
            rows.append([bs, ratio, 100 * tail])
        return rows

    rows = once(sweep)
    print()
    print_table(["block size", "ratio", ">10% err (%)"], rows)
    # all gated variants keep the tail tiny regardless of block size
    assert max(r[2] for r in rows) < 1.0


def test_ablation_quality_gate(once):
    channels = _deepcam_channels()

    def sweep():
        rows = []
        for tol, gate in ((0.01, True), (0.05, True), (0.20, True),
                          (0.05, False)):
            cfg = DeltaCodecConfig(rel_tol=tol, quality_gate=gate)
            ratio, tail = _codec_stats(channels, cfg)
            rows.append([f"tol={tol} gate={gate}", ratio, 100 * tail])
        return rows

    rows = once(sweep)
    print()
    print_table(["config", "ratio", ">10% err (%)"], rows)
    gated = [r for r in rows if "gate=True" in r[0]]
    open_loop = [r for r in rows if "gate=False" in r[0]][0]
    # the gate costs compression but buys a bounded tail
    assert open_loop[1] >= max(g[1] for g in gated) - 0.05
    assert open_loop[2] >= max(g[2] for g in gated)


def test_ablation_segmentation_strategy(once):
    """Fixed-block vs greedy variable-length segmentation (paper's prose
    describes variable smooth runs; the production codec uses a fixed grid
    for vectorizability)."""
    from repro.core.encoding.delta_greedy import (
        decode_image_greedy,
        encode_image_greedy,
    )

    channels = _deepcam_channels()

    def sweep():
        rows = []
        block_bytes = greedy_bytes = 0
        tails = {"block": [], "greedy": []}
        for ch in channels:
            b = encode_image(ch, DeltaCodecConfig())
            g = encode_image_greedy(ch, DeltaCodecConfig())
            block_bytes += b.nbytes
            greedy_bytes += g.nbytes
            for tag, enc, dec in (("block", b, decode_image),
                                  ("greedy", g, decode_image_greedy)):
                out = dec(enc).astype(np.float32)
                rel = np.abs(out - ch) / np.maximum(np.abs(ch), 1e-12)
                tails[tag].append(np.mean(rel > 0.10))
        raw = channels.nbytes
        rows.append(["block (64-diff grid)", raw / block_bytes,
                     100 * float(np.mean(tails["block"]))])
        rows.append(["greedy (variable runs)", raw / greedy_bytes,
                     100 * float(np.mean(tails["greedy"]))])
        return rows

    rows = once(sweep)
    print()
    print_table(["strategy", "ratio", ">10% err (%)"], rows)
    # both honour the gate; the winner depends on content (greedy saves
    # descriptors on long runs, the grid recovers faster from bad spots)
    assert all(r[1] > 1.0 for r in rows)
    assert all(r[2] < 1.0 for r in rows)


def test_ablation_lut_table_limit(once):
    cfg = cosmoflow.CosmoflowConfig(grid=32)
    sample = cosmoflow.generate_sample(cfg, seed=12)

    def sweep():
        rows = []
        for limit in (128, 1024, 65536):
            c = lut.LutCodecConfig(max_groups_per_table=limit)
            enc = lut.encode_sample(sample.data, c)
            assert np.array_equal(lut.decode_sample(enc), sample.data)
            rows.append([
                limit, len(enc.tables),
                sample.data.nbytes / enc.nbytes,
                max(t.key_width for t in enc.tables),
            ])
        return rows

    rows = once(sweep)
    print()
    print_table(["max groups", "tables", "ratio", "key width"], rows)
    # smaller tables split the volume (multi-table path) but narrow the keys
    assert rows[0][1] > rows[-1][1]
    assert rows[0][3] <= rows[-1][3]
