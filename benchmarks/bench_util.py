"""Shared helpers for the benchmark gates (no tests in this module).

:func:`record_bench` establishes the ``BENCH_<name>.json`` trajectory
convention: each gated benchmark module appends its headline metrics to
one JSON file at the repo root, keeping a bounded history of runs.  A
regression then shows up as a *trajectory* — this commit's number next
to the numbers the gate saw before — rather than a single point that is
gone when the CI log rotates.  Metrics are recorded *before* the gate
asserts, so failing runs land in the trajectory too.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = ["record_bench"]

#: bounded history length per benchmark file
MAX_RUNS = 50


def record_bench(name: str, metrics: dict, *, root: str | Path | None = None) -> Path:
    """Append one run's metrics to ``BENCH_<name>.json``; return its path.

    The file lives at the repo root (override with ``root=`` or the
    ``REPRO_BENCH_DIR`` environment variable) and holds
    ``{"benchmark": name, "runs": [...]}`` with at most :data:`MAX_RUNS`
    entries, oldest dropped first.  A corrupt or hand-edited file
    restarts the trajectory instead of failing the benchmark.
    """
    root = Path(
        root
        or os.environ.get("REPRO_BENCH_DIR")
        or Path(__file__).resolve().parent.parent
    )
    path = root / f"BENCH_{name}.json"
    runs: list[dict] = []
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing, dict) and isinstance(
                existing.get("runs"), list
            ):
                runs = existing["runs"]
        except (json.JSONDecodeError, OSError):
            pass
    runs = (runs + [{"unix_time": round(time.time(), 3), **metrics}])[-MAX_RUNS:]
    path.write_text(
        json.dumps({"benchmark": name, "runs": runs}, indent=2, sort_keys=True)
        + "\n"
    )
    return path
