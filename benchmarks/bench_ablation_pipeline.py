"""Pipeline/system ablations with the performance model.

Explores design dimensions the paper varies implicitly — prefetch depth,
loader worker count, host-cache capacity, operator fusion — holding the
Cori-V100 CosmoFlow configuration fixed.  These are the "architectural
configurations outside the studied systems" knobs (§IX-A).
"""

import dataclasses

from repro.core.plugins.base import SampleCost
from repro.experiments.config import COSMOFLOW, cosmoflow_costs
from repro.experiments.harness import print_table
from repro.simulate import CORI_V100, TrainSimConfig, simulate_node


def _tp(cost, placement, machine=CORI_V100, **kwargs):
    defaults = dict(
        machine=machine, workload=COSMOFLOW, cost=cost, plugin_name="x",
        placement=placement, samples_per_gpu=2048, batch_size=4,
        staged=False, epochs=3, sim_samples_cap=48,
    )
    defaults.update(kwargs)
    return simulate_node(TrainSimConfig(**defaults)).node_samples_per_s


def test_ablation_prefetch_depth(once):
    base = cosmoflow_costs()["base"]

    def sweep():
        return [[d, _tp(base, "cpu", prefetch_depth=d)] for d in (1, 2, 4, 8)]

    rows = once(sweep)
    print()
    print_table(["prefetch depth", "base samples/s"], rows)
    # deeper prefetch can only help (more overlap), and saturates
    tps = [r[1] for r in rows]
    assert tps[-1] >= tps[0] * 0.99


def test_ablation_cache_capacity(once):
    base = cosmoflow_costs()["base"]

    def sweep():
        rows = []
        for frac in (0.1, 0.3, 0.45, 0.9):
            machine = dataclasses.replace(CORI_V100, cache_fraction=frac)
            rows.append([frac, _tp(base, "cpu", machine=machine)])
        return rows

    rows = once(sweep)
    print()
    print_table(["cache fraction", "base samples/s"], rows)
    tps = [r[1] for r in rows]
    # a larger host cache monotonically relieves the streaming baseline
    assert all(a <= b + 1e-6 for a, b in zip(tps, tps[1:]))
    assert tps[-1] > tps[0] * 1.2


def test_ablation_fusion(once):
    """Fusion ablation: apply log on the table (fused) vs on the volume.

    The unfused variant still ships the compact encoded form but must run
    the full-volume operator on the host — costing the CPU path the plugin
    was built to avoid.
    """
    plugin = cosmoflow_costs()["plugin"]
    unfused = SampleCost(
        stored_bytes=plugin.stored_bytes,
        h2d_bytes=plugin.decoded_bytes,  # decoded on host, FP16 across
        decoded_bytes=plugin.decoded_bytes,
        cpu_preprocess_elems=COSMOFLOW.sample_elems,  # full-volume log
        gpu_decode_seconds=0.0,
    )

    def sweep():
        return [
            ["fused (log on table, GPU)", _tp(plugin, "gpu")],
            ["unfused (log on volume, CPU)", _tp(unfused, "cpu")],
        ]

    rows = once(sweep)
    print()
    print_table(["variant", "samples/s"], rows)
    assert rows[0][1] > 2.0 * rows[1][1]


def test_ablation_pinned_memory(once):
    """What if the framework used pinned H2D buffers? (paper footnote 3:
    frameworks use pageable memory to avoid OOM with pinned allocations.)

    The baseline ships full FP32 tensors, so pinned transfers help it a
    little; the plugin ships small encoded buffers and barely notices —
    another way the codec removes the link from the critical path."""
    costs = cosmoflow_costs()

    def sweep():
        rows = []
        for pinned in (False, True):
            b = _tp(costs["base"], "cpu", staged=True, samples_per_gpu=128,
                    pinned_h2d=pinned)
            p = _tp(costs["plugin"], "gpu", staged=True, samples_per_gpu=128,
                    pinned_h2d=pinned)
            rows.append(["pinned" if pinned else "pageable", b, p])
        return rows

    rows = once(sweep)
    print()
    print_table(["H2D buffers", "base", "plugin"], rows)
    base_gain = rows[1][1] / rows[0][1]
    plugin_gain = rows[1][2] / rows[0][2]
    assert base_gain >= 0.99
    assert plugin_gain < base_gain + 0.05  # plugin is link-insensitive


def test_ablation_batch_size_link(once):
    """Batching amortizes per-transfer latency for the H2D-heavy baseline."""
    base = cosmoflow_costs()["base"]

    def sweep():
        return [[bs, _tp(base, "cpu", batch_size=bs, staged=True,
                         samples_per_gpu=128)]
                for bs in (1, 2, 4, 8)]

    rows = once(sweep)
    print()
    print_table(["batch", "base samples/s"], rows)
    # paper: "the base case does not change significantly with batch size"
    tps = [r[1] for r in rows]
    assert max(tps) / min(tps) < 1.25
