"""Extension beyond the paper: multi-node weak scaling.

The paper evaluates single nodes and leaves scaling to future work.  The
model extends naturally: nodes are statistically identical, so one node is
simulated in detail and the hierarchical allreduce adds an inter-node ring
term over the InfiniBand rails.  Weak-scaling efficiency stays high for
both workloads because the per-step gradient exchange is small relative to
compute — and the plugin's advantage *survives scaling* (data loading is
node-local).
"""

from repro.experiments.config import (
    COSMOFLOW,
    DEEPCAM,
    cosmoflow_costs,
    deepcam_costs,
)
from repro.experiments.harness import print_table
from repro.simulate import CORI_V100, TrainSimConfig, simulate_node

NODE_COUNTS = (1, 4, 16, 64, 256)


def _tp(workload, cost, placement, n_nodes):
    cfg = TrainSimConfig(
        machine=CORI_V100, workload=workload, cost=cost, plugin_name="x",
        placement=placement, samples_per_gpu=128, batch_size=4,
        staged=True, epochs=3, sim_samples_cap=48, n_nodes=n_nodes,
    )
    return simulate_node(cfg).node_samples_per_s


def test_extension_weak_scaling(once):
    def sweep():
        rows = []
        cc, dc = cosmoflow_costs(), deepcam_costs()
        for n in NODE_COUNTS:
            cb = _tp(COSMOFLOW, cc["base"], "cpu", n)
            cp = _tp(COSMOFLOW, cc["plugin"], "gpu", n)
            db = _tp(DEEPCAM, dc["base"], "cpu", n)
            dp = _tp(DEEPCAM, dc["gpu"], "gpu", n)
            rows.append([n, cb, cp, cp / cb, db, dp, dp / db])
        return rows

    rows = once(sweep)
    print()
    print_table(
        ["nodes", "cosmo base", "cosmo plugin", "speedup",
         "deepcam base", "deepcam gpu", "speedup"],
        rows,
    )
    # weak-scaling efficiency of the plugin (per-node throughput retention)
    cosmo_eff = rows[-1][2] / rows[0][2]
    deepcam_eff = rows[-1][5] / rows[0][5]
    assert cosmo_eff > 0.90
    assert deepcam_eff > 0.85
    # the plugin's advantage survives scale (loading is node-local)
    assert rows[-1][3] > 0.9 * rows[0][3]
    assert rows[-1][6] > 0.9 * rows[0][6]
