"""Quantitative §V/§IX text claims: error tail, compression ratios, decode
overheads, pageable-PCIe bandwidths."""

from repro.experiments import claims


def test_claims_text(once):
    res = once(claims.run, verbose=False)
    print()
    print(res.render())
    f = res.findings
    assert f["deepcam frac >10% err"] < 0.05  # paper ~3%; ours gated lower
    # open-loop (paper-mode) codec reproduces the paper's error profile
    assert 0.01 < f["deepcam frac >10% err open loop"] < 0.10
    assert f["deepcam open-loop offenders near zero"] > 0.8
    assert 3.3 < f["lut ratio"] < 4.7  # paper ~4x, at true 128^3 scale
    assert 3.0 < f["gzip ratio"] < 7.0  # paper ~5x
    assert 0.01 < f["deepcam decode share"] < 0.08  # paper ~4%
    assert f["cosmoflow decode share"] < 0.01  # paper <1%
