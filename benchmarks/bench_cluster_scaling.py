"""Aggregate scaling and overload behaviour of the serving cluster.

Two claims to hold for :mod:`repro.cluster`:

1. **Worker scaling.**  Aggregate read throughput scales with the number
   of data-plane workers — the reason a dispatcher/worker split exists
   (tf.data service).  Gate: **≥6× aggregate scaling from 1 → 8
   workers** under simulated per-read service latency.
2. **Overload sheds, it does not time out.**  With admission control
   forcing one replica to refuse work, a client storm must finish with
   every read served: clients observe retryable ``BUSY`` sheds and
   re-route to the healthy replica — zero timeouts, zero failures.

Methodology note — this box may have a single CPU core, and loopback has
no latency, so a latency-free ping-pong measures GIL-serialized CPU
where nothing can scale.  Following the repo's simulation methodology,
each worker serves an *uncached* source whose ``read()`` sleeps
``SERVICE_DELAY_S``: uncached reads are serialized per worker (sources
need not be thread-safe), so every worker has a hard capacity of
``1/SERVICE_DELAY_S`` reads/s and aggregate capacity is proportional to
live workers.  Crucially this is *not* the server's ``service_delay_s``
knob, which deliberately sleeps outside the read lock (concurrent
connections overlap it) and therefore measures connection concurrency,
not worker count.  Client-side concurrency (one ``ClusterSource`` per
simulated trainer, distinct salts) is sized well above the 8-worker
capacity so the fleet, not the clients, is the bottleneck.

Run with ``pytest benchmarks/bench_cluster_scaling.py -s`` to print the
measured numbers.
"""

import threading
import time
from time import perf_counter

import pytest

from repro.cluster import ClusterSource, ClusterWorker, Dispatcher
from repro.core.plugins import DeepcamDeltaPlugin
from bench_util import record_bench
from repro.datasets import deepcam
from repro.pipeline import ListSource
from repro.serve.admission import AdmissionController, AdmissionPolicy

N_SAMPLES = 64
#: simulated per-read service time, inside the worker's serialized path.
#: Large relative to Python's per-read framing cost — every process here
#: (clients, workers, dispatcher) shares one GIL, so the simulated
#: service must dominate or the measurement reads GIL contention.
SERVICE_DELAY_S = 0.008
N_CLIENTS = 32
READS_PER_CLIENT = 8


class DelaySource:
    """Source with a fixed per-read service time (simulated decode/IO)."""

    def __init__(self, inner, delay_s: float) -> None:
        self.inner = inner
        self.delay_s = delay_s

    def __len__(self) -> int:
        return len(self.inner)

    def read(self, index: int) -> bytes:
        time.sleep(self.delay_s)
        return self.inner.read(index)


@pytest.fixture(scope="module")
def blobs():
    cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(N_SAMPLES, cfg, seed=0)
    return [plugin.encode(s.data, s.label) for s in ds]


def _start_cluster(blobs, n_workers, *, delay_s=0.0, admissions=None):
    dispatcher = Dispatcher(lease_s=5.0, replication=2, n_buckets=64).start()
    workers = [
        ClusterWorker(
            DelaySource(ListSource(blobs), delay_s),
            dispatcher=dispatcher.address,
            admission=(admissions or {}).get(i),
        ).start()
        for i in range(n_workers)
    ]
    return dispatcher, workers


def _stop_cluster(dispatcher, workers):
    for w in workers:
        w.close(drain=False, timeout_s=2.0)
    dispatcher.close(drain=False, timeout_s=2.0)


def _client_storm(address, n_clients, reads_per_client, *, repeats=2):
    """Best-of-N aggregate reads/s from ``n_clients`` concurrent trainers."""
    clients = [
        ClusterSource(address, timeout_s=10.0, seed=c) for c in range(n_clients)
    ]
    errors: list[Exception] = []

    def sweep(client, offset):
        try:
            for k in range(reads_per_client):
                client.read((offset + k * 7) % N_SAMPLES)
        except Exception as exc:  # surface, do not swallow, in the gate
            errors.append(exc)

    try:
        # warm pass establishes routing tables and pooled connections to
        # every worker each client will touch, off the measured clock
        warmers = [
            threading.Thread(target=sweep, args=(client, c))
            for c, client in enumerate(clients)
        ]
        for t in warmers:
            t.start()
        for t in warmers:
            t.join()
        if errors:
            return 0.0, errors, 0
        best = 0.0
        for _ in range(repeats):
            threads = [
                threading.Thread(target=sweep, args=(client, c))
                for c, client in enumerate(clients)
            ]
            t0 = perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            total = n_clients * reads_per_client
            best = max(best, total / (perf_counter() - t0))
        busy = sum(
            dict(c.stats.snapshot()).get("cluster.busy_sheds", (0, 0.0))[0]
            for c in clients
        )
        return best, errors, busy
    finally:
        for client in clients:
            client.close()


def test_aggregate_throughput_scales_1_to_8_workers(blobs):
    rates = {}
    for n_workers in (1, 8):
        dispatcher, workers = _start_cluster(
            blobs, n_workers, delay_s=SERVICE_DELAY_S
        )
        try:
            rate, errors, _ = _client_storm(
                dispatcher.address, N_CLIENTS, READS_PER_CLIENT
            )
        finally:
            _stop_cluster(dispatcher, workers)
        assert not errors, f"reads failed under {n_workers} worker(s): {errors[:3]}"
        rates[n_workers] = rate
    scaling = rates[8] / rates[1]
    print(
        f"\ncluster scaling, {SERVICE_DELAY_S * 1e3:.0f} ms serialized "
        f"service: 1 worker {rates[1]:.0f} reads/s, "
        f"8 workers {rates[8]:.0f} reads/s — scaling {scaling:.2f}x"
    )
    record_bench(
        "cluster_scaling",
        {
            "workers_1_reads_per_s": round(rates[1], 1),
            "workers_8_reads_per_s": round(rates[8], 1),
            "scaling_1_to_8": round(scaling, 2),
            "service_delay_ms": SERVICE_DELAY_S * 1e3,
        },
    )
    assert scaling >= 6.0, (
        f"aggregate throughput scaled only {scaling:.2f}x from 1 to 8 "
        f"workers; routing is not spreading load across the fleet"
    )


def test_overload_sheds_and_reroutes_instead_of_timing_out(blobs):
    # worker 0 admits one request at a time and almost no token budget:
    # most reads routed to it must come back BUSY and re-route to w1
    shedding = AdmissionController(
        AdmissionPolicy(rate_per_client=1.0, burst=1.0, max_inflight=1)
    )
    dispatcher, workers = _start_cluster(
        blobs, 2, delay_s=0.001, admissions={0: shedding}
    )
    try:
        rate, errors, busy = _client_storm(
            dispatcher.address, 8, 32, repeats=1
        )
    finally:
        _stop_cluster(dispatcher, workers)
    print(
        f"\noverload: {rate:.0f} reads/s with w0 shedding — "
        f"{busy} BUSY shed(s) observed, {len(errors)} failure(s)"
    )
    assert not errors, (
        f"overload must shed and re-route, never fail reads: {errors[:3]}"
    )
    assert busy > 0, (
        "the constrained worker never shed; admission control is inactive"
    )
