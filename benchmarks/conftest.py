"""Benchmark harness configuration.

Every paper exhibit (table/figure) has one benchmark module that
regenerates it through ``pytest benchmarks/ --benchmark-only``; the
regenerated rows print with ``-s`` and the headline findings are asserted
against the paper's qualitative claims.  Exhibits are deterministic, so
they run a single benchmark round; the codec microbenchmarks use normal
multi-round timing.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a deterministic exhibit with one round/iteration."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
