"""Table I: system architecture of the evaluated systems."""

from repro.experiments import tables


def test_table1_systems(once):
    res = once(tables.table1)
    print()
    print(res.render())
    rows = {r[0]: r[1:] for r in res.rows}
    assert rows["GPU"] == ["V100", "V100", "A100"]
    assert rows["GPUs per node"] == [6, 8, 8]
