"""Extension: epoch-by-epoch cache warm-up (Figure 1's tier logic in time).

The paper's Figure 1 explains which migration steps repeat per epoch as a
function of where the dataset fits.  This exhibit shows the transient: the
first epoch pays cold storage reads; once the host cache holds the (small)
set, later epochs run at the preprocessing/compute-bound steady state.
The encoded representation both shortens the cold epoch (fewer bytes) and
raises the steady state (no host preprocessing).
"""

from repro.experiments.config import COSMOFLOW, cosmoflow_costs
from repro.experiments.harness import print_table, render_bars
from repro.simulate import CORI_V100, TrainSimConfig, simulate_node


def _epochs(cost, placement, epochs=5):
    cfg = TrainSimConfig(
        machine=CORI_V100, workload=COSMOFLOW, cost=cost, plugin_name="x",
        placement=placement, samples_per_gpu=128, batch_size=4,
        staged=False, epochs=epochs, sim_samples_cap=48,
    )
    return simulate_node(cfg).epoch_samples_per_s


def test_extension_cache_warmup(once):
    costs = cosmoflow_costs()

    def sweep():
        return {
            "base": _epochs(costs["base"], "cpu"),
            "plugin": _epochs(costs["plugin"], "gpu"),
        }

    series = once(sweep)
    print()
    rows = [
        [e, series["base"][e], series["plugin"][e]]
        for e in range(len(series["base"]))
    ]
    print_table(["epoch", "base samples/s", "plugin samples/s"], rows)
    print()
    print(render_bars(
        [f"base e{e}" for e in range(len(series["base"]))],
        series["base"], unit=" samples/s",
    ))
    base, plug = series["base"], series["plugin"]
    # cold epoch is measurably slower than the cached steady state
    assert base[0] < 0.7 * base[-1]
    assert plug[0] < plug[-1]
    # steady state is flat (cached): later epochs within a few percent
    assert abs(base[-1] - base[-2]) / base[-1] < 0.1
    # the plugin's cold epoch already beats the baseline's steady state
    assert plug[0] > base[-1]
