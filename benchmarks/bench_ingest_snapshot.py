"""Online-ingestion gate: training must not pay for concurrent ingest.

Two claims to hold for ``repro.ingest``:

* **ingest-concurrent throughput** — a trainer epoch over a
  manifest-pinned snapshot while an :class:`~repro.ingest.IngestWriter`
  appends and publishes in the background must deliver **≥ 90%** of the
  same epoch over a frozen (no-ingest) directory.  Snapshot isolation is
  the mechanism: the trainer reads committed byte ranges frozen by its
  manifest, so appends, shard rolls and manifest publishes share no lock
  or copy with the read path.  The ingester appends pre-encoded blobs —
  the subsystem under test is the append/publish plane racing the reads,
  not the codec competing for this runner's cores (encode cost has its
  own exhibits in ``bench_codec_microbench.py``).
* **publish cost** — freezing a snapshot (flush + fsync + content-hash +
  atomic manifest write) must cost **< 5%** of one training epoch, so
  per-epoch publishing is free at the cadence the experiment and the CI
  smoke use it.

Both headline numbers are appended to ``BENCH_ingest.json`` at the repo
root (the :func:`bench_util.record_bench` trajectory convention).

Run with ``pytest benchmarks/bench_ingest_snapshot.py -s`` to print the
measured rates.
"""

from pathlib import Path
from time import perf_counter, sleep
import threading

import numpy as np
import pytest

from bench_util import record_bench
from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.ingest import IngestWriter, ManifestSource, ManifestStore
from repro.pipeline import DataLoader
from repro.serve import ShardPlan

N_SAMPLES = 64
GROW_PER_PUBLISH = 4
MIN_CONCURRENT_FRACTION = 0.90
MAX_PUBLISH_FRACTION = 0.05

_CFG = deepcam.DeepcamConfig(height=32, width=48, n_channels=8)


def _fill(root: Path, plugin, n: int, *, start_seed: int = 0) -> IngestWriter:
    writer = IngestWriter(
        root, fingerprint={"bench": "ingest", "seed": start_seed}
    )
    base = writer.n_samples
    for i in range(n):
        s = deepcam.generate_sample(
            _CFG, seed=np.random.default_rng([start_seed, base + i])
        )
        writer.append_sample(plugin, s.data, s.label)
    writer.publish()
    return writer


def _epoch_rate(root: Path, store: ManifestStore, plugin, *, repeats: int = 3):
    """Best-of-N samples/s of one pinned-manifest trainer epoch."""
    manifest = store.latest()
    plan = ShardPlan(manifest.n_samples, world_size=1, seed=1)
    best, elapsed = 0.0, float("inf")
    for _ in range(repeats):
        with ManifestSource(root, manifest) as src:
            loader = DataLoader(
                src, plugin, batch_size=8,
                order_fn=lambda e: plan.shard(0, e),
            )
            t0 = perf_counter()
            for batch, labels in loader.batches(0):
                batch.tobytes()
            dt = perf_counter() - t0
        best = max(best, manifest.n_samples / dt)
        elapsed = min(elapsed, dt)
    return best, elapsed


def test_snapshot_isolates_training_from_ingest(tmp_path):
    plugin = DeepcamDeltaPlugin("cpu")

    frozen_dir = tmp_path / "frozen"
    _fill(frozen_dir, plugin, N_SAMPLES).close()
    frozen_rate, epoch_s = _epoch_rate(
        frozen_dir, ManifestStore(frozen_dir), plugin
    )

    live_dir = tmp_path / "live"
    writer = _fill(live_dir, plugin, N_SAMPLES)
    stop = threading.Event()
    published = [0]
    incoming = [
        plugin.encode(s.data, s.label)
        for s in (
            deepcam.generate_sample(_CFG, seed=np.random.default_rng([7, i]))
            for i in range(32)
        )
    ]

    def ingest_loop() -> None:
        # a steady stream of already-encoded arrivals at the cadence the
        # snapshot design targets: a few appends and roughly one publish
        # per training epoch (publishing hundreds of times per epoch
        # would only measure this runner's core count)
        k = 0
        while not stop.is_set():
            for _ in range(GROW_PER_PUBLISH):
                writer.append(incoming[k % len(incoming)])
                k += 1
            writer.publish()
            published[0] += 1
            sleep(0.05)

    ingester = threading.Thread(target=ingest_loop, daemon=True)
    ingester.start()
    try:
        concurrent_rate, _ = _epoch_rate(
            live_dir, ManifestStore(live_dir), plugin
        )
    finally:
        stop.set()
        ingester.join(timeout=10.0)
        writer.close()

    # publish cost: freeze a typical increment, best of a few tries
    cost_dir = tmp_path / "cost"
    cost_writer = _fill(cost_dir, plugin, N_SAMPLES)
    publish_s = float("inf")
    for _ in range(3):
        base = cost_writer.n_samples
        for i in range(GROW_PER_PUBLISH):
            s = deepcam.generate_sample(
                _CFG, seed=np.random.default_rng([0, base + i])
            )
            cost_writer.append_sample(plugin, s.data, s.label)
        t0 = perf_counter()
        cost_writer.publish()
        publish_s = min(publish_s, perf_counter() - t0)
    cost_writer.close()

    fraction = concurrent_rate / frozen_rate
    publish_fraction = publish_s / epoch_s
    print(
        f"\nfrozen {frozen_rate:.0f} samples/s, ingest-concurrent "
        f"{concurrent_rate:.0f} samples/s ({fraction:.0%}, "
        f"{published[0]} publishes raced); publish {publish_s * 1e3:.2f} ms "
        f"vs epoch {epoch_s * 1e3:.1f} ms ({publish_fraction:.1%})"
    )
    record_bench(
        "ingest",
        {
            "n_samples": N_SAMPLES,
            "frozen_samples_per_s": round(frozen_rate, 1),
            "concurrent_samples_per_s": round(concurrent_rate, 1),
            "concurrent_fraction": round(fraction, 4),
            "publishes_during_epochs": published[0],
            "publish_s": round(publish_s, 6),
            "epoch_s": round(epoch_s, 6),
            "publish_fraction_of_epoch": round(publish_fraction, 4),
        },
    )
    assert fraction >= MIN_CONCURRENT_FRACTION, (
        f"training alongside ingest delivered only {fraction:.0%} of the "
        f"frozen-directory rate (gate: {MIN_CONCURRENT_FRACTION:.0%})"
    )
    assert publish_fraction < MAX_PUBLISH_FRACTION, (
        f"publishing a snapshot costs {publish_fraction:.1%} of an epoch "
        f"(gate: {MAX_PUBLISH_FRACTION:.0%})"
    )


def test_recovery_cost_for_the_record(tmp_path):
    """Ungated: reopening after a torn tail is a scan + truncate, not a
    rebuild — records the recovery time for a directory of this size."""
    plugin = DeepcamDeltaPlugin("cpu")
    root = tmp_path / "crash"
    writer = _fill(root, plugin, N_SAMPLES)
    tail = writer._open.path
    writer.close()
    with open(tail, "ab") as fh:
        fh.write(b"\x00" * 37)
    t0 = perf_counter()
    reopened = IngestWriter(root, fingerprint={"bench": "ingest", "seed": 0})
    recover_s = perf_counter() - t0
    torn = sum(r.truncated_bytes for r in reopened.recovery)
    assert torn == 37
    assert reopened.n_samples == N_SAMPLES
    reopened.close()
    print(f"\nreopen+recover of {N_SAMPLES} samples: {recover_s * 1e3:.1f} ms")
