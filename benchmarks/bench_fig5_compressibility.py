"""Figure 5: CosmoFlow sample compressibility statistics.

Regenerates the three panels: (a) power-law value-frequency distribution,
(b) unique values per sample, (c) unique 4-redshift groups vs the
permutation bound (16-bit indexable).
"""

from repro.experiments import fig5


def test_fig5_compressibility(once):
    res = once(fig5.run, n_samples=6, grid=32, verbose=False)
    print()
    print(res.render())
    assert res.findings["mean log-log slope (power law <= -1)"] < -1.0
    assert res.findings["max groups / 2^16"] <= 1.0
    assert all(v == "yes" for v in res.column("16-bit keys"))
