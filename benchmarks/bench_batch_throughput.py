"""Single-client throughput of the batch plane: READ_BATCH vs READ.

The claim to hold: batched fetch amortizes the fixed per-round-trip cost
of the data service — one ``READ_BATCH`` frame carries 32 container
blobs, so a single trainer client pays the wire latency once per batch
instead of once per sample, and the multi-sample decode runs as one
vectorized pass instead of 32 scalar ones.

Methodology note — as in ``bench_serve_throughput.py``, loopback has
essentially no latency, so the server's ``service_delay_s`` knob stands
in for the per-request remote link cost (2 ms here).  That delay is paid
*once per request frame* regardless of how many blobs it carries, which
is exactly the fixed cost the batch plane exists to amortize; a batch
plane that secretly issued scalar reads would show 1×.  The gate asserts
**≥3× single-client samples/s at batch 32 vs batch 1** (measured here:
≈20×), and that both epochs are bit-identical — speed never buys a
different training input.

Run with ``pytest benchmarks/bench_batch_throughput.py -s`` to print the
measured numbers; the run recorded in CHANGES.md used this module.
"""

from time import perf_counter

import pytest

from bench_util import record_bench
from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.pipeline import DataLoader, ListSource
from repro.serve import DataServer, RemoteSource
from repro.storage.cache import SampleCache

N_SAMPLES = 64
#: simulated per-frame remote-link latency (see module docstring)
SERVICE_DELAY_S = 0.002


@pytest.fixture(scope="module")
def fixture():
    cfg = deepcam.DeepcamConfig(height=32, width=48, n_channels=8)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(N_SAMPLES, cfg, seed=0)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


def _epoch(source, plugin, batch_size, batched_fetch):
    loader = DataLoader(
        source, plugin, batch_size=batch_size, seed=1,
        batched_fetch=batched_fetch,
    )
    rows = []
    for batch, labels in loader.batches(0):
        rows.extend(
            (b.tobytes(), l.tobytes()) for b, l in zip(batch, labels)
        )
    return rows


def _rate(host, port, plugin, batch_size, batched_fetch, repeats=3):
    """Best-of-N single-client epoch samples/s, and the epoch's bytes."""
    best, rows = 0.0, None
    for _ in range(repeats):
        with RemoteSource(host, port) as src:
            t0 = perf_counter()
            rows = _epoch(src, plugin, batch_size, batched_fetch)
            best = max(best, N_SAMPLES / (perf_counter() - t0))
    return best, rows


def test_batched_fetch_amortizes_the_round_trip(fixture):
    plugin, blobs = fixture
    reference = _epoch(ListSource(blobs), plugin, 32, False)
    with DataServer(
        ListSource(blobs),
        cache=SampleCache(1e9),
        service_delay_s=SERVICE_DELAY_S,
    ) as server:
        host, port = server.address
        _rate(host, port, plugin, 32, True, repeats=1)  # warm the cache
        scalar, scalar_rows = _rate(host, port, plugin, 1, False)
        batched, batched_rows = _rate(host, port, plugin, 32, True)
    speedup = batched / scalar
    print(
        f"\nsingle client, {SERVICE_DELAY_S * 1e3:.0f} ms simulated link: "
        f"batch 1 (scalar READ) {scalar:.0f} samples/s, "
        f"batch 32 (READ_BATCH) {batched:.0f} samples/s — {speedup:.1f}x"
    )
    record_bench(
        "batch",
        {
            "scalar_samples_per_s": round(scalar, 1),
            "batched_samples_per_s": round(batched, 1),
            "speedup": round(speedup, 2),
            "service_delay_ms": SERVICE_DELAY_S * 1e3,
        },
    )
    # speed never buys different bytes: both remote epochs reproduce the
    # all-local decode bit for bit (order differs with batch size only
    # through the shared seed, so compare as multisets of samples)
    assert sorted(batched_rows) == sorted(reference)
    assert sorted(scalar_rows) == sorted(reference)
    assert speedup >= 3.0, (
        f"READ_BATCH at batch 32 delivered only {speedup:.2f}x the scalar "
        f"rate; the batch plane is not amortizing the round-trip"
    )


def test_local_source_batching_for_the_record(fixture):
    """Ungated: the batch plane over an in-process source (no wire to
    amortize — records the pure vectorized-decode effect)."""
    plugin, blobs = fixture

    def run(batched):
        t0 = perf_counter()
        rows = _epoch(ListSource(blobs), plugin, 32, batched)
        return N_SAMPLES / (perf_counter() - t0), rows

    scalar, a = run(False)
    batched, b = run(True)
    print(
        f"\nlocal in-process source: scalar {scalar:.0f}, "
        f"batched {batched:.0f} samples/s ({batched / scalar:.2f}x)"
    )
    assert a == b  # same order, same bytes
    assert batched > 0 and scalar > 0
