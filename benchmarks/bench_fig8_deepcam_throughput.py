"""Figure 8: DeepCAM node throughput across the full experiment grid.

{Summit, Cori-V100, Cori-A100} × {small, large} × {staged, unstaged} ×
batch {1,2,4,8} × {base, cpu plugin, gpu plugin}.
"""

from repro.experiments import fig8


def test_fig8_deepcam_throughput(once):
    res = once(fig8.run, sim_samples_cap=48, verbose=False)
    print()
    print(res.render())
    # paper headline shapes on the memory-resident small set: up to ~3x on
    # Cori (3.1x on A100); the streaming large set can exceed it because
    # the smaller encoded samples also relieve the storage path
    assert 2.3 < res.findings["max gpu-plugin speedup Cori-A100/small"] < 3.8
    assert 2.3 < res.findings["max gpu-plugin speedup Cori-V100/small"] < 3.8
    assert res.findings["max gpu-plugin speedup Cori-A100/large"] < 6.0
    # large-dataset slowdown of the baseline (paper: 1.2-2.4x)
    base = {
        (r[0], r[1], r[2], r[3]): r[4] for r in res.rows
    }
    slow = base[("Cori-V100", "small", "unstaged", 4)] / base[
        ("Cori-V100", "large", "unstaged", 4)
    ]
    assert 1.1 < slow < 2.6
