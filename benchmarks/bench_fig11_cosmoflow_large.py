"""Figure 11: CosmoFlow throughput, large set (2048 samples/GPU).

Paper: staging helps Cori up to ~1.5x, Summit within 10%; the plugin's
speedup reaches an order of magnitude (its encoded dataset fits back in
host memory).
"""

from repro.experiments import fig11


def test_fig11_cosmoflow_large(once):
    res = once(fig11.run, sim_samples_cap=48, verbose=False)
    print()
    print(res.render())
    f = res.findings
    assert f["max plugin speedup Cori-V100"] > 7.0  # order of magnitude
    assert 1.2 < f["staging gain Cori-V100"] < 2.2
    assert f["staging gain Summit"] < 1.15  # within ~10%
