"""Figure 7: CosmoFlow convergence across repeated runs.

Paper protocol: repeated runs per MLPerf HPC rules (16 in the paper; 4
here for wall-clock), identical learning schedule for base and decoded
samples.  The decoded samples must converge at least as well.
"""

from repro.experiments import fig7


def test_fig7_cosmoflow_convergence(once):
    res = once(
        fig7.run,
        repetitions=4, n_samples=12, epochs=6, grid=16, verbose=False,
    )
    print()
    print(res.render())
    ratio = res.findings["decoded/base final loss ratio"]
    assert 0.5 < ratio < 1.3  # preserved-or-better convergence
    curve = res.column("base mean")
    assert curve[-1] < curve[0]
