"""Simulated-bandwidth gate for the tier hierarchy.

The claim to hold: once the :class:`~repro.tiering.TierManager`'s
between-epoch migration has promoted the working set off the parallel
file system, an epoch of reads costs **at least 2× less** modeled read
time than the same epoch served entirely from the PFS.

Methodology note — this is the repo's modeled-time methodology (the DES
machines, ``service_delay_s`` in the serve benchmarks): every read the
hierarchy serves charges ``read_time(spec, nbytes)`` of the tier that
served it, using the same :class:`~repro.storage.filesystem.TierSpec`
bandwidth/latency numbers the cost model uses.  Test-sized files on a
laptop say nothing about Summit's GPFS; the spec-derived seconds are
deterministic and machine-independent, so the gate can assert a hard
ratio.  The PFS-only baseline is the analytic epoch cost
``sum(read_time(machine.pfs, len(blob)))`` — exactly what the manager
would charge if every read missed to backing.

Run with ``pytest benchmarks/bench_tiering.py -s`` to print the measured
ratios for every evaluated machine.
"""

import pytest

from bench_util import record_bench
from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.pipeline import ListSource
from repro.storage.filesystem import read_time
from repro.tiering import TieredSource, build_hierarchy
from repro.tune import resolve_machine

N_SAMPLES = 32
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def blobs():
    cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(N_SAMPLES, cfg, seed=0)
    return [plugin.encode(s.data, s.label) for s in ds]


def _settled_epoch_seconds(machine, blobs, *, ram_mb, nvme_mb):
    """Modeled read seconds of one epoch after promotion has settled."""
    manager = build_hierarchy(
        machine,
        ram_budget_bytes=ram_mb * 1e6,
        nvme_budget_bytes=nvme_mb * 1e6,
        verify=True,
    )
    source = TieredSource(ListSource(blobs), manager)
    for _ in range(2):  # cold epoch, migrate, then a warming epoch
        for i in range(len(blobs)):
            source.read(i)
        source.end_epoch()
    before = manager.modeled_read_seconds()
    for i in range(len(blobs)):
        source.read(i)
    settled = manager.modeled_read_seconds() - before
    return settled, manager


@pytest.mark.parametrize(
    "machine_name", ["summit", "cori-v100", "cori-a100"]
)
def test_promoted_working_set_2x_over_pfs(blobs, machine_name):
    """RAM+NVMe hierarchy, budgets that fit the working set."""
    machine = resolve_machine(machine_name)
    total_mb = sum(len(b) for b in blobs) / 1e6
    settled, manager = _settled_epoch_seconds(
        machine, blobs, ram_mb=2 * total_mb, nvme_mb=4 * total_mb
    )
    pfs_only = sum(read_time(machine.pfs, len(b)) for b in blobs)
    speedup = pfs_only / settled
    status = manager.status()
    print(
        f"\n{machine_name}: settled epoch {settled * 1e3:.3f} ms vs "
        f"PFS-only {pfs_only * 1e3:.1f} ms — {speedup:.0f}x "
        f"(hit rate {status['hit_rate']:.0%}, "
        f"{status['promotions']} promotions)"
    )
    record_bench(
        "tiering",
        {
            "machine": machine_name,
            "settled_epoch_ms": round(settled * 1e3, 4),
            "pfs_only_ms": round(pfs_only * 1e3, 4),
            "speedup": round(speedup, 1),
            "hit_rate": round(status["hit_rate"], 4),
        },
    )
    assert status["promotions"] > 0, "nothing was promoted"
    assert speedup >= MIN_SPEEDUP, (
        f"{machine_name}: promoted working set is only {speedup:.2f}x "
        f"faster than PFS-only (gate: {MIN_SPEEDUP}x)"
    )


def test_nvme_only_hierarchy_still_beats_pfs(blobs):
    """A zero-RAM hierarchy (NVMe staging only) must clear the gate too."""
    machine = resolve_machine("summit")
    total_mb = sum(len(b) for b in blobs) / 1e6
    settled, _ = _settled_epoch_seconds(
        machine, blobs, ram_mb=0.0, nvme_mb=4 * total_mb
    )
    pfs_only = sum(read_time(machine.pfs, len(b)) for b in blobs)
    speedup = pfs_only / settled
    print(f"\nsummit NVMe-only: {speedup:.1f}x over PFS-only")
    assert speedup >= MIN_SPEEDUP


def test_modeled_time_accounts_every_read(blobs):
    """Sanity: hits + backing reads account for every read of the sweep."""
    machine = resolve_machine("summit")
    total_mb = sum(len(b) for b in blobs) / 1e6
    _, manager = _settled_epoch_seconds(
        machine, blobs, ram_mb=2 * total_mb, nvme_mb=4 * total_mb
    )
    status = manager.status()
    served = status["misses"] + sum(lv["hits"] for lv in status["levels"])
    assert served == 3 * len(blobs)
    assert status["modeled_read_s"] > 0.0
