"""Aggregate throughput of the data service under concurrent clients.

The claim to hold: the threaded :class:`~repro.serve.server.DataServer`
*overlaps* the service of concurrent clients, so aggregate throughput on
the warmed cache path scales as trainer clients are added — the property
a disaggregated data service exists for (tf.data service, §2 of its
motivation).

Methodology note — this box may have a single CPU core.  On real
deployments each request carries network/storage latency that concurrent
connections overlap; loopback has essentially none, so a latency-free
localhost ping-pong measures nothing but GIL-serialized CPU, where no
architecture can scale on one core.  Following the repo's simulation
methodology (SimulatedGpu, the DES machines), the server's
``service_delay_s`` knob stands in for that per-request remote latency:
a *serial* server would still serve clients one at a time and show 1×;
the measured scaling is genuinely the concurrency of the implementation.
The gate asserts **≥2× aggregate scaling from 1 → 4 clients** (measured
here: ≈3.9×).  A second, ungated measurement reports the raw zero-delay
loopback numbers and the local in-process baseline for the record.

Run with ``pytest benchmarks/bench_serve_throughput.py -s`` to print the
measured numbers; the run recorded in CHANGES.md used this module.
"""

import threading
from time import perf_counter

import pytest

from bench_util import record_bench
from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.pipeline import ListSource
from repro.serve import DataServer, RemoteSource, ShardPlan
from repro.storage.cache import SampleCache

N_SAMPLES = 64
#: simulated per-READ remote-link latency (see module docstring)
SERVICE_DELAY_S = 0.002


@pytest.fixture(scope="module")
def blobs():
    cfg = deepcam.DeepcamConfig(height=32, width=48, n_channels=8)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(N_SAMPLES, cfg, seed=0)
    return [plugin.encode(s.data, s.label) for s in ds]


def _sweep(host, port, indices):
    with RemoteSource(host, port) as src:
        for i in indices:
            src.read(int(i))


def _aggregate(host, port, n_clients, repeats=3):
    """Best-of-N aggregate samples/s over disjoint per-client shards."""
    plan = ShardPlan(N_SAMPLES, world_size=n_clients, seed=0)
    best = 0.0
    for _ in range(repeats):
        threads = [
            threading.Thread(target=_sweep, args=(host, port, plan.shard(r, 0)))
            for r in range(n_clients)
        ]
        t0 = perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        best = max(best, N_SAMPLES / (perf_counter() - t0))
    return best


def test_cached_path_scales_1_to_4_clients(blobs):
    with DataServer(
        ListSource(blobs),
        cache=SampleCache(1e9),
        service_delay_s=SERVICE_DELAY_S,
    ) as server:
        host, port = server.address
        _sweep(host, port, range(N_SAMPLES))  # warm the cache
        assert server.cache.stats.misses == N_SAMPLES
        thr = {c: _aggregate(host, port, c) for c in (1, 2, 4)}
        assert server.cache.stats.misses == N_SAMPLES  # cached path stayed cached
    scaling = thr[4] / thr[1]
    print(
        f"\ncached path, {SERVICE_DELAY_S * 1e3:.0f} ms simulated link: "
        + ", ".join(f"{c} client(s) {v:.0f} samples/s" for c, v in thr.items())
        + f" — 1→4 scaling {scaling:.2f}x"
    )
    record_bench(
        "serve",
        {
            "clients_1_samples_per_s": round(thr[1], 1),
            "clients_4_samples_per_s": round(thr[4], 1),
            "scaling_1_to_4": round(scaling, 2),
            "service_delay_ms": SERVICE_DELAY_S * 1e3,
        },
    )
    assert scaling >= 2.0, (
        f"aggregate throughput scaled only {scaling:.2f}x from 1 to 4 "
        f"clients; the server is serializing its connections"
    )


def test_loopback_and_local_baseline_for_the_record(blobs):
    """Ungated: raw loopback serve rates and the in-process local path."""
    local = ListSource(blobs)
    t0 = perf_counter()
    for _ in range(4):
        for i in range(N_SAMPLES):
            local.read(i)
    local_rate = 4 * N_SAMPLES / (perf_counter() - t0)

    with DataServer(ListSource(blobs), cache=SampleCache(1e9)) as server:
        host, port = server.address
        _sweep(host, port, range(N_SAMPLES))
        thr = {c: _aggregate(host, port, c) for c in (1, 4)}
    print(
        f"\nzero-delay loopback: 1 client {thr[1]:.0f}, "
        f"4 clients {thr[4]:.0f} samples/s "
        f"(local in-process path: {local_rate:.0f} samples/s)"
    )
    assert thr[1] > 0 and thr[4] > 0
