"""Wall-clock gate for the preprocessing-graph optimizer.

The claim to hold: compiling a workload's *declared* preprocessing graph
with the optimizer passes on must beat the naive (declaration-order)
compilation of the same graph by **at least 1.5×** measured wall clock,
while remaining bit-identical — the derived rewrites (``log1p``+FP16
folded onto the LUT table, the holdout filter hoisted ahead of read and
decode) have to pay for themselves on real arrays, not just in the cost
model's arithmetic.

Methodology note — unlike the tiering gate this is *measured* time, so
the volumes are sized to keep NumPy kernels, not Python dispatch, on the
critical path: CosmoFlow runs 4×32³ voxel volumes (the naive plan pays
two full-volume elementwise passes per sample that fusion folds onto a
few hundred table entries), DeepCAM runs a 50% index holdout (the naive
plan reads and delta-decodes every sample before dropping half).  Times
are best-of-``REPEATS`` over a full epoch through the
:class:`~repro.pipeline.loader.DataLoader`.

The second gate ties the measurement back to the cost model: the
ranking ``predict_throughput`` assigns the naive and optimized plans
must agree with the measured ordering on both workloads — the tuner
picks plans with exactly that comparison.

Run with ``pytest benchmarks/bench_graph_fusion.py -s`` to print the
measured speedups.
"""

import time

import pytest

from bench_util import record_bench
from repro.core.plugins import CosmoflowLutPlugin, DeepcamDeltaPlugin
from repro.datasets import cosmoflow, deepcam
from repro.graph import compile_graph
from repro.pipeline import DataLoader, ListSource
from repro.tune import resolve_machine, workload_space
from repro.tune.costmodel import predict_throughput

MIN_SPEEDUP = 1.5
REPEATS = 3
HOLDOUT = 0.5


@pytest.fixture(scope="module")
def cosmo():
    cfg = cosmoflow.CosmoflowConfig(grid=32, n_particles=80_000)
    plugin = CosmoflowLutPlugin("cpu")
    ds = cosmoflow.generate_dataset(6, cfg, seed=0)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


@pytest.fixture(scope="module")
def cam():
    cfg = deepcam.DeepcamConfig(height=32, width=48, n_channels=4)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(16, cfg, seed=0)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


def _declared(fixture, **kwargs):
    plugin, blobs = fixture
    return plugin, blobs, plugin.declare_preprocessing(
        ListSource(blobs), **kwargs
    )


def _epoch_outputs(loader):
    out = []
    for batch, labels in loader.batches(0):
        out.append(batch.tobytes())
        out.append(labels.tobytes())
    return out


def _best_epoch_seconds(loader):
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _batch in loader.batches(0):
            pass
        best = min(best, time.perf_counter() - t0)
    return best


def _measured_speedup(plugin, blobs, graph):
    """(speedup, bit_identical) of the optimized plan over the naive one."""
    loaders = {
        opt: DataLoader(
            ListSource(blobs), plugin, batch_size=2, seed=0,
            graph=graph.copy(), optimize_graph=opt,
        )
        for opt in (False, True)
    }
    identical = _epoch_outputs(loaders[False]) == _epoch_outputs(loaders[True])
    naive_s = _best_epoch_seconds(loaders[False])
    opt_s = _best_epoch_seconds(loaders[True])
    return naive_s / opt_s, identical, naive_s, opt_s


def test_cosmoflow_fusion_speedup(cosmo):
    """Table-side fusion vs two full-volume passes per sample."""
    plugin, blobs, graph = _declared(cosmo)
    plan = compile_graph(graph)
    fused = {s.name for n in plan.graph.nodes for s in n.fused_steps}
    assert fused == {"log1p", "fp16"}, f"fusion not derived: {fused}"
    speedup, identical, naive_s, opt_s = _measured_speedup(
        plugin, blobs, graph
    )
    print(
        f"\ncosmoflow fusion: naive {naive_s * 1e3:.1f} ms vs optimized "
        f"{opt_s * 1e3:.1f} ms per epoch — {speedup:.2f}x"
    )
    record_bench(
        "fusion_cosmoflow",
        {
            "naive_epoch_ms": round(naive_s * 1e3, 2),
            "optimized_epoch_ms": round(opt_s * 1e3, 2),
            "speedup": round(speedup, 2),
            "bit_identical": identical,
        },
    )
    assert identical, "optimized epoch is not bit-identical to naive"
    assert speedup >= MIN_SPEEDUP, (
        f"fused decode is only {speedup:.2f}x faster (gate: {MIN_SPEEDUP}x)"
    )


def test_deepcam_prefilter_speedup(cam):
    """Hoisted index holdout vs read-decode-then-drop."""
    plugin, blobs, graph = _declared(cam, holdout=HOLDOUT)
    plan = compile_graph(graph)
    assert [p.name for p in plan.prefilters] == ["holdout"], \
        "holdout was not hoisted to a prefilter"
    speedup, identical, naive_s, opt_s = _measured_speedup(
        plugin, blobs, graph
    )
    print(
        f"\ndeepcam prefilter: naive {naive_s * 1e3:.1f} ms vs optimized "
        f"{opt_s * 1e3:.1f} ms per epoch — {speedup:.2f}x"
    )
    record_bench(
        "prefilter_deepcam",
        {
            "naive_epoch_ms": round(naive_s * 1e3, 2),
            "optimized_epoch_ms": round(opt_s * 1e3, 2),
            "speedup": round(speedup, 2),
            "bit_identical": identical,
        },
    )
    assert identical, "optimized epoch is not bit-identical to naive"
    assert speedup >= MIN_SPEEDUP, (
        f"prefiltered epoch is only {speedup:.2f}x faster "
        f"(gate: {MIN_SPEEDUP}x)"
    )


@pytest.mark.parametrize("workload,rep", [
    ("cosmoflow", "plugin"),
    ("deepcam", "cpu"),
])
def test_cost_model_ranking_matches_measurement(
    cosmo, cam, workload, rep
):
    """predict_throughput must order the plans the way the clock does."""
    fixture = cosmo if workload == "cosmoflow" else cam
    kwargs = {"holdout": HOLDOUT} if workload == "deepcam" else {}
    plugin, blobs, graph = _declared(fixture, **kwargs)
    plans = {
        "naive": compile_graph(graph, optimize=False),
        "optimized": compile_graph(graph),
    }
    machine = resolve_machine("summit")
    space = workload_space(workload)
    cfg = space.config(rep, staged=True, num_workers=4,
                       prefetch_depth=4, cache_fraction=0.3)
    preds = {
        name: predict_throughput(
            machine, space.workload, space.costs[rep], cfg, 2048, plan=plan
        ).steady_samples_per_s
        for name, plan in plans.items()
    }
    speedup, _, _, _ = _measured_speedup(plugin, blobs, graph)
    print(
        f"\n{workload}: predicted naive {preds['naive']:.0f} vs optimized "
        f"{preds['optimized']:.0f} samples/s; measured {speedup:.2f}x"
    )
    assert preds["optimized"] > preds["naive"], (
        "cost model ranks the naive plan above the optimized plan"
    )
    assert speedup > 1.0, (
        "measurement disagrees with the predicted ranking"
    )
