"""Figure 6: DeepCAM convergence, base FP32 vs decoded FP16 samples.

Paper: "our decoded samples show identical convergence behavior to the
base case."
"""

from repro.experiments import fig6


def test_fig6_deepcam_convergence(once):
    res = once(
        fig6.run,
        n_samples=12, epochs=4, height=32, width=48, n_channels=8,
        base_filters=4, verbose=False,
    )
    print()
    print(res.render())
    assert res.findings["max |diff| / loss span"] < 0.05
    assert res.findings["max val |diff| / train span"] < 0.05
    assert res.findings["loss drop base"] > 0
    assert res.findings["loss drop decoded"] > 0
