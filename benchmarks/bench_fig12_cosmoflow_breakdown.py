"""Figure 12: CosmoFlow execution-time breakdown (Summit & Cori-V100).

Paper: "the base version underutilizes the GPU, while our plugin reduces
host CPU preprocessing overhead"; decode <1% of the sample's GPU time.
"""

from repro.experiments import fig12


def test_fig12_cosmoflow_breakdown(once):
    res = once(fig12.run, sim_samples_cap=48, verbose=False)
    print()
    print(res.render())
    f = res.findings
    for system in ("Summit", "Cori-V100"):
        assert f[f"{system}/base cpu/gpu ratio"] > 5
        assert f[f"{system}/gzip cpu/gpu ratio"] > f[f"{system}/base cpu/gpu ratio"]
        assert f[f"{system}/plugin cpu/gpu ratio"] == 0
        assert f[f"{system} decode share of gpu time"] < 0.01
