"""Table II: software environment for CosmoFlow and DeepCAM."""

from repro.experiments import tables


def test_table2_software(once):
    res = once(tables.table2)
    print()
    print(res.render())
    rows = {r[0]: r[1:] for r in res.rows}
    assert set(rows["DALI"]) == {"1.9.0"}
