"""Observability overhead gate: sampled tracing must stay under 5%.

The observability plane (``repro.observe``) promises that per-sample
span trees are cheap enough to leave on in production at a sampled
rate.  Two claims are held here:

* **Throughput.**  An epoch through the graph-compiled loader with a
  :class:`~repro.observe.TraceRecorder` attached at 1/16 head sampling
  must deliver **≥ 95%** of the untraced samples/s (best-of-N on both
  sides, so scheduler noise hits each equally).  The disabled hot path
  is one thread-local read per ``span()`` call; the sampled path is one
  slotted object and two clock calls per span.
* **Bit identity.**  Tracing observes, never steers: the traced epoch
  must reproduce the untraced epoch bit for bit — locally *and* through
  a ``DataServer`` round trip with trace-context headers on the wire
  (the header rides after the request body; the reply bytes are
  untouched).

Run with ``pytest benchmarks/bench_trace_overhead.py -s`` to print the
measured numbers; the trajectory lands in ``BENCH_trace_overhead.json``.
"""

from time import perf_counter

import pytest

from bench_util import record_bench
from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.observe import TraceRecorder
from repro.pipeline import DataLoader, ListSource
from repro.serve import DataServer, RemoteSource
from repro.storage.cache import SampleCache

N_SAMPLES = 64
#: production-style head sampling: 1 in 16 traces committed
SAMPLE_RATE = 1.0 / 16.0
REPEATS = 5


@pytest.fixture(scope="module")
def fixture():
    cfg = deepcam.DeepcamConfig(height=32, width=48, n_channels=8)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(N_SAMPLES, cfg, seed=0)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


def _epoch(source, plugin, trace, batched_fetch=False):
    loader = DataLoader(
        source, plugin, batch_size=4, seed=1, trace=trace,
        batched_fetch=batched_fetch, graph=True,
    )
    rows = []
    for batch, labels in loader.batches(0):
        rows.extend(
            (b.tobytes(), l.tobytes()) for b, l in zip(batch, labels)
        )
    return rows


def _best_rate(make_trace, plugin, blobs):
    """Best-of-N samples/s over a local epoch, plus the last epoch's rows."""
    best, rows = 0.0, None
    for _ in range(REPEATS):
        t0 = perf_counter()
        rows = _epoch(ListSource(blobs), plugin, make_trace())
        best = max(best, N_SAMPLES / (perf_counter() - t0))
    return best, rows


def test_sampled_tracing_overhead_under_5_percent(fixture):
    plugin, blobs = fixture
    untraced, rows_plain = _best_rate(lambda: None, plugin, blobs)
    traced, rows_traced = _best_rate(
        lambda: TraceRecorder(sample_rate=SAMPLE_RATE, seed=0, proc="bench"),
        plugin, blobs,
    )
    overhead = 1.0 - traced / untraced
    print(
        f"\nlocal epoch: untraced {untraced:.0f} samples/s, traced at "
        f"1/16 {traced:.0f} samples/s — {overhead:+.1%} overhead"
    )
    record_bench(
        "trace_overhead",
        {
            "untraced_samples_per_s": round(untraced, 1),
            "traced_samples_per_s": round(traced, 1),
            "overhead_frac": round(overhead, 4),
            "sample_rate": SAMPLE_RATE,
        },
    )
    # tracing observes, never steers: bit-identical epochs
    assert rows_traced == rows_plain
    assert traced >= 0.95 * untraced, (
        f"sampled tracing cost {overhead:.1%} of throughput "
        f"(budget: 5%); the hot path has regressed"
    )


def test_traced_remote_epoch_is_bit_identical(fixture):
    """A traced epoch through the data service — trace-context headers
    on every READ_BATCH frame, server spans recorded — reproduces the
    untraced remote epoch bit for bit, and the two recorders really did
    capture a stitchable client+server view."""
    plugin, blobs = fixture
    server_rec = TraceRecorder(seed=2, proc="server")
    with DataServer(
        ListSource(blobs), cache=SampleCache(1e9), trace=server_rec
    ) as server:
        host, port = server.address
        with RemoteSource(host, port) as src:
            rows_plain = _epoch(src, plugin, None, batched_fetch=True)
        client_rec = TraceRecorder(seed=1, proc="client")
        with RemoteSource(host, port) as src:
            rows_traced = _epoch(src, plugin, client_rec,
                                 batched_fetch=True)
    assert rows_traced == rows_plain
    client_spans = client_rec.spans()
    server_spans = server_rec.spans()
    rpc_ids = {s.trace_id for s in client_spans if s.name == "wire.rpc"}
    handled = {s.trace_id for s in server_spans
               if s.name == "server.handle"}
    assert rpc_ids, "client recorded no wire.rpc spans"
    assert rpc_ids & handled, (
        "no server.handle span shares a trace_id with a client wire.rpc "
        "span — trace-context propagation is broken"
    )
