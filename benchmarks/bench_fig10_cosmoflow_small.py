"""Figure 10: CosmoFlow throughput, small set (128 samples/GPU).

Paper: plugin up to 8x (Summit) / 3-4x (Cori); gzip up to ~1.5x slower.
"""

from repro.experiments import fig10
from repro.experiments.harness import render_bars


def test_fig10_cosmoflow_small(once):
    res = once(fig10.run, sim_samples_cap=48, verbose=False)
    print()
    print(res.render())
    # visual: per-system throughput at batch 4, staged
    rows = [r for r in res.rows if r[1] == "staged" and r[2] == 4]
    labels, values = [], []
    for r in rows:
        for variant, col in (("base", 3), ("gzip", 4), ("plugin", 5)):
            labels.append(f"{r[0]}/{variant}")
            values.append(r[col])
    print()
    print(render_bars(labels, values, unit=" samples/s"))
    f = res.findings
    assert 4.5 < f["max plugin speedup Summit"] < 9.0
    assert 3.0 < f["max plugin speedup Cori-V100"] < 6.5
    assert 3.0 < f["max plugin speedup Cori-A100"] < 6.5
    assert 1.1 < f["max gzip slowdown"] < 1.8
