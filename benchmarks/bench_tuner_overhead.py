"""Instrumentation overhead on the hot path.

The tuner's stage-timing counters (:mod:`repro.tune.stats`) run on every
item the executor delivers — their cost must be noise against decode.
Per item the instrumented executor pays two ``perf_counter`` calls and
one :meth:`Stat.add`; this microbench measures that directly, and then
times a whole epoch through an instrumented vs uninstrumented
:class:`PrefetchExecutor`, asserting both stay **under 5% of decode
time** (same methodology as ``bench_fault_overhead.py``).

Run with ``pytest benchmarks/bench_tuner_overhead.py -s`` to print the
measured ratios.
"""

import time

import pytest

from repro.core.plugins import CosmoflowLutPlugin, DeepcamDeltaPlugin
from repro.datasets import cosmoflow, deepcam
from repro.pipeline import ListSource
from repro.pipeline.executor import PrefetchExecutor
from repro.pipeline.graph import Pipeline
from repro.pipeline.ops import DecodeOp, ReadOp
from repro.tune.stats import StatsRegistry


@pytest.fixture(scope="module")
def deepcam_blob():
    cfg = deepcam.DeepcamConfig(height=96, width=144, n_channels=8)
    s = deepcam.generate_sample(cfg, seed=0)
    plugin = DeepcamDeltaPlugin("cpu")
    return plugin, plugin.encode(s.data, s.label)


@pytest.fixture(scope="module")
def cosmo_blob():
    cfg = cosmoflow.CosmoflowConfig(grid=64)
    s = cosmoflow.generate_sample(cfg, seed=0)
    plugin = CosmoflowLutPlugin("cpu")
    return plugin, plugin.encode(s.data, s.label)


def _best_of(fn, repeats=7, inner=20):
    """Best-of-N timing to suppress scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def test_stat_update_under_5pct_of_decode(deepcam_blob, cosmo_blob):
    """The per-item record (2x perf_counter + Stat.add) vs one decode."""
    registry = StatsRegistry()
    stat = registry.stat("executor.items")

    def record_one():
        t0 = time.perf_counter()
        stat.add(time.perf_counter() - t0)

    record_s = _best_of(record_one, inner=1000)
    for name, (plugin, blob) in {
        "deepcam/delta": deepcam_blob,
        "cosmoflow/lut": cosmo_blob,
    }.items():
        decode_s = _best_of(lambda: plugin.decode_cpu(blob))
        ratio = record_s / decode_s
        print(
            f"\n{name}: decode {decode_s * 1e6:.0f} µs, "
            f"stat record {record_s * 1e9:.0f} ns — {ratio:.3%} of decode"
        )
        assert ratio < 0.05, (
            f"{name}: per-item instrumentation costs {ratio:.1%} of decode"
        )


@pytest.mark.parametrize("num_workers", [0, 2])
def test_instrumented_epoch_under_5pct_of_decode(deepcam_blob, num_workers):
    """Whole-epoch comparison: executor with vs without a registry."""
    plugin, blob = deepcam_blob
    n = 16
    indices = list(range(n))

    def epoch(stats):
        pipeline = Pipeline([ReadOp(ListSource([blob] * n)), DecodeOp(plugin)])
        ex = PrefetchExecutor(pipeline, num_workers=num_workers, stats=stats)
        for _ in ex.run(indices):
            pass

    def timed(stats):
        t0 = time.perf_counter()
        epoch(stats)
        return time.perf_counter() - t0

    timed(None)
    timed(StatsRegistry())  # warm both paths before timing
    decode_total = _best_of(lambda: plugin.decode_cpu(blob), inner=5) * n
    # paired, interleaved rounds: machine-load drift hits both variants of
    # a pair equally, and min-over-pairs picks the quietest round
    pairs = [(timed(None), timed(StatsRegistry())) for _ in range(9)]
    plain_s, instrumented_s = min(pairs, key=lambda p: p[1] - p[0])
    overhead = max(instrumented_s - plain_s, 0.0)
    ratio = overhead / decode_total
    print(
        f"\nworkers={num_workers}: epoch {plain_s * 1e3:.2f} ms plain, "
        f"{instrumented_s * 1e3:.2f} ms instrumented — "
        f"overhead {ratio:.2%} of decode time"
    )
    from bench_util import record_bench

    record_bench(
        f"tuner_overhead_workers{num_workers}",
        {
            "plain_epoch_ms": round(plain_s * 1e3, 3),
            "instrumented_epoch_ms": round(instrumented_s * 1e3, 3),
            "overhead_vs_decode_frac": round(ratio, 4),
        },
    )
    assert ratio < 0.05


def test_counters_survive_the_epoch(deepcam_blob):
    """Sanity: the instrumented run actually recorded every item."""
    plugin, blob = deepcam_blob
    n = 12
    stats = StatsRegistry()
    pipeline = Pipeline([ReadOp(ListSource([blob] * n)), DecodeOp(plugin)])
    ex = PrefetchExecutor(pipeline, num_workers=2, stats=stats)
    for _ in ex.run(list(range(n))):
        pass
    snap = stats.snapshot()
    assert snap["executor.items"][0] == n
    assert snap["executor.items"][1] > 0.0
