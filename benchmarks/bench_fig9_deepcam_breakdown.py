"""Figure 9: DeepCAM per-activity time breakdown (Cori V100 & A100).

Paper: the optimized loader "not only improves data transfer time but also
speeds up CPU preprocessing while reducing the fluctuations captured
during the model synchronization allreduce."
"""

from repro.experiments import fig9


def test_fig9_deepcam_breakdown(once):
    res = once(fig9.run, sim_samples_cap=48, verbose=False)
    print()
    print(res.render())
    f = res.findings
    for system in ("Cori-V100", "Cori-A100"):
        assert f[f"{system}/gpu cpu ms/sample"] == 0
        assert f[f"{system}/base cpu ms/sample"] > 0
        assert f[f"{system}/gpu sync ms/sample"] < f[
            f"{system}/base sync ms/sample"
        ]
