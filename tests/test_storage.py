"""Tests for the storage substrate: tiers, containers, staging, cache."""

import gzip

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    SampleCache,
    Tier,
    TierSpec,
    hdf5lite,
    read_time,
    stage_dataset,
    tfrecord,
    write_time,
)


class TestTierSpec:
    def test_read_time_model(self):
        spec = TierSpec("t", read_bw_gbps=2.0, write_bw_gbps=1.0,
                        latency_s=1e-3)
        assert read_time(spec, 0) == pytest.approx(1e-3)
        assert read_time(spec, 2_000_000_000) == pytest.approx(1.001)
        assert write_time(spec, 1_000_000_000) == pytest.approx(1.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            TierSpec("t", read_bw_gbps=0, write_bw_gbps=1, latency_s=0)
        with pytest.raises(ValueError):
            TierSpec("t", read_bw_gbps=1, write_bw_gbps=1, latency_s=-1)
        spec = TierSpec("t", read_bw_gbps=1, write_bw_gbps=1, latency_s=0)
        with pytest.raises(ValueError):
            read_time(spec, -1)


class TestTier:
    def test_write_read_roundtrip(self, tmp_path):
        tier = Tier(TierSpec("t", 1, 1, 0), tmp_path / "t")
        tier.write("a/b.bin", b"hello")
        assert tier.read("a/b.bin") == b"hello"
        assert tier.used_bytes == 5

    def test_capacity_enforced(self, tmp_path):
        tier = Tier(
            TierSpec("t", 1, 1, 0, capacity_bytes=10), tmp_path / "t"
        )
        tier.write("a", b"12345")
        with pytest.raises(OSError):
            tier.write("b", b"123456789")

    def test_path_escape_blocked(self, tmp_path):
        tier = Tier(TierSpec("t", 1, 1, 0), tmp_path / "t")
        with pytest.raises(ValueError):
            tier.path("../outside")


class TestTierIncrementalAccounting:
    """used_bytes is a counter maintained on write/delete, not a walk."""

    def test_overwrite_charges_only_the_delta(self, tmp_path):
        tier = Tier(TierSpec("t", 1, 1, 0, capacity_bytes=10), tmp_path / "t")
        tier.write("a", b"12345678")
        tier.write("a", b"123")  # shrink in place
        assert tier.used_bytes == 3
        tier.write("a", b"1234567890")  # grow back to exactly capacity
        assert tier.used_bytes == 10
        with pytest.raises(OSError):
            tier.write("b", b"x")

    def test_delete_reclaims_capacity(self, tmp_path):
        tier = Tier(TierSpec("t", 1, 1, 0, capacity_bytes=10), tmp_path / "t")
        tier.write("a", b"1234567890")
        assert not tier.has_room(1)
        assert tier.delete("a")
        assert tier.used_bytes == 0 and tier.has_room(10)
        assert not tier.delete("a")  # already gone, nothing double-counted
        assert tier.used_bytes == 0

    def test_construction_picks_up_existing_files(self, tmp_path):
        Tier(TierSpec("t", 1, 1, 0), tmp_path / "t").write("old", b"12345")
        again = Tier(TierSpec("t", 1, 1, 0), tmp_path / "t")
        assert again.used_bytes == 5

    def test_rescan_sees_out_of_band_writes(self, tmp_path):
        tier = Tier(TierSpec("t", 1, 1, 0), tmp_path / "t")
        tier.write("a", b"123")
        (tier.root / "sneaky").write_bytes(b"45")  # behind the tier's back
        assert tier.used_bytes == 3
        assert tier.rescan() == 5
        assert tier.used_bytes == 5

    def test_accounting_never_walks_the_directory(self, tmp_path, monkeypatch):
        tier = Tier(TierSpec("t", 1, 1, 0, capacity_bytes=100), tmp_path / "t")

        def boom(self):  # a walk after construction is a perf regression
            raise AssertionError("used_bytes walked the directory tree")

        monkeypatch.setattr(Tier, "_scan", boom)
        tier.write("a", b"12345")
        tier.write("a", b"123456")
        assert tier.used_bytes == 6
        assert tier.has_room(94) and not tier.has_room(95)
        assert tier.delete("a")
        assert tier.used_bytes == 0


class TestHdf5Lite:
    def test_roundtrip_all(self, tmp_path):
        path = tmp_path / "s.h5lt"
        data = {
            "climate/data": np.random.default_rng(0)
            .normal(size=(4, 8, 8)).astype(np.float32),
            "climate/labels": np.arange(64, dtype=np.int8).reshape(8, 8),
        }
        n = hdf5lite.write_file(path, data)
        assert n == path.stat().st_size
        out = hdf5lite.read_all(path)
        for k in data:
            assert np.array_equal(out[k], data[k])
            assert out[k].dtype == data[k].dtype

    def test_partial_read(self, tmp_path):
        path = tmp_path / "s.h5lt"
        hdf5lite.write_file(
            path,
            {"big": np.zeros(1000, np.float64), "small": np.ones(3, np.int32)},
        )
        small = hdf5lite.read_dataset(path, "small")
        assert np.array_equal(small, np.ones(3, np.int32))

    def test_list_datasets(self, tmp_path):
        path = tmp_path / "s.h5lt"
        hdf5lite.write_file(path, {"a": np.zeros(1), "b": np.zeros(2)})
        assert hdf5lite.list_datasets(path) == ["a", "b"]

    def test_missing_dataset(self, tmp_path):
        path = tmp_path / "s.h5lt"
        hdf5lite.write_file(path, {"a": np.zeros(1)})
        with pytest.raises(KeyError):
            hdf5lite.read_dataset(path, "nope")

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            hdf5lite.write_file(tmp_path / "x", {})

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError):
            hdf5lite.read_all(path)


class TestTfRecord:
    def test_roundtrip_plain(self, tmp_path):
        path = tmp_path / "r.tfr"
        records = [b"one", b"two" * 100, b""]
        with tfrecord.TfRecordWriter(path) as w:
            for r in records:
                w.write(r)
        assert tfrecord.read_records(path) == records

    def test_roundtrip_gzip(self, tmp_path):
        path = tmp_path / "r.tfr.gz"
        records = [bytes([i]) * 50 for i in range(10)]
        with tfrecord.TfRecordWriter(path, compression="gzip") as w:
            for r in records:
                w.write(r)
        assert tfrecord.read_records(path, compression="gzip") == records

    def test_gzip_actually_compresses(self, tmp_path):
        payload = b"\x00" * 100_000
        p1, p2 = tmp_path / "a", tmp_path / "b"
        with tfrecord.TfRecordWriter(p1) as w:
            w.write(payload)
        with tfrecord.TfRecordWriter(p2, compression="gzip") as w:
            w.write(payload)
        assert p2.stat().st_size < p1.stat().st_size / 10

    def test_random_access_via_index(self, tmp_path):
        path = tmp_path / "r.tfr"
        records = [f"rec{i}".encode() * (i + 1) for i in range(5)]
        with tfrecord.TfRecordWriter(path) as w:
            for r in records:
                w.write(r)
        index = tfrecord.build_index(path)
        assert len(index) == 5
        # shuffled access matches
        for i in (3, 0, 4, 2, 1):
            off, length = index[i]
            assert tfrecord.read_record_at(path, off, length) == records[i]

    def test_gzip_refuses_random_access(self, tmp_path):
        path = tmp_path / "r.tfr.gz"
        with tfrecord.TfRecordWriter(path, compression="gzip") as w:
            w.write(b"data")
        with pytest.raises(ValueError, match="random-access"):
            tfrecord.build_index(path)

    def test_crc_detects_corruption(self, tmp_path):
        path = tmp_path / "r.tfr"
        with tfrecord.TfRecordWriter(path) as w:
            w.write(b"sensitive payload bytes")
        raw = bytearray(path.read_bytes())
        raw[20] ^= 0xFF  # flip a payload byte
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="CRC"):
            tfrecord.read_records(path)

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "r.tfr"
        with tfrecord.TfRecordWriter(path) as w:
            w.write(b"0123456789")
        path.write_bytes(path.read_bytes()[:-6])
        with pytest.raises(ValueError):
            tfrecord.read_records(path)

    def test_bad_compression_arg(self, tmp_path):
        with pytest.raises(ValueError):
            tfrecord.TfRecordWriter(tmp_path / "x", compression="lz4")

    @given(st.lists(st.binary(max_size=200), max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, records):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "r.tfr"
            with tfrecord.TfRecordWriter(path) as w:
                for r in records:
                    w.write(r)
            assert tfrecord.read_records(path) == records


class TestStaging:
    def test_stage_copies_and_reports(self, tmp_path):
        pfs = Tier(TierSpec("pfs", 1.0, 1.0, 0.01), tmp_path / "pfs")
        nvme = Tier(TierSpec("nvme", 5.0, 2.0, 0.0001), tmp_path / "nvme")
        names = [f"f{i}" for i in range(3)]
        for n in names:
            pfs.write(n, n.encode() * 100)
        report = stage_dataset(pfs, nvme, names)
        assert report.n_files == 3
        assert report.total_bytes == sum(200 for _ in names)
        for n in names:
            assert nvme.read(n) == pfs.read(n)
        assert report.modeled_seconds > 0

    def test_stage_respects_capacity(self, tmp_path):
        pfs = Tier(TierSpec("pfs", 1.0, 1.0, 0.0), tmp_path / "pfs")
        nvme = Tier(
            TierSpec("nvme", 5.0, 2.0, 0.0, capacity_bytes=100),
            tmp_path / "nvme",
        )
        pfs.write("big", b"x" * 200)
        with pytest.raises(OSError):
            stage_dataset(pfs, nvme, ["big"])


class TestSampleCache:
    def test_hit_miss_accounting(self):
        cache = SampleCache(100)
        assert cache.get("a") is None
        cache.put("a", b"12345")
        assert cache.get("a") == b"12345"
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = SampleCache(10)
        cache.put("a", b"1234")
        cache.put("b", b"1234")
        cache.get("a")  # refresh a
        cache.put("c", b"1234")  # evicts b (LRU)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1
        assert cache.stats.evicted_bytes == 4

    def test_evicted_bytes_accumulates(self):
        cache = SampleCache(10)
        cache.put("a", b"12345")
        cache.put("b", b"12345")
        cache.put("c", b"1234567890")  # displaces both
        assert cache.stats.evictions == 2
        assert cache.stats.evicted_bytes == 10
        cache.invalidate("c")  # invalidation is not an eviction
        assert cache.stats.evicted_bytes == 10

    def test_oversized_blob_not_cached(self):
        cache = SampleCache(10)
        assert not cache.put("big", b"x" * 11)
        assert len(cache) == 0

    def test_replace_updates_bytes(self):
        cache = SampleCache(100)
        cache.put("a", b"xxxx")
        cache.put("a", b"yy")
        assert cache.used_bytes == 2

    def test_smaller_samples_cache_more(self):
        # the compression-enables-caching effect, directly
        big, small = SampleCache(100), SampleCache(100)
        for i in range(20):
            big.put(i, b"x" * 20)  # 5 fit
            small.put(i, b"x" * 10)  # 10 fit
        assert len(small) > len(big)

    def test_clear(self):
        cache = SampleCache(100)
        cache.put("a", b"12")
        cache.clear()
        assert len(cache) == 0 and cache.used_bytes == 0

    def test_zero_capacity(self):
        cache = SampleCache(0)
        assert not cache.put("a", b"x")
        with pytest.raises(ValueError):
            SampleCache(-1)

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.binary(min_size=1, max_size=30)),
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_capacity_invariant_property(self, ops):
        cache = SampleCache(64)
        for key, blob in ops:
            cache.put(key, blob)
            assert cache.used_bytes <= 64
            assert cache.used_bytes == sum(
                len(cache._entries[k]) for k in cache._entries
            )


class TestSharding:
    def _write(self, tmp_path, n_samples=10, n_shards=4):
        from repro.storage.sharding import ShardedWriter

        prefix = tmp_path / "data"
        payloads = [f"sample-{i}".encode() * (i + 1) for i in range(n_samples)]
        with ShardedWriter(prefix, n_shards) as w:
            for p in payloads:
                w.write(p)
        return prefix, payloads

    def test_round_robin_layout(self, tmp_path):
        from repro.storage.sharding import ShardedWriter, shard_name
        from repro.storage import tfrecord

        prefix, payloads = self._write(tmp_path)
        shard0 = tfrecord.read_records(shard_name(prefix, 0, 4))
        assert shard0 == [payloads[0], payloads[4], payloads[8]]

    def test_sharded_source_covers_everything(self, tmp_path):
        from repro.storage.sharding import ShardedSource

        prefix, payloads = self._write(tmp_path)
        src = ShardedSource(prefix, 4)
        assert len(src) == len(payloads)
        got = sorted(src.read(i) for i in range(len(src)))
        assert got == sorted(payloads)

    def test_worker_slices_are_disjoint_and_complete(self, tmp_path):
        from repro.storage.sharding import ShardedSource

        prefix, payloads = self._write(tmp_path, n_samples=12, n_shards=6)
        seen = []
        for worker in range(3):
            src = ShardedSource(prefix, 6, worker=worker, num_workers=3)
            seen.extend(src.read(i) for i in range(len(src)))
        assert sorted(seen) == sorted(payloads)

    def test_source_feeds_data_loader(self, tmp_path):
        import numpy as np

        from repro.core.plugins import CosmoflowLutPlugin
        from repro.datasets import cosmoflow
        from repro.pipeline import DataLoader
        from repro.storage.sharding import ShardedSource, ShardedWriter

        cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=2000)
        ds = cosmoflow.generate_dataset(6, cfg, seed=1)
        plugin = CosmoflowLutPlugin("cpu")
        prefix = tmp_path / "cosmo"
        with ShardedWriter(prefix, 3) as w:
            for s in ds:
                w.write(plugin.encode(s.data, s.label))
        loader = DataLoader(ShardedSource(prefix, 3), plugin, batch_size=3,
                            seed=0)
        batches = list(loader.batches(0))
        assert sum(b.shape[0] for b, _ in batches) == 6
        assert batches[0][0].dtype == np.float16

    def test_validation(self, tmp_path):
        from repro.storage.sharding import ShardedSource, ShardedWriter, shard_name

        with pytest.raises(ValueError):
            ShardedWriter(tmp_path / "x", 0)
        with pytest.raises(ValueError):
            shard_name("p", 4, 4)
        self._write(tmp_path, n_shards=2)
        with pytest.raises(ValueError):
            ShardedSource(tmp_path / "data", 2, worker=2, num_workers=2)

class TestSampleCacheHardening:
    def test_oversized_put_keeps_stats_clean(self):
        cache = SampleCache(10)
        cache.put("a", b"1234")
        cache.get("a")
        hits, misses, evictions = (
            cache.stats.hits, cache.stats.misses, cache.stats.evictions,
        )
        assert not cache.put("big", b"x" * 11)
        assert cache.stats.rejected_oversize == 1
        assert cache.stats.rejected == 1  # backwards-compatible alias
        # rejection is neither a hit, a miss, nor an eviction
        assert (cache.stats.hits, cache.stats.misses,
                cache.stats.evictions) == (hits, misses, evictions)
        assert cache.used_bytes == 4 and len(cache) == 1

    def test_every_get_is_counted(self):
        cache = SampleCache(100)
        cache.put("a", b"1234")
        for key in ("a", "a", "b", "c", "a"):
            cache.get(key)
        assert cache.stats.gets == 5
        assert cache.stats.hits + cache.stats.misses == cache.stats.gets
        assert (cache.stats.hits, cache.stats.misses) == (3, 2)

    def test_oversized_put_invalidates_stale_entry(self):
        cache = SampleCache(10)
        cache.put("a", b"old-value")
        # the caller holds a newer value too big to store: the stale copy
        # must not keep serving
        assert not cache.put("a", b"x" * 11)
        assert "a" not in cache
        assert cache.used_bytes == 0

    def test_invalidate(self):
        cache = SampleCache(100)
        cache.put("a", b"1234")
        assert cache.invalidate("a")
        assert not cache.invalidate("a")  # already gone
        assert "a" not in cache and cache.used_bytes == 0

    def test_eviction_still_consistent_after_rejections(self):
        cache = SampleCache(10)
        for i in range(5):
            cache.put(i, b"xxxxx")  # two fit
            cache.put("big", b"y" * 11)  # always rejected
        assert cache.used_bytes <= 10
        assert cache.used_bytes == sum(
            len(cache._entries[k]) for k in cache._entries
        )


class TestStagingVerification:
    def _tiers(self, tmp_path):
        pfs = Tier(TierSpec("pfs", 1.0, 1.0, 0.0), tmp_path / "pfs")
        nvme = Tier(TierSpec("nvme", 5.0, 2.0, 0.0), tmp_path / "nvme")
        return pfs, nvme

    def _blob(self, seed=0):
        import numpy as np

        from repro.core.encoding import container

        rng = np.random.default_rng(seed)
        return container.pack_raw_sample(
            rng.normal(size=(4, 4)).astype(np.float32),
            np.arange(3, dtype=np.int64),
        )

    def test_verify_clean_copy(self, tmp_path):
        pfs, nvme = self._tiers(tmp_path)
        names = [f"s{i}" for i in range(3)]
        for i, n in enumerate(names):
            pfs.write(n, self._blob(i))
        report = stage_dataset(pfs, nvme, names, verify=True)
        assert report.n_verified == 3
        assert report.n_restaged == 0

    def test_restages_only_failed_files(self, tmp_path):
        from repro.storage.filesystem import Tier as _Tier

        pfs, nvme = self._tiers(tmp_path)
        names = [f"s{i}" for i in range(4)]
        for i, n in enumerate(names):
            pfs.write(n, self._blob(i))

        class FlakyFirstWrite:
            """Corrupts the FIRST write of selected names, clean after."""

            def __init__(self, inner: _Tier, bad_names):
                self.inner = inner
                self.bad = set(bad_names)
                self.writes = {}

            def __getattr__(self, attr):
                return getattr(self.inner, attr)

            def read(self, name):
                return self.inner.read(name)

            def write(self, name, data):
                first = name not in self.writes
                self.writes[name] = self.writes.get(name, 0) + 1
                if first and name in self.bad:
                    buf = bytearray(data)
                    buf[-1] ^= 0xFF  # damage the (checksummed) label tail
                    data = bytes(buf)
                return self.inner.write(name, data)

        flaky = FlakyFirstWrite(nvme, {"s1", "s3"})
        report = stage_dataset(pfs, flaky, names, verify=True)
        assert report.n_restaged == 2  # exactly the two damaged landings
        assert flaky.writes == {"s0": 1, "s1": 2, "s2": 1, "s3": 2}
        for i, n in enumerate(names):
            assert nvme.read(n) == self._blob(i)

    def test_permanent_failure_raises_after_attempts(self, tmp_path):
        from repro.core.encoding.container import CorruptSampleError
        from repro.robust import FaultPlan, FaultyTier

        pfs, nvme = self._tiers(tmp_path)
        pfs.write("s0", self._blob())
        always_bad = FaultyTier(
            nvme, FaultPlan(corrupt_ids=frozenset({"s0"})), on="write"
        )
        with pytest.raises(CorruptSampleError):
            stage_dataset(pfs, always_bad, ["s0"], verify=True,
                          max_attempts=3)

    def test_verify_charges_extra_modeled_time(self, tmp_path):
        pfs = Tier(TierSpec("pfs", 1.0, 1.0, 0.01), tmp_path / "pfs")
        nvme = Tier(TierSpec("nvme", 5.0, 2.0, 0.0001), tmp_path / "nvme")
        pfs.write("s0", self._blob())
        plain = stage_dataset(pfs, nvme, ["s0"])
        checked = stage_dataset(pfs, nvme, ["s0"], verify=True)
        assert checked.modeled_seconds > plain.modeled_seconds


class TestSampleCacheConcurrency:
    """The cache is shared by every server connection handler: hammer it
    from many threads and check the accounting invariants survive."""

    def test_concurrent_get_put_evict_stress(self):
        import threading

        capacity = 2_000
        cache = SampleCache(capacity)
        blobs = {k: bytes([k]) * (20 + 13 * k % 90) for k in range(40)}
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(400):
                    k = int(rng.integers(0, 40))
                    op = rng.random()
                    if op < 0.45:
                        got = cache.get(k)
                        assert got is None or got == blobs[k]
                    elif op < 0.85:
                        cache.put(k, blobs[k])
                    elif op < 0.95:
                        cache.invalidate(k)
                    else:
                        k in cache  # noqa: B015 - exercising __contains__
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # invariants after the dust settles
        assert 0 <= cache.used_bytes <= capacity
        assert cache.used_bytes == sum(
            len(blobs[k]) for k in range(40) if k in cache
        )
        stats = cache.stats
        assert stats.gets > 0
        # no lookup lost or double-counted under contention
        assert stats.hits + stats.misses == stats.gets
        assert stats.evicted_bytes >= 0

    def test_concurrent_clear_is_safe(self):
        import threading

        cache = SampleCache(10_000)
        stop = threading.Event()
        errors = []

        def putter():
            i = 0
            try:
                while not stop.is_set():
                    cache.put(i % 50, b"x" * 50)
                    cache.get((i + 7) % 50)
                    i += 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=putter) for _ in range(4)]
        for t in threads:
            t.start()
        for _ in range(50):
            cache.clear()
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.used_bytes <= 10_000
