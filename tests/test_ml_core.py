"""Tests for losses, optimizers, AMP, models, trainer, and distributed."""

import numpy as np
import pytest

from repro.ml import (
    SGD,
    Adam,
    GradScaler,
    Trainer,
    WarmupSchedule,
    autocast,
    build_cosmoflow,
    build_deepcam,
)
from repro.ml.amp import compute_dtype, matmul_mixed
from repro.ml.distributed import DataParallel, allreduce_bytes, ring_allreduce
from repro.ml.losses import mae_loss, mse_loss, softmax, softmax_cross_entropy

_RNG = np.random.default_rng(1)


class TestLosses:
    def test_mse_value_and_grad(self):
        pred = np.array([[1.0, 2.0]], dtype=np.float32)
        target = np.array([[0.0, 0.0]], dtype=np.float32)
        loss, grad = mse_loss(pred, target)
        assert loss == pytest.approx(2.5)
        assert np.allclose(grad, [[1.0, 2.0]])

    def test_mse_grad_fd(self):
        pred = _RNG.standard_normal((3, 4)).astype(np.float32)
        target = _RNG.standard_normal((3, 4)).astype(np.float32)
        _, grad = mse_loss(pred, target)
        eps = 1e-3
        pred2 = pred.copy()
        pred2[1, 2] += eps
        l1, _ = mse_loss(pred2, target)
        pred2[1, 2] -= 2 * eps
        l2, _ = mse_loss(pred2, target)
        assert (l1 - l2) / (2 * eps) == pytest.approx(grad[1, 2], rel=1e-2)

    def test_mae(self):
        loss, grad = mae_loss(
            np.array([[2.0, -1.0]], np.float32), np.zeros((1, 2), np.float32)
        )
        assert loss == pytest.approx(1.5)
        assert np.allclose(grad, [[0.5, -0.5]])

    def test_softmax_rows_sum_to_one(self):
        p = softmax(_RNG.standard_normal((5, 7)).astype(np.float32))
        assert np.allclose(p.sum(axis=1), 1.0, atol=1e-6)

    def test_softmax_stable_for_large_logits(self):
        p = softmax(np.array([[1000.0, 1001.0]], dtype=np.float32))
        assert np.isfinite(p).all()

    def test_cross_entropy_perfect_prediction(self):
        logits = np.zeros((1, 3, 2, 2), dtype=np.float32)
        logits[0, 1] = 50.0
        labels = np.ones((1, 2, 2), dtype=np.int64)
        loss, _ = softmax_cross_entropy(logits, labels)
        assert loss < 1e-6

    def test_cross_entropy_grad_fd(self):
        logits = _RNG.standard_normal((2, 3, 4, 4)).astype(np.float32)
        labels = _RNG.integers(0, 3, (2, 4, 4))
        weights = np.array([1.0, 4.0, 2.0], dtype=np.float32)
        _, grad = softmax_cross_entropy(logits, labels, weights)
        eps = 1e-3
        idx = (1, 2, 0, 3)
        logits2 = logits.copy()
        logits2[idx] += eps
        l1, _ = softmax_cross_entropy(logits2, labels, weights)
        logits2[idx] -= 2 * eps
        l2, _ = softmax_cross_entropy(logits2, labels, weights)
        assert (l1 - l2) / (2 * eps) == pytest.approx(grad[idx], rel=1e-2, abs=1e-5)

    def test_cross_entropy_label_validation(self):
        logits = np.zeros((1, 3, 2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            softmax_cross_entropy(logits, np.full((1, 2, 2), 3))
        with pytest.raises(ValueError):
            softmax_cross_entropy(
                logits, np.zeros((1, 2, 2)), class_weights=np.ones(2)
            )


class TestSchedule:
    def test_warmup_then_plateau(self):
        sch = WarmupSchedule(base_lr=1.0, warmup_steps=4)
        assert sch.lr_at(0) == pytest.approx(0.25)
        assert sch.lr_at(3) == pytest.approx(1.0)
        assert sch.lr_at(100) == pytest.approx(1.0)

    def test_decay_phases(self):
        sch = WarmupSchedule(base_lr=1.0, decay_steps={10: 0.5, 20: 0.1})
        assert sch.lr_at(5) == 1.0
        assert sch.lr_at(15) == 0.5
        assert sch.lr_at(25) == pytest.approx(0.1)

    def test_rank_scaling(self):
        sch = WarmupSchedule(base_lr=0.1, rank_scale=8.0)
        assert sch.lr_at(0) == pytest.approx(0.8)


class TestOptimizers:
    def _quadratic(self, opt_cls, **kwargs):
        # minimize ||p||^2 from p=ones
        params = {"p": np.ones(4, dtype=np.float32)}
        sch = WarmupSchedule(base_lr=0.1)
        opt = opt_cls(params, sch, **kwargs)
        for _ in range(60):
            opt.step({"p": 2 * params["p"]})
        return params["p"]

    def test_sgd_converges(self):
        assert np.abs(self._quadratic(SGD, momentum=0.5)).max() < 1e-2

    def test_adam_converges(self):
        # Adam oscillates near the optimum on quadratics; assert it gets
        # close rather than machine-tight
        assert np.abs(self._quadratic(Adam)).max() < 0.1

    def test_sgd_momentum_accelerates(self):
        def run(mom):
            params = {"p": np.ones(1, dtype=np.float32)}
            opt = SGD(params, WarmupSchedule(base_lr=0.01), momentum=mom)
            for _ in range(10):
                opt.step({"p": 2 * params["p"]})
            return abs(float(params["p"][0]))

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        params = {"p": np.ones(1, dtype=np.float32)}
        opt = SGD(params, WarmupSchedule(base_lr=0.1), momentum=0.0,
                  weight_decay=1.0)
        opt.step({"p": np.zeros(1, dtype=np.float32)})
        assert params["p"][0] < 1.0

    def test_master_weights_stay_fp32(self):
        params = {"p": np.ones(2, dtype=np.float32)}
        opt = Adam(params, WarmupSchedule(base_lr=0.1))
        opt.step({"p": np.ones(2, dtype=np.float16)})
        assert params["p"].dtype == np.float32


class TestAmp:
    def test_autocast_scope(self):
        assert compute_dtype() == np.float32
        with autocast(True):
            assert compute_dtype() == np.float16
            with autocast(False):
                assert compute_dtype() == np.float32
        assert compute_dtype() == np.float32

    def test_matmul_mixed_fp16_accumulates_fp32(self):
        # values that would overflow an FP16 accumulation but not FP32
        a = np.full((1, 4096), 8.0, dtype=np.float32)
        b = np.full((4096, 1), 8.0, dtype=np.float32)
        with autocast(True):
            out = matmul_mixed(a, b)
        assert out.dtype == np.float16
        assert np.isinf(out).all()  # result 262144 > fp16 max: inf on cast
        with autocast(False):
            exact = matmul_mixed(a, b)
        assert exact[0, 0] == pytest.approx(4096 * 64)

    def test_matmul_mixed_rounds_operands(self):
        a = np.array([[1.0 + 2**-13]], dtype=np.float32)  # rounds away
        b = np.array([[1.0]], dtype=np.float32)
        with autocast(True):
            out = matmul_mixed(a, b)
        assert float(out[0, 0]) == 1.0

    def test_gradscaler_backoff_on_nonfinite(self):
        sc = GradScaler(scale=16.0)
        ok = sc.step_ok({"g": np.array([np.inf], dtype=np.float32)})
        assert not ok and sc.scale == 8.0

    def test_gradscaler_growth(self):
        sc = GradScaler(scale=2.0, growth_interval=3)
        for _ in range(3):
            assert sc.step_ok({"g": np.ones(1, dtype=np.float32)})
        assert sc.scale == 4.0

    def test_gradscaler_unscale(self):
        sc = GradScaler(scale=4.0)
        out = sc.unscale({"g": np.array([8.0], dtype=np.float16)})
        assert out["g"].dtype == np.float32 and out["g"][0] == 2.0


class TestModels:
    def test_cosmoflow_output_shape(self):
        m = build_cosmoflow(grid=8, in_channels=2, n_conv_layers=2,
                            base_filters=2, dense_units=(8, 4))
        x = _RNG.standard_normal((3, 2, 8, 8, 8)).astype(np.float32)
        assert m.forward(x).shape == (3, 4)

    def test_cosmoflow_depth_clamped(self):
        m = build_cosmoflow(grid=8, n_conv_layers=5, base_filters=2)
        convs = [l for l in m.layers if l.name.startswith("conv")]
        assert len(convs) == 3  # log2(8)

    def test_cosmoflow_paper_topology(self):
        # grid 32 supports the paper's five conv layers + three dense
        m = build_cosmoflow(grid=32, n_conv_layers=5, base_filters=2)
        convs = [l for l in m.layers if l.name.startswith("conv")]
        denses = [l for l in m.layers if l.name.startswith(("dense", "head"))]
        assert len(convs) == 5 and len(denses) == 3

    def test_deepcam_output_shape(self):
        m = build_deepcam(in_channels=4, n_classes=3, base_filters=4)
        x = _RNG.standard_normal((2, 4, 8, 12)).astype(np.float32)
        assert m.forward(x).shape == (2, 3, 8, 12)

    def test_deepcam_whole_model_gradcheck(self):
        rng = np.random.default_rng(1234)  # fixed: FD probes must not move
        m = build_deepcam(in_channels=2, n_classes=2, base_filters=2, seed=3)
        x = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
        y = rng.integers(0, 2, (1, 8, 8))
        logits = m.forward(x)
        _, dl = softmax_cross_entropy(logits, y)
        m.backward(dl)
        grads = m.gradients()
        p = m.parameters()["mid.w"]
        g = grads["mid.w"]
        idx = (0, 0, 1, 1)
        eps = 1e-2
        orig = p[idx]
        p[idx] = orig + eps
        l1, _ = softmax_cross_entropy(m.forward(x, training=False), y)
        p[idx] = orig - eps
        l2, _ = softmax_cross_entropy(m.forward(x, training=False), y)
        p[idx] = orig
        fd = (l1 - l2) / (2 * eps)
        denom = max(abs(fd), abs(g[idx]), 1e-5)
        assert abs(fd - g[idx]) / denom < 0.05

    def test_parameters_and_load(self):
        m = build_cosmoflow(grid=8, n_conv_layers=1, base_filters=2)
        state = {k: v + 1 for k, v in m.parameters().items()}
        m.load_parameters(state)
        for k, v in m.parameters().items():
            assert np.array_equal(v, state[k])
        with pytest.raises(KeyError):
            m.load_parameters({})

    def test_n_parameters_positive(self):
        m = build_deepcam(in_channels=2, base_filters=2)
        assert m.n_parameters() > 100


class TestTrainer:
    def _setup(self, mixed):
        m = build_cosmoflow(grid=8, in_channels=2, n_conv_layers=2,
                            base_filters=2, dense_units=(8, 4), seed=5)
        opt = Adam(m.parameters(), WarmupSchedule(base_lr=5e-3))
        return Trainer(m, mse_loss, opt, mixed_precision=mixed)

    def test_loss_decreases_fp32(self):
        tr = self._setup(False)
        x = _RNG.standard_normal((4, 2, 8, 8, 8)).astype(np.float32)
        y = _RNG.standard_normal((4, 4)).astype(np.float32)
        for _ in range(15):
            tr.train_step(x, y)
        assert tr.history.step_losses[-1] < tr.history.step_losses[0]

    def test_loss_decreases_amp(self):
        tr = self._setup(True)
        x = _RNG.standard_normal((4, 2, 8, 8, 8)).astype(np.float16)
        y = _RNG.standard_normal((4, 4)).astype(np.float32)
        for _ in range(15):
            tr.train_step(x, y)
        assert tr.history.step_losses[-1] < tr.history.step_losses[0]
        assert tr.history.skipped_steps == 0

    def test_amp_and_fp32_converge_similarly(self):
        x = _RNG.standard_normal((4, 2, 8, 8, 8)).astype(np.float32)
        y = _RNG.standard_normal((4, 4)).astype(np.float32)
        finals = []
        for mixed in (False, True):
            tr = self._setup(mixed)
            for _ in range(20):
                tr.train_step(x, y)
            finals.append(tr.history.step_losses[-1])
        assert abs(finals[0] - finals[1]) < 0.25 * max(finals[0], 1e-3)

    def test_epoch_bookkeeping(self):
        tr = self._setup(False)
        x = _RNG.standard_normal((2, 2, 8, 8, 8)).astype(np.float32)
        y = _RNG.standard_normal((2, 4)).astype(np.float32)
        mean = tr.train_epoch([(x, y), (x, y)])
        assert len(tr.history.epoch_losses) == 1
        assert mean == pytest.approx(np.mean(tr.history.step_losses[:2]))

    def test_evaluate_no_update(self):
        tr = self._setup(False)
        x = _RNG.standard_normal((2, 2, 8, 8, 8)).astype(np.float32)
        y = _RNG.standard_normal((2, 4)).astype(np.float32)
        before = {k: v.copy() for k, v in tr.model.parameters().items()}
        tr.evaluate([(x, y)])
        for k, v in tr.model.parameters().items():
            assert np.array_equal(v, before[k])


class TestDistributed:
    def test_ring_allreduce_averages(self):
        chunks = [np.full(10, float(r)) for r in range(4)]
        out = ring_allreduce(chunks)
        for o in out:
            assert np.allclose(o, 1.5)

    def test_ring_allreduce_single_rank(self):
        out = ring_allreduce([np.arange(5.0)])
        assert np.array_equal(out[0], np.arange(5.0))

    def test_ring_allreduce_uneven_segments(self):
        # n not divisible by P exercises the segment boundary math
        chunks = [np.arange(7.0) + r for r in range(3)]
        out = ring_allreduce(chunks)
        want = np.arange(7.0) + 1.0
        for o in out:
            assert np.allclose(o, want)

    def test_ring_allreduce_shape_mismatch(self):
        with pytest.raises(ValueError):
            ring_allreduce([np.zeros(3), np.zeros(4)])

    def test_allreduce_bytes(self):
        assert allreduce_bytes(1000) == 8000

    def test_data_parallel_matches_single_process(self):
        def build(seed):
            return build_cosmoflow(grid=8, in_channels=2, n_conv_layers=1,
                                   base_filters=2, dense_units=(4,), seed=7)

        x = _RNG.standard_normal((4, 2, 8, 8, 8)).astype(np.float32)
        y = _RNG.standard_normal((4, 4)).astype(np.float32)

        single = build(0)
        pred = single.forward(x)
        _, dpred = mse_loss(pred, y)
        single.backward(dpred.astype(np.float32))
        ref = single.gradients()

        dp = DataParallel(build, n_ranks=2, seed=0)
        loss, avg = dp.forward_backward(x, y, mse_loss)
        for name in ref:
            assert np.allclose(avg[name], ref[name], rtol=1e-4, atol=1e-6), name

    def test_replicas_stay_identical(self):
        def build(seed):
            return build_cosmoflow(grid=8, in_channels=2, n_conv_layers=1,
                                   base_filters=2, dense_units=(4,), seed=9)

        dp = DataParallel(build, n_ranks=3, seed=0)
        x = _RNG.standard_normal((6, 2, 8, 8, 8)).astype(np.float32)
        y = _RNG.standard_normal((6, 4)).astype(np.float32)
        _, grads = dp.forward_backward(x, y, mse_loss)

        def step(params):
            for k in params:
                params[k] -= 0.01 * grads[k]

        dp.apply_update(step)
        p0 = dp.replicas[0].parameters()
        for rep in dp.replicas[1:]:
            for k, v in rep.parameters().items():
                assert np.array_equal(v, p0[k])

    def test_indivisible_batch_rejected(self):
        def build(seed):
            return build_cosmoflow(grid=8, in_channels=2, n_conv_layers=1,
                                   base_filters=2, dense_units=(4,))

        dp = DataParallel(build, n_ranks=2)
        with pytest.raises(ValueError):
            dp.forward_backward(
                np.zeros((3, 2, 8, 8, 8), np.float32),
                np.zeros((3, 4), np.float32),
                mse_loss,
            )


class TestFit:
    def _loaders(self, n=8):
        from repro.core.plugins import CosmoflowLutPlugin
        from repro.datasets import cosmoflow
        from repro.pipeline import DataLoader, ListSource
        from repro.pipeline.ops import LabelTransformOp

        cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=3000)
        plugin = CosmoflowLutPlugin("cpu")
        tr = [plugin.encode(s.data, s.label)
              for s in cosmoflow.generate_dataset(n, cfg, seed=1)]
        va = [plugin.encode(s.data, s.label)
              for s in cosmoflow.generate_dataset(4, cfg, seed=2)]
        ops = [LabelTransformOp(cosmoflow.normalize_label)]
        return (
            DataLoader(ListSource(tr), plugin, batch_size=4, seed=0,
                       extra_ops=ops),
            DataLoader(ListSource(va), plugin, batch_size=4, shuffle=False,
                       extra_ops=ops),
        )

    def _trainer(self, seed=3):
        m = build_cosmoflow(grid=8, in_channels=4, n_conv_layers=2,
                            base_filters=2, dense_units=(8,), seed=seed)
        return Trainer(m, mse_loss,
                       Adam(m.parameters(), WarmupSchedule(base_lr=3e-3)),
                       mixed_precision=True)

    def test_fit_trains_and_reports(self):
        train, val = self._loaders()
        res = self._trainer().fit(train, epochs=4, val_loader=val)
        assert res.epochs_run == 4
        assert len(res.train_losses) == 4
        assert len(res.val_losses) == 4
        assert res.train_losses[-1] < res.train_losses[0]
        assert res.best_epoch >= 0

    def test_early_stopping(self):
        train, val = self._loaders()
        tr = self._trainer()
        # absurd LR after warmup guarantees the val loss stops improving
        tr.optimizer.schedule.decay_steps[1] = 1e6
        res = tr.fit(train, epochs=20, val_loader=val, patience=2)
        assert res.epochs_run < 20

    def test_checkpoint_restores_best(self, tmp_path):
        train, val = self._loaders()
        tr = self._trainer()
        path = tmp_path / "best.rpck"
        res = tr.fit(train, epochs=4, val_loader=val, checkpoint_path=path)
        assert path.exists()
        # restored model reproduces the best validation score
        final_val = tr.evaluate(val.batches(0))
        assert final_val == pytest.approx(res.best_score, rel=1e-5)

    def test_validation(self):
        train, _ = self._loaders(4)
        with pytest.raises(ValueError):
            self._trainer().fit(train, epochs=0)
        with pytest.raises(ValueError):
            self._trainer().fit(train, epochs=1, patience=0)
