"""Additional property/stress tests across subsystem invariants."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.ml.distributed import ring_allreduce
from repro.pipeline import DataLoader, ListSource
from repro.pipeline.executor import PrefetchExecutor
from repro.pipeline.graph import Pipeline
from repro.pipeline.ops import DecodeOp, ReadOp
from repro.simulate.events import Environment, Resource


@pytest.fixture(scope="module")
def tiny_loader_parts():
    cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=2)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(7, cfg, seed=9)
    blobs = [plugin.encode(s.data, s.label) for s in ds]
    return plugin, blobs


class TestLoaderProperties:
    @given(batch_size=st.integers(1, 8), epoch=st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_every_sample_exactly_once_per_epoch(
        self, tiny_loader_parts, batch_size, epoch
    ):
        plugin, blobs = tiny_loader_parts
        dl = DataLoader(ListSource(blobs), plugin, batch_size=batch_size,
                        seed=4)
        order = dl.epoch_order(epoch)
        assert sorted(order) == list(range(len(blobs)))
        total = sum(b.shape[0] for b, _ in dl.batches(epoch))
        assert total == len(blobs)

    @given(workers=st.integers(0, 4), depth=st.integers(1, 6))
    @settings(max_examples=12, deadline=None)
    def test_executor_invariant_under_concurrency(
        self, tiny_loader_parts, workers, depth
    ):
        plugin, blobs = tiny_loader_parts
        pipe = Pipeline([ReadOp(ListSource(blobs)), DecodeOp(plugin)])
        ex = PrefetchExecutor(pipe, num_workers=workers,
                              prefetch_depth=depth)
        indices = [3, 0, 6, 1, 5, 2, 4]
        items = list(ex.run(indices))
        assert [i.index for i in items] == indices


class TestDesProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0.01, 2.0), st.floats(0.0, 1.0)),
            min_size=1, max_size=15,
        ),
        st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_resource_never_exceeds_capacity(self, jobs, capacity):
        env = Environment()
        res = Resource(env, capacity=capacity)
        peak = {"v": 0}

        def job(hold, start):
            yield env.timeout(start)
            yield res.request()
            peak["v"] = max(peak["v"], res.in_use)
            assert res.in_use <= capacity
            yield env.timeout(hold)
            res.release()

        for hold, start in jobs:
            env.process(job(hold, start))
        env.run()
        assert res.in_use == 0
        assert peak["v"] <= capacity

    @given(
        st.lists(st.floats(0.01, 5.0), min_size=1, max_size=10),
        st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_makespan_bounds(self, holds, capacity):
        # total time must lie between max(hold) and sum(hold)
        env = Environment()
        res = Resource(env, capacity=capacity)

        def job(hold):
            yield from res.acquire(hold)

        for h in holds:
            env.process(job(h))
        env.run()
        assert max(holds) - 1e-9 <= env.now <= sum(holds) + 1e-9


class TestAllreduceProperties:
    @given(
        st.integers(1, 6),
        st.integers(1, 40),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_ring_equals_mean(self, ranks, n, seed):
        rng = np.random.default_rng(seed)
        chunks = [rng.standard_normal(n) for _ in range(ranks)]
        want = np.mean(chunks, axis=0)
        out = ring_allreduce(chunks)
        for o in out:
            assert np.allclose(o, want, rtol=1e-9, atol=1e-9)


class TestThreadSafety:
    def test_parallel_decode_is_safe(self, tiny_loader_parts):
        """Plugins decode fresh arrays per call; hammer them from threads."""
        plugin, blobs = tiny_loader_parts
        reference = [plugin.decode_cpu(b)[0] for b in blobs]
        errors: list[Exception] = []

        def worker():
            try:
                for _ in range(10):
                    for i, b in enumerate(blobs):
                        t, _ = plugin.decode_cpu(b)
                        assert np.array_equal(t, reference[i])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
