"""Tests for the DES engine, machine models, trace, and training simulation."""

import numpy as np
import pytest

from repro.core.plugins.base import SampleCost
from repro.experiments.config import COSMOFLOW, DEEPCAM, cosmoflow_costs, deepcam_costs
from repro.simulate import (
    CORI_A100,
    CORI_V100,
    MACHINES,
    SUMMIT,
    TrainSimConfig,
    WorkloadSpec,
    simulate_node,
)
from repro.simulate.events import Barrier, Environment, Resource, Store
from repro.simulate.trace import Trace


class TestEngine:
    def test_timeout_ordering(self):
        env = Environment()
        log = []

        def proc(delay, tag):
            yield env.timeout(delay)
            log.append((env.now, tag))

        env.process(proc(2.0, "b"))
        env.process(proc(1.0, "a"))
        env.run()
        assert log == [(1.0, "a"), (2.0, "b")]

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_run_until(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(10.0)
            fired.append(True)

        env.process(proc())
        env.run(until=5.0)
        assert env.now == 5.0 and not fired
        env.run()
        assert fired

    def test_resource_serializes(self):
        env = Environment()
        res = Resource(env, capacity=1)
        done = []

        def worker(i):
            yield from res.acquire(1.0)
            done.append((env.now, i))

        for i in range(3):
            env.process(worker(i))
        env.run()
        assert [t for t, _ in done] == [1.0, 2.0, 3.0]

    def test_resource_capacity_parallelism(self):
        env = Environment()
        res = Resource(env, capacity=3)
        done = []

        def worker():
            yield from res.acquire(1.0)
            done.append(env.now)

        for _ in range(3):
            env.process(worker())
        env.run()
        assert done == [1.0, 1.0, 1.0]

    def test_resource_release_without_acquire(self):
        env = Environment()
        res = Resource(env)
        with pytest.raises(RuntimeError):
            res.release()

    def test_store_bounded_blocking(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer():
            for i in range(3):
                yield store.put(i)
                times.append(("put", env.now, i))

        def consumer():
            for _ in range(3):
                item = yield store.get()
                times.append(("got", env.now, item))
                yield env.timeout(1.0)

        env.process(producer())
        env.process(consumer())
        env.run()
        got = [t for t in times if t[0] == "got"]
        assert [g[2] for g in got] == [0, 1, 2]  # FIFO order

    def test_barrier_synchronizes(self):
        env = Environment()
        bar = Barrier(env, 3)
        release_times = []

        def party(delay):
            yield env.timeout(delay)
            yield bar.wait()
            release_times.append(env.now)

        for d in (1.0, 5.0, 3.0):
            env.process(party(d))
        env.run()
        assert release_times == [5.0, 5.0, 5.0]

    def test_barrier_reusable(self):
        env = Environment()
        bar = Barrier(env, 2)
        rounds = []

        def party(i):
            for r in range(2):
                yield env.timeout(i + 1)
                yield bar.wait()
                rounds.append((r, i, env.now))

        env.process(party(0))
        env.process(party(1))
        env.run()
        assert len(rounds) == 4

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)
        with pytest.raises(ValueError):
            Store(env, capacity=0)
        with pytest.raises(ValueError):
            Barrier(env, 0)


class TestMachines:
    def test_table1_fields(self):
        assert SUMMIT.gpus_per_node == 6
        assert CORI_V100.gpus_per_node == 8
        assert CORI_A100.gpus_per_node == 8
        assert SUMMIT.host_mem_gb == 512
        assert CORI_A100.host_mem_gb == 1056
        assert SUMMIT.link.name == "NVLink"
        assert CORI_V100.link.name == "PCIe3"
        assert CORI_A100.link.name == "PCIe4"

    def test_nvme_from_table1(self):
        gib = 1024**3
        assert CORI_V100.nvme.read_bw_gbps == pytest.approx(3.2 * gib / 1e9)
        assert SUMMIT.nvme.read_bw_gbps == pytest.approx(5.5 * gib / 1e9)
        assert CORI_A100.nvme.capacity_bytes == pytest.approx(15.4e12)

    def test_registry(self):
        assert set(MACHINES) == {"Summit", "Cori-V100", "Cori-A100"}


class TestTrace:
    def test_record_and_breakdown(self):
        tr = Trace()
        tr.record("gpu_compute", 0, 0.0, 2.0)
        tr.record("gpu_compute", 1, 0.0, 1.0)
        tr.record("h2d_copy", 0, 2.0, 2.5)
        assert tr.total("gpu_compute") == 3.0
        assert tr.total("gpu_compute", gpu=0) == 2.0
        shares = tr.breakdown_shares()
        assert shares["gpu_compute"] == pytest.approx(3.0 / 3.5)

    def test_invalid_records(self):
        tr = Trace()
        with pytest.raises(ValueError):
            tr.record("coffee_break", 0, 0.0, 1.0)
        with pytest.raises(ValueError):
            tr.record("gpu_compute", 0, 2.0, 1.0)

    def test_empty_shares(self):
        assert sum(Trace().breakdown_shares().values()) == 0.0


def _mini_workload():
    return WorkloadSpec(
        name="mini", sample_elems=1000, flops_per_sample=1e9,
        model_grad_bytes=10**6, cpu_ns_per_elem=100.0,
    )


def _mini_cost(stored=10**6, h2d=10**6, cpu_elems=1000, gpu_s=0.0):
    return SampleCost(
        stored_bytes=stored, h2d_bytes=h2d, decoded_bytes=h2d,
        cpu_preprocess_elems=cpu_elems, gpu_decode_seconds=gpu_s,
    )


class TestTrainSim:
    def _run(self, **kwargs):
        defaults = dict(
            machine=CORI_V100, workload=_mini_workload(), cost=_mini_cost(),
            plugin_name="t", placement="cpu", samples_per_gpu=16,
            batch_size=2, staged=True, epochs=2, sim_samples_cap=16,
        )
        defaults.update(kwargs)
        return simulate_node(TrainSimConfig(**defaults))

    def test_deterministic(self):
        a = self._run()
        b = self._run()
        assert a.node_samples_per_s == b.node_samples_per_s
        assert a.elapsed_s == b.elapsed_s

    def test_throughput_positive(self):
        r = self._run()
        assert r.node_samples_per_s > 0
        assert r.elapsed_s > 0

    def test_cached_small_set_faster_after_first_epoch(self):
        r = self._run(samples_per_gpu=8, sim_samples_cap=8,
                      cost=_mini_cost(stored=10**8), epochs=3)
        assert r.cache_hit_rate == 1.0
        assert r.node_samples_per_s >= r.first_epoch_samples_per_s

    def test_oversized_dataset_partial_hits(self):
        huge = int(CORI_V100.cache_bytes)  # per-sample ~ cache size / 8 / 16
        r = self._run(cost=_mini_cost(stored=huge // 32))
        assert 0 < r.cache_hit_rate < 1

    def test_more_cpu_work_is_slower(self):
        fast = self._run(cost=_mini_cost(cpu_elems=10**5))
        slow = self._run(cost=_mini_cost(cpu_elems=10**7))
        assert slow.node_samples_per_s < fast.node_samples_per_s

    def test_gzip_decompression_costs(self):
        plain = self._run(cost=_mini_cost(cpu_elems=10**6))
        gz = self._run(cost=_mini_cost(cpu_elems=10**6), gzip_level=0.2)
        assert gz.node_samples_per_s < plain.node_samples_per_s

    def test_gpu_decode_share_accounted(self):
        r = self._run(placement="gpu",
                      cost=_mini_cost(cpu_elems=0, gpu_s=1e-3))
        assert r.decode_share > 0
        assert r.trace.total("gpu_decode") > 0

    def test_trace_covers_all_gpus(self):
        r = self._run()
        gpus = {iv.gpu for iv in r.trace.intervals}
        assert gpus == set(range(CORI_V100.gpus_per_node))

    def test_utilization_reported_and_bounded(self):
        r = self._run()
        assert set(r.utilization) == {"storage", "cpu", "link", "gpu"}
        for v in r.utilization.values():
            assert 0.0 <= v <= 1.0 + 1e-9

    def test_base_is_cpu_bound_plugin_is_gpu_bound(self):
        base = self._run(cost=_mini_cost(cpu_elems=10**7))
        plug = self._run(placement="gpu",
                         cost=_mini_cost(cpu_elems=0, gpu_s=1e-3))
        assert base.utilization["cpu"] > 0.7
        assert base.utilization["gpu"] < base.utilization["cpu"]
        assert plug.utilization["cpu"] == 0.0
        # the mini workload's compute is tiny, so storage shares the load;
        # the GPU must still carry far more than the (idle) CPU
        assert plug.utilization["gpu"] > 0.3

    def test_pinned_h2d_not_slower(self):
        pageable = self._run(cost=_mini_cost(h2d=10**8))
        pinned = self._run(cost=_mini_cost(h2d=10**8), pinned_h2d=True)
        assert pinned.node_samples_per_s >= pageable.node_samples_per_s

    def test_validation(self):
        with pytest.raises(ValueError):
            self._run(placement="tpu")
        with pytest.raises(ValueError):
            self._run(batch_size=0)
        with pytest.raises(ValueError):
            self._run(gzip_level=1.5)
        with pytest.raises(ValueError):
            self._run(batch_size=32, sim_samples_cap=16)


class TestPaperShape:
    """Coarse assertions that the calibrated model reproduces the paper's
    qualitative results (the fine-grained numbers live in EXPERIMENTS.md)."""

    def _tp(self, machine, workload, cost, placement, spg, staged=True,
            bs=4, gz=0.0):
        cfg = TrainSimConfig(
            machine=machine, workload=workload, cost=cost, plugin_name="x",
            placement=placement, samples_per_gpu=spg, batch_size=bs,
            staged=staged, gzip_level=gz, epochs=3, sim_samples_cap=32,
        )
        return simulate_node(cfg).node_samples_per_s

    def test_cosmoflow_small_speedups(self):
        costs = cosmoflow_costs()
        for m, lo, hi in ((SUMMIT, 4, 9), (CORI_V100, 3, 6), (CORI_A100, 3, 6)):
            base = self._tp(m, COSMOFLOW, costs["base"], "cpu", 128)
            plug = self._tp(m, COSMOFLOW, costs["plugin"], "gpu", 128)
            assert lo < plug / base < hi, m.name

    def test_cosmoflow_gzip_slower_when_cached(self):
        costs = cosmoflow_costs()
        base = self._tp(CORI_V100, COSMOFLOW, costs["base"], "cpu", 128)
        gz = self._tp(CORI_V100, COSMOFLOW, costs["gzip"], "cpu", 128, gz=0.2)
        assert 1.1 < base / gz < 1.8  # paper: "up to 1.5x"

    def test_cosmoflow_large_order_of_magnitude(self):
        costs = cosmoflow_costs()
        base = self._tp(CORI_V100, COSMOFLOW, costs["base"], "cpu", 2048,
                        staged=False)
        plug = self._tp(CORI_V100, COSMOFLOW, costs["plugin"], "gpu", 2048,
                        staged=False)
        assert plug / base > 7  # "up to an order of magnitude"

    def test_cosmoflow_staging_helps_cori_large(self):
        costs = cosmoflow_costs()
        st = self._tp(CORI_V100, COSMOFLOW, costs["base"], "cpu", 2048, True)
        un = self._tp(CORI_V100, COSMOFLOW, costs["base"], "cpu", 2048, False)
        assert 1.2 < st / un < 2.2  # paper: "up to 1.5x"

    def test_cosmoflow_summit_staging_indifferent(self):
        costs = cosmoflow_costs()
        st = self._tp(SUMMIT, COSMOFLOW, costs["base"], "cpu", 2048, True)
        un = self._tp(SUMMIT, COSMOFLOW, costs["base"], "cpu", 2048, False)
        assert abs(st / un - 1) < 0.12  # paper: "within 10%"

    def test_deepcam_speedups(self):
        costs = deepcam_costs()
        for m, lo, hi in ((CORI_V100, 2.0, 3.5), (CORI_A100, 2.0, 3.6)):
            spg = 1536 // m.gpus_per_node
            base = self._tp(m, DEEPCAM, costs["base"], "cpu", spg)
            gpu = self._tp(m, DEEPCAM, costs["gpu"], "gpu", spg)
            cpu = self._tp(m, DEEPCAM, costs["cpu"], "cpu", spg)
            assert lo < gpu / base < hi, m.name
            assert 1.2 < cpu / base < gpu / base + 0.2, m.name

    def test_deepcam_gpu_plugin_leverages_a100(self):
        # paper: up to 2.2x over the V100 generation with the plugin
        costs = deepcam_costs()
        v = self._tp(CORI_V100, DEEPCAM, costs["gpu"], "gpu", 192)
        a = self._tp(CORI_A100, DEEPCAM, costs["gpu"], "gpu", 192)
        assert 1.6 < a / v < 2.6

    def test_deepcam_baseline_insensitive_to_gpu_generation(self):
        # paper: "baseline performance does not improve when migrating from
        # Cori-V100 to the faster Cori-A100"
        costs = deepcam_costs()
        v = self._tp(CORI_V100, DEEPCAM, costs["base"], "cpu", 192)
        a = self._tp(CORI_A100, DEEPCAM, costs["base"], "cpu", 192)
        assert a / v < 2.3  # far below the 2.6x compute gap

    def test_deepcam_large_dataset_slowdown(self):
        costs = deepcam_costs()
        small = self._tp(CORI_V100, DEEPCAM, costs["base"], "cpu", 192,
                         staged=False)
        large = self._tp(CORI_V100, DEEPCAM, costs["base"], "cpu", 1536,
                         staged=False)
        assert 1.1 < small / large < 2.6  # paper: 1.2-2.4x

    def test_decode_overheads_match_paper(self):
        cfg = TrainSimConfig(
            machine=CORI_V100, workload=DEEPCAM,
            cost=deepcam_costs()["gpu"], plugin_name="gpu",
            placement="gpu", samples_per_gpu=192, batch_size=4,
            staged=True, epochs=3, sim_samples_cap=32,
        )
        r = simulate_node(cfg)
        assert 0.01 < r.decode_share < 0.08  # paper: ~4%
        cfg2 = TrainSimConfig(
            machine=CORI_V100, workload=COSMOFLOW,
            cost=cosmoflow_costs()["plugin"], plugin_name="plugin",
            placement="gpu", samples_per_gpu=128, batch_size=4,
            staged=True, epochs=3, sim_samples_cap=32,
        )
        r2 = simulate_node(cfg2)
        assert r2.decode_share < 0.01  # paper: <1%


class TestWarmupSeries:
    def test_epoch_series_shows_cache_warmup(self):
        from repro.experiments.config import COSMOFLOW, cosmoflow_costs

        cfg = TrainSimConfig(
            machine=CORI_V100, workload=COSMOFLOW,
            cost=cosmoflow_costs()["base"], plugin_name="base",
            placement="cpu", samples_per_gpu=128, batch_size=4,
            staged=False, epochs=4, sim_samples_cap=32,
        )
        r = simulate_node(cfg)
        series = r.epoch_samples_per_s
        assert len(series) == 4
        # cold first epoch (PFS streaming), cache-warmed afterwards
        assert series[0] < series[1]
        assert abs(series[-1] - series[-2]) / series[-1] < 0.15

    def test_single_epoch_series(self):
        r = simulate_node(TrainSimConfig(
            machine=CORI_V100, workload=_mini_workload(), cost=_mini_cost(),
            plugin_name="t", placement="cpu", samples_per_gpu=8,
            batch_size=2, staged=True, epochs=1, sim_samples_cap=8,
        ))
        assert len(r.epoch_samples_per_s) == 1
        assert r.epoch_samples_per_s[0] == pytest.approx(
            r.first_epoch_samples_per_s
        )
