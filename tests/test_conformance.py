"""Conformance kit: reference decoders + differential harness.

The reference decoders are independent, loop-based re-implementations of
the format docs; these tests pin them bit-for-bit against the production
decode paths and prove the harness actually *catches* divergence (a
harness that can't fail is no safety net).
"""

import numpy as np
import pytest

from repro.accel.device import V100, SimulatedGpu
from repro.conformance import (
    ConformanceError,
    check_delta_case,
    check_lut_case,
    decode_delta_reference,
    decode_lut_reference,
    delta_decode_outputs,
    lut_decode_outputs,
)
from repro.conformance.differential import (
    CaseReport,
    Mismatch,
    compare_against,
    delta_config_from_dict,
    delta_config_to_dict,
    lut_config_from_dict,
    lut_config_to_dict,
)
from repro.core.encoding.delta import DeltaCodecConfig, decode_image, encode_image
from repro.core.encoding.lut import LutCodecConfig, decode_sample, encode_sample
from repro.util.rng import make_rng


def _smooth(rng, H, W, scale=1e-3):
    base = rng.normal(0.0, 1.0, (H, 1)).astype(np.float32)
    return base + np.cumsum(
        rng.normal(0, scale, (H, W)).astype(np.float32), axis=1
    )


class TestDeltaReference:
    def test_matches_loop_decoder_on_smooth(self):
        img = _smooth(make_rng(0), 12, 40)
        enc = encode_image(img)
        ref = decode_delta_reference(enc)
        assert ref.dtype == np.float16
        assert ref.tobytes() == decode_image(enc).tobytes()

    def test_matches_on_dataset_sample(self, deepcam_sample):
        for c in range(3):  # a few channels keep the loop decoder cheap
            enc = encode_image(deepcam_sample.data[c])
            assert (
                decode_delta_reference(enc).tobytes()
                == decode_image(enc).tobytes()
            )

    @pytest.mark.parametrize("mantissa_bits", [1, 2, 4, 6])
    def test_matches_across_bit_splits(self, mantissa_bits):
        img = _smooth(make_rng(3), 6, 33, scale=1e-2)
        cfg = DeltaCodecConfig(block_size=8, mantissa_bits=mantissa_bits)
        enc = encode_image(img, cfg)
        assert (
            decode_delta_reference(enc).tobytes()
            == decode_image(enc).tobytes()
        )

    def test_nan_inf_bit_patterns_agree(self):
        img = _smooth(make_rng(4), 4, 20, scale=0.01)
        img[0, 3] = np.nan
        img[1, 0] = np.inf
        img[2, -1] = -np.inf
        enc = encode_image(img)
        ref = decode_delta_reference(enc)
        # compare raw bits: NaN != NaN under ==, but the bytes must match
        assert ref.tobytes() == decode_image(enc).tobytes()

    def test_rejects_unknown_line_mode(self):
        enc = encode_image(_smooth(make_rng(5), 2, 8))
        enc.line_modes = enc.line_modes.copy()
        enc.line_modes[0] = 7
        with pytest.raises(ValueError, match="unknown line mode"):
            decode_delta_reference(enc)


class TestLutReference:
    def test_matches_gather_decoder(self, cosmo_sample):
        enc = encode_sample(cosmo_sample.data)
        ref = decode_lut_reference(enc)
        assert ref.tobytes() == decode_sample(enc).tobytes()

    def test_matches_with_dtype_override(self):
        vol = make_rng(1).integers(0, 50, (2, 5, 5)).astype(np.int16)
        enc = encode_sample(vol)
        ref = decode_lut_reference(enc, dtype=np.float16)
        assert ref.dtype == np.float16
        assert ref.tobytes() == decode_sample(enc, dtype=np.float16).tobytes()

    def test_multi_table_split(self):
        vol = make_rng(2).integers(0, 100, (2, 6, 6)).astype(np.int16)
        enc = encode_sample(vol, LutCodecConfig(max_groups_per_table=8))
        assert len(enc.tables) > 1
        assert decode_lut_reference(enc).tobytes() == (
            decode_sample(enc).tobytes()
        )

    def test_rejects_out_of_range_key(self):
        vol = make_rng(3).integers(0, 9, (2, 3, 3)).astype(np.int16)
        enc = encode_sample(vol)
        enc.tables[0].keys = enc.tables[0].keys.copy()
        enc.tables[0].keys[0] = 200  # beyond n_groups
        with pytest.raises(ValueError, match="out of range"):
            decode_lut_reference(enc)

    def test_rejects_key_count_mismatch(self):
        vol = make_rng(4).integers(0, 9, (2, 3, 3)).astype(np.int16)
        enc = encode_sample(vol)
        enc.tables[0].keys = enc.tables[0].keys[:-1]
        with pytest.raises(ValueError, match="keys"):
            decode_lut_reference(enc)


class TestDifferentialHarness:
    def test_delta_outputs_cover_all_paths(self):
        enc = encode_image(_smooth(make_rng(6), 6, 30))
        outs = delta_decode_outputs(enc)
        assert set(outs) == {"reference", "loop", "vectorized", "accel"}
        assert not compare_against(outs)

    def test_lut_outputs_cover_all_paths(self):
        vol = make_rng(7).integers(0, 30, (4, 4, 4, 4)).astype(np.int16)
        outs = lut_decode_outputs(encode_sample(vol))
        assert set(outs) == {"reference", "gather", "accel"}
        assert not compare_against(outs)

    def test_delta_case_passes(self, deepcam_sample):
        report = check_delta_case(deepcam_sample.data[0])
        assert report.ok
        report.raise_if_failed()  # no-op when clean

    def test_lut_case_passes(self, cosmo_sample):
        assert check_lut_case(cosmo_sample.data).ok

    def test_compare_catches_single_bit_flip(self):
        enc = encode_image(_smooth(make_rng(8), 4, 20))
        outs = delta_decode_outputs(enc)
        bad = outs["vectorized"].copy()
        bad.view(np.uint16).reshape(-1)[5] ^= 1
        outs["vectorized"] = bad
        mismatches = compare_against(outs)
        assert len(mismatches) == 1
        assert mismatches[0].impl == "vectorized"
        assert "1/80 elements differ" in mismatches[0].detail

    def test_compare_catches_shape_and_dtype_drift(self):
        ref = np.zeros((2, 3), dtype=np.float16)
        assert compare_against(
            {"reference": ref, "x": ref.astype(np.float32)}
        )[0].impl == "x"
        assert compare_against(
            {"reference": ref, "x": np.zeros((3, 2), dtype=np.float16)}
        )[0].impl == "x"

    def test_report_raises_with_context(self):
        report = CaseReport(codec="delta", impls=["a", "b"])
        report.mismatches.append(Mismatch("b", "a", "payload differs"))
        assert not report.ok
        with pytest.raises(ConformanceError, match="payload differs"):
            report.raise_if_failed()

    def test_broken_vectorized_decoder_is_caught(self, monkeypatch):
        """End-to-end: a wrong implementation fails the case report."""
        import repro.conformance.differential as diff

        def bad_decode(enc, out=None):
            res = diff.decode_image(enc, out=out)
            res.view(np.uint16).reshape(-1)[0] ^= 0x8000
            return res

        monkeypatch.setattr(diff, "decode_image_fast", bad_decode)
        report = check_delta_case(_smooth(make_rng(9), 4, 16))
        assert not report.ok
        assert any(m.impl == "vectorized" for m in report.mismatches)

    def test_shared_device_accumulates_charges(self):
        device = SimulatedGpu(spec=V100)
        check_delta_case(_smooth(make_rng(10), 3, 12), device=device)
        check_lut_case(
            make_rng(11).integers(0, 9, (2, 3, 3)).astype(np.int16),
            device=device,
        )
        names = {k.name for k in device.launches}
        assert "delta_decode" in names and "lut_gather" in names


class TestConfigRoundTrip:
    def test_delta_config(self):
        cfg = DeltaCodecConfig(block_size=8, mantissa_bits=2,
                               quality_gate=False)
        assert delta_config_from_dict(delta_config_to_dict(cfg)) == cfg

    def test_lut_config(self):
        cfg = LutCodecConfig(max_groups_per_table=12, value_dtype="int32")
        assert lut_config_from_dict(lut_config_to_dict(cfg)) == cfg
