"""End-to-end integration tests across subsystem boundaries."""

import numpy as np
import pytest

from repro.accel import SimulatedGpu, V100
from repro.core.plugins import (
    CosmoflowBaselinePlugin,
    CosmoflowLutPlugin,
    DeepcamDeltaPlugin,
)
from repro.datasets import cosmoflow, deepcam
from repro.ml import Adam, SGD, Trainer, WarmupSchedule, build_cosmoflow, build_deepcam
from repro.ml.losses import mse_loss, softmax_cross_entropy
from repro.pipeline import CachedSource, DataLoader, TfRecordSource, TierSource
from repro.pipeline.ops import LabelTransformOp, RandomFlipOp
from repro.storage import SampleCache, Tier, TierSpec, stage_dataset, tfrecord


class TestCosmoflowEndToEnd:
    def test_records_to_training(self, tmp_path):
        """Generate → encode → TFRecord on disk → loader → train → learn."""
        cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=4000, n_clusters=8)
        ds = cosmoflow.generate_dataset(8, cfg, seed=0)
        plugin = CosmoflowLutPlugin("gpu")
        path = tmp_path / "cosmo.tfr"
        with tfrecord.TfRecordWriter(path) as w:
            for s in ds:
                w.write(plugin.encode(s.data, s.label))

        device = SimulatedGpu(spec=V100)
        loader = DataLoader(
            TfRecordSource(path), plugin, batch_size=4, seed=1, device=device,
            extra_ops=[LabelTransformOp(cosmoflow.normalize_label)],
        )
        model = build_cosmoflow(grid=8, n_conv_layers=2, base_filters=2,
                                dense_units=(8,), seed=1)
        trainer = Trainer(
            model, mse_loss,
            Adam(model.parameters(), WarmupSchedule(base_lr=3e-3)),
            mixed_precision=True,
        )
        losses = [trainer.train_epoch(loader.batches(e)) for e in range(5)]
        assert losses[-1] < losses[0]
        assert device.busy_seconds > 0

    def test_base_and_decoded_pipelines_agree_on_content(self, tmp_path):
        cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=4000)
        ds = cosmoflow.generate_dataset(3, cfg, seed=5)
        base, plug = CosmoflowBaselinePlugin(), CosmoflowLutPlugin("cpu")
        for s in ds:
            t_base, _ = base.decode_cpu(base.encode(s.data, s.label))
            t_dec, _ = plug.decode_cpu(plug.encode(s.data, s.label))
            assert np.array_equal(
                t_dec, t_base.astype(np.float16)
            )  # decoded == FP16(baseline): lossless cast


class TestDeepcamEndToEnd:
    def test_figure1_storage_path(self, tmp_path):
        """PFS → stage-in → NVMe tier → cache → pipeline → training."""
        cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
        ds = deepcam.generate_dataset(6, cfg, seed=2)
        plugin = DeepcamDeltaPlugin("gpu")

        pfs = Tier(TierSpec("pfs", 0.5, 0.5, 1e-2), tmp_path / "pfs")
        nvme = Tier(TierSpec("nvme", 3.2, 1.8, 1e-4), tmp_path / "nvme")
        names = []
        for i, s in enumerate(ds):
            pfs.write(f"s{i}", plugin.encode(s.data, s.label))
            names.append(f"s{i}")
        report = stage_dataset(pfs, nvme, names)
        assert report.n_files == 6

        cache = SampleCache(10**8)
        device = SimulatedGpu(spec=V100)
        loader = DataLoader(
            CachedSource(TierSource(nvme, names), cache), plugin,
            batch_size=2, seed=0, device=device,
            extra_ops=[RandomFlipOp(0.5)],
        )
        model = build_deepcam(in_channels=4, base_filters=2, seed=0)
        weights = np.array([1.0, 5.0, 2.0], dtype=np.float32)
        trainer = Trainer(
            model,
            lambda p, t: softmax_cross_entropy(p, t, class_weights=weights),
            SGD(model.parameters(), WarmupSchedule(base_lr=0.05, warmup_steps=2),
                momentum=0.9),
            mixed_precision=True,
        )
        losses = [trainer.train_epoch(loader.batches(e)) for e in range(3)]
        assert losses[-1] < losses[0]
        # second epoch onward hits the host cache
        assert cache.stats.hits > 0

    def test_training_reproducible_bit_for_bit(self):
        cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
        ds = deepcam.generate_dataset(4, cfg, seed=3)
        plugin = DeepcamDeltaPlugin("cpu")
        blobs = [plugin.encode(s.data, s.label) for s in ds]

        def run():
            from repro.pipeline import ListSource

            loader = DataLoader(ListSource(blobs), plugin, batch_size=2,
                                seed=7)
            model = build_deepcam(in_channels=4, base_filters=2, seed=7)
            trainer = Trainer(
                model,
                lambda p, t: softmax_cross_entropy(p, t),
                SGD(model.parameters(), WarmupSchedule(base_lr=0.01)),
                mixed_precision=True,
            )
            for e in range(2):
                trainer.train_epoch(loader.batches(e))
            return trainer.history.step_losses

        assert run() == run()


class TestCrossPluginConsistency:
    def test_all_plugins_roundtrip_labels(self, deepcam_sample, cosmo_sample):
        cases = [
            (DeepcamDeltaPlugin("cpu"), deepcam_sample),
            (CosmoflowLutPlugin("cpu"), cosmo_sample),
            (CosmoflowBaselinePlugin(), cosmo_sample),
        ]
        for plugin, sample in cases:
            blob = plugin.encode(sample.data, sample.label)
            _, label = plugin.decode_cpu(blob)
            assert np.array_equal(label, sample.label), type(plugin).__name__

    def test_gpu_memory_guard_applies(self, cosmo_sample):
        device = SimulatedGpu(spec=V100)
        device.alloc(int(15.9e9))
        with pytest.raises(MemoryError):
            device.alloc(10**9)
