"""Cluster control-plane invariants: membership, routing, admission.

The properties failover correctness hangs on: lease expiry is the only
way a worker dies (satellite: lease expiry, stable worker ids, version
monotonicity under churn), routing tables are deterministic and
load-bounded, and admission control sheds with honest retry hints.
"""

import json

import pytest

from repro.cluster import (
    Dispatcher,
    Membership,
    RoutingTable,
    build_routing_table,
    dispatcher_call,
)
from repro.serve import protocol
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    BusyError,
)


class FakeClock:
    """Manually stepped monotonic clock for deterministic lease tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestMembership:
    def test_auto_worker_ids_are_dense_and_stable(self):
        m = Membership(lease_s=2.0)
        ids = [m.register("h", 9000 + i, 64).worker_id for i in range(3)]
        assert ids == ["w0", "w1", "w2"]

    def test_reregistration_keeps_id_and_bumps_incarnation(self):
        m = Membership(lease_s=2.0)
        first = m.register("h", 9000, 64)
        assert first.incarnation == 0
        again = m.register("h", 9100, 64, worker_id=first.worker_id)
        assert again.worker_id == first.worker_id
        assert again.incarnation == 1
        # the new address wins — a restarted worker may move ports
        assert m.alive()[first.worker_id] == ("h", 9100)

    def test_heartbeat_renews_without_version_bump(self):
        clock = FakeClock()
        m = Membership(lease_s=2.0, clock=clock)
        record = m.register("h", 9000, 64)
        v = m.version
        clock.advance(1.5)
        assert m.heartbeat(record.worker_id)
        assert m.version == v  # renewal is not a membership change
        clock.advance(1.5)  # 3.0s since register, 1.5s since heartbeat
        assert m.sweep() == []
        assert record.worker_id in m.alive()

    def test_lease_expiry_via_sweep(self):
        clock = FakeClock()
        m = Membership(lease_s=2.0, clock=clock)
        a = m.register("h", 9000, 64)
        b = m.register("h", 9001, 64)
        clock.advance(1.0)
        assert m.heartbeat(b.worker_id)  # only b stays alive
        clock.advance(1.5)  # a: 2.5s since lease, b: 1.5s
        v_before = m.version
        assert m.sweep() == [a.worker_id]
        assert m.version == v_before + 1  # exactly one bump per expiry
        assert list(m.alive()) == [b.worker_id]
        # an expired worker's heartbeat is refused: its cue to re-register
        assert not m.heartbeat(a.worker_id)

    def test_incarnation_survives_lease_expiry(self):
        """Coming back *after* a sweep still bumps: anything tagged with
        the old incarnation stays recognisably stale."""
        clock = FakeClock()
        m = Membership(lease_s=1.0, clock=clock)
        first = m.register("h", 9000, 64)
        clock.advance(2.0)
        assert m.sweep() == [first.worker_id]
        back = m.register("h", 9000, 64, worker_id=first.worker_id)
        assert back.incarnation == 1

    def test_version_monotonic_under_churn(self):
        clock = FakeClock()
        m = Membership(lease_s=1.0, clock=clock)
        seen = [m.version]
        for round_ in range(5):
            m.register("h", 9000 + round_, 32)
            seen.append(m.version)
            clock.advance(2.0)
            m.sweep()
            seen.append(m.version)
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)  # every change bumped exactly once
        kinds = [e.kind for e in m.events]
        assert kinds == ["register", "expire"] * 5
        assert [e.version for e in m.events] == list(range(1, 11))

    def test_drain_removes_from_routing_but_keeps_record(self):
        m = Membership(lease_s=5.0)
        record = m.register("h", 9000, 64)
        v = m.version
        assert m.drain(record.worker_id)
        assert m.version == v + 1
        assert record.worker_id not in m.alive()
        assert len(m) == 1  # still leased, still visible in status
        assert not m.drain(record.worker_id)  # idempotent, no second bump
        assert m.version == v + 1

    def test_conflicting_dataset_size_is_refused(self):
        m = Membership(lease_s=2.0)
        m.register("h", 9000, 64)
        with pytest.raises(ValueError, match="same dataset"):
            m.register("h", 9001, 65)
        # re-registering yourself with a new size is allowed (redeploy)
        m.register("h", 9000, 64, worker_id="w0")


class TestRoutingTable:
    WORKERS = {f"w{i}": ("h", 9000 + i) for i in range(5)}

    def test_deterministic_across_builds(self):
        a = build_routing_table(self.WORKERS, 100, replication=2, version=3)
        b = build_routing_table(dict(self.WORKERS), 100, replication=2, version=3)
        assert a.buckets == b.buckets

    def test_buckets_cover_contiguous_ranges(self):
        table = build_routing_table(self.WORKERS, 100, n_buckets=16)
        seen = [table.bucket_of(i) for i in range(100)]
        assert seen == sorted(seen)  # contiguous, monotone
        assert set(seen) == set(range(16))
        with pytest.raises(IndexError):
            table.bucket_of(100)

    def test_replicas_are_distinct(self):
        table = build_routing_table(self.WORKERS, 100, replication=3)
        for replicas in table.buckets:
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_degrades_below_replication_factor(self):
        table = build_routing_table({"w0": ("h", 9000)}, 10, replication=2)
        assert all(replicas == ("w0",) for replicas in table.buckets)

    def test_load_bound_is_respected(self):
        """No worker exceeds its ideal share by more than one bucket.

        The bounded walk caps assignments at ``ceil(n_buckets * r / n)``;
        the distinct-replica constraint can push a single tail bucket one
        past the cap (the documented relaxation), never further.  A plain
        ring leaves 30–40% spread here.
        """
        for n_workers in (2, 3, 5, 8):
            workers = {f"w{i}": ("h", 9000 + i) for i in range(n_workers)}
            table = build_routing_table(
                workers, 1000, replication=2, n_buckets=64
            )
            cap = -(-64 * 2 // n_workers)
            loads = {w: len(bs) for w, bs in table.assignments().items()}
            assert max(loads.values()) <= cap + 1, (n_workers, loads)
            assert sum(loads.values()) == 64 * 2

    def test_removal_moves_only_the_dead_workers_buckets(self):
        before = build_routing_table(self.WORKERS, 100, n_buckets=32)
        survivors = {w: a for w, a in self.WORKERS.items() if w != "w2"}
        after = build_routing_table(survivors, 100, n_buckets=32)
        moved = sum(
            1
            for b in range(32)
            if set(after.buckets[b]) != set(before.buckets[b])
        )
        touched = sum(1 for bs in before.buckets if "w2" in bs)
        # consistency: buckets w2 never held mostly stay put (the load
        # bound can shuffle a few extras as shares rebalance)
        assert moved <= touched + 32 // 4
        assert all("w2" not in bs for bs in after.buckets)

    def test_json_round_trip(self):
        table = build_routing_table(
            self.WORKERS, 100, replication=2, version=7, ttl_s=2.5
        )
        wire = json.loads(json.dumps(table.to_json()))  # simulate the frame
        back = RoutingTable.from_json(wire)
        assert back == table

    def test_validation(self):
        with pytest.raises(ValueError):
            build_routing_table({}, 10)
        with pytest.raises(ValueError):
            build_routing_table(self.WORKERS, 10, replication=0)
        with pytest.raises(ValueError):
            build_routing_table(self.WORKERS, 10, n_buckets=0)


class TestAdmission:
    def test_burst_then_rate_limited_with_honest_hint(self):
        clock = FakeClock()
        ctl = AdmissionController(
            AdmissionPolicy(rate_per_client=10.0, burst=2.0), clock=clock
        )
        ctl.admit("client-a")
        ctl.admit("client-a")  # burst of 2 admitted back to back
        with pytest.raises(BusyError) as err:
            ctl.admit("client-a")
        assert err.value.reason == "tokens"
        # next token lands in exactly 1/rate seconds
        assert err.value.retry_after_s == pytest.approx(0.1)
        clock.advance(0.11)  # a hair past the hint (float-safe)
        ctl.admit("client-a")  # hint was honest: admitted on schedule

    def test_per_client_buckets_are_independent(self):
        clock = FakeClock()
        ctl = AdmissionController(
            AdmissionPolicy(rate_per_client=1.0, burst=1.0), clock=clock
        )
        ctl.admit("greedy")
        with pytest.raises(BusyError):
            ctl.admit("greedy")
        ctl.admit("polite")  # the greedy client cannot starve this one

    def test_inflight_cap_and_release(self):
        ctl = AdmissionController(AdmissionPolicy(max_inflight=2))
        ctl.admit("a")
        ctl.admit("b")
        with pytest.raises(BusyError) as err:
            ctl.admit("c")
        assert err.value.reason == "inflight"
        assert err.value.retry_after_s > 0
        ctl.release()
        ctl.admit("c")  # slot freed → admitted
        report = ctl.report()
        assert report["inflight"] == 2
        assert report["admitted"] == 3
        assert report["sheds_by_reason"] == {"inflight": 1}

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(rate_per_client=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(burst=0.5)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_inflight=0)


class TestDispatcherWire:
    """The control plane over real sockets, as workers and clients see it."""

    @pytest.fixture()
    def dispatcher(self):
        with Dispatcher(lease_s=5.0, replication=2, n_buckets=8) as d:
            yield d

    @staticmethod
    def _register(d, port, worker_id=None):
        req = {"host": "127.0.0.1", "port": port, "n_samples": 40}
        if worker_id is not None:
            req["worker_id"] = worker_id
        return dispatcher_call(*d.address, protocol.OP_REGISTER, req)

    def test_register_grants_lease_and_id(self, dispatcher):
        out = self._register(dispatcher, 9001)
        assert out["worker_id"] == "w0"
        assert out["incarnation"] == 0
        assert out["lease_s"] == 5.0
        assert out["heartbeat_s"] == pytest.approx(5.0 / 3.0)
        assert out["version"] == 1

    def test_heartbeat_known_and_unknown(self, dispatcher):
        out = self._register(dispatcher, 9001)
        hb = dispatcher_call(
            *dispatcher.address,
            protocol.OP_HEARTBEAT,
            {"worker_id": out["worker_id"]},
        )
        assert hb["known"] is True
        assert hb["version"] == out["version"]  # no bump on renewal
        hb = dispatcher_call(
            *dispatcher.address, protocol.OP_HEARTBEAT, {"worker_id": "ghost"}
        )
        assert hb["known"] is False

    def test_route_reflects_membership_and_version(self, dispatcher):
        with pytest.raises(RuntimeError, match="no live workers"):
            dispatcher_call(*dispatcher.address, protocol.OP_ROUTE)
        for port in (9001, 9002, 9003):
            self._register(dispatcher, port)
        table = RoutingTable.from_json(
            dispatcher_call(*dispatcher.address, protocol.OP_ROUTE)
        )
        assert table.version == 3
        assert set(table.workers) == {"w0", "w1", "w2"}
        assert table.n_samples == 40
        assert all(len(bs) == 2 for bs in table.buckets)

    def test_lease_actions(self, dispatcher):
        self._register(dispatcher, 9001)
        self._register(dispatcher, 9002)
        status = dispatcher_call(
            *dispatcher.address, protocol.OP_LEASE, {"action": "status"}
        )
        assert [w["worker_id"] for w in status["workers"]] == ["w0", "w1"]
        assert status["routing_version"] == status["version"] == 2
        out = dispatcher_call(
            *dispatcher.address,
            protocol.OP_LEASE,
            {"action": "drain", "worker_id": "w0"},
        )
        assert out["drained"] is True and out["version"] == 3
        table = RoutingTable.from_json(
            dispatcher_call(*dispatcher.address, protocol.OP_ROUTE)
        )
        assert "w0" not in table.workers  # drained: out of the table
        out = dispatcher_call(
            *dispatcher.address,
            protocol.OP_LEASE,
            {"action": "expire", "worker_id": "w1"},
        )
        assert out["expired"] is True
        with pytest.raises(RuntimeError, match="no live workers"):
            dispatcher_call(*dispatcher.address, protocol.OP_ROUTE)

    def test_reregistration_over_the_wire(self, dispatcher):
        first = self._register(dispatcher, 9001)
        again = self._register(dispatcher, 9009, worker_id=first["worker_id"])
        assert again["worker_id"] == first["worker_id"]
        assert again["incarnation"] == 1
        assert again["version"] == first["version"] + 1

    def test_epoch_shards_served_from_the_dispatcher(self):
        import numpy as np

        from repro.serve import ShardPlan

        with Dispatcher(world_size=2, seed=17) as d:
            self._register(d, 9001)
            plan = ShardPlan(40, world_size=2, seed=17)
            for rank in (0, 1):
                shard = protocol.unpack_indices(
                    _raw_epoch(d.address, rank, 1)
                )
                assert np.array_equal(shard, plan.shard(rank, 1))


def _raw_epoch(address, rank, epoch):
    """EPOCH uses a binary body, so it bypasses ``dispatcher_call``."""
    import socket

    host, port = address
    with socket.create_connection((host, port), timeout=5.0) as sock:
        sock.settimeout(5.0)
        sock.sendall(
            protocol.pack_frame(protocol.OP_EPOCH, protocol.pack_epoch(rank, epoch))
        )
        kind, payload = protocol.recv_frame(sock, frame_timeout_s=5.0)
    assert kind == protocol.ST_OK
    return payload
