"""Cross-process trace propagation: header codec, stitching, failover.

The contract under test, end to end:

* the TLV trace-context header round-trips any context and tolerates
  fields it has never heard of (hypothesis-driven);
* a traced client and a traced server stitch into ONE span tree —
  ``loader.fetch → wire.rpc → server.handle → …`` — scraped live over
  the ``METRICS`` frame;
* mixed versions interoperate in both directions: a header-bearing
  client against a recorder-less server, an old-style strict client
  body against the new tolerant server, and a client that never attaches
  headers when the handshake does not advertise them;
* the acceptance path: one ``READ_BATCH`` through a replicated cluster
  with a replica killed mid-trace exports as one stitched tree holding
  the client spans, the surviving worker's server spans, and the
  failover's retry attempts — all under a single trace id.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSource, ClusterWorker, Dispatcher
from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.observe import TraceRecorder, build_trees, span, stitch
from repro.observe.wire import (
    TAG_FLAGS,
    TAG_PARENT_ID,
    TAG_TRACE_ID,
    TraceContext,
    pack_trace_context,
    unpack_trace_context,
)
from repro.pipeline import ListSource
from repro.serve import DataServer, RemoteSource, protocol

N = 16


@pytest.fixture(scope="module")
def blobs():
    cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(N, cfg, seed=3)
    return [plugin.encode(s.data, s.label) for s in ds]


_KNOWN_TAGS = {TAG_TRACE_ID, TAG_PARENT_ID, TAG_FLAGS}

contexts_st = st.builds(
    TraceContext,
    trace_id=st.integers(min_value=1, max_value=2**64 - 1),
    parent_id=st.integers(min_value=0, max_value=2**64 - 1),
    sampled=st.booleans(),
)

unknown_fields_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255).filter(
            lambda t: t not in _KNOWN_TAGS
        ),
        st.binary(max_size=16),
    ),
    max_size=4,
)


class TestHeaderCodec:
    @given(ctx=contexts_st, extra=unknown_fields_st)
    @settings(max_examples=200)
    def test_round_trip_survives_unknown_fields(self, ctx, extra):
        buf = pack_trace_context(ctx, extra_fields=tuple(extra))
        assert unpack_trace_context(buf) == ctx

    @given(ctx=contexts_st, cut=st.integers(min_value=0, max_value=40))
    @settings(max_examples=100)
    def test_truncation_never_raises(self, ctx, cut):
        buf = pack_trace_context(ctx)[:cut]
        out = unpack_trace_context(buf)
        assert out is None or out == ctx

    def test_empty_and_header_without_trace_id(self):
        assert unpack_trace_context(b"") is None
        # a version/count header with zero fields carries no trace id
        assert unpack_trace_context(bytes([1, 0])) is None
        # only-unknown-fields header: parsed, skipped, no trace id
        only_unknown = bytes([1, 1, 0x70, 1, 0x78])
        assert unpack_trace_context(only_unknown) is None

    def test_protocol_bodies_with_and_without_tail(self):
        ctx = TraceContext(0xABC, parent_id=7, sampled=False)
        tail = pack_trace_context(ctx)
        body = protocol.pack_read(5, trace=tail)
        assert protocol.unpack_read_traced(body) == (5, ctx)
        # old strict unpacker refuses the extended body...
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_read(body)
        # ...and the tolerant one accepts the old 8-byte body
        assert protocol.unpack_read_traced(protocol.pack_read(5)) == (5, None)

        batch = protocol.pack_indices([1, 2, 3], trace=tail)
        indices, got = protocol.unpack_indices_traced(batch)
        assert list(indices) == [1, 2, 3] and got == ctx
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_indices(batch)
        plain = protocol.pack_indices([1, 2, 3])
        indices, got = protocol.unpack_indices_traced(plain)
        assert list(indices) == [1, 2, 3] and got is None


class TestClientServerStitching:
    def test_one_tree_across_the_wire(self, blobs):
        client_rec = TraceRecorder(seed=1, proc="client")
        server_rec = TraceRecorder(seed=2, proc="server")
        with DataServer(ListSource(blobs), trace=server_rec) as server:
            host, port = server.address
            with RemoteSource(host, port) as src:
                assert src._trace_headers
                with client_rec.trace("loader.fetch", index=4):
                    blob = src.read(4)
        assert blob == blobs[4]
        spans = stitch(client_rec.spans(), server_rec.spans())
        trees = build_trees(spans)
        assert len(trees) == 1
        root = trees[0]
        assert root["span"].name == "loader.fetch"
        rpc = root["children"][0]
        assert rpc["span"].name == "wire.rpc"
        handle = rpc["children"][0]
        assert handle["span"].name == "server.handle"
        assert handle["span"].proc == "server"
        assert len({s.trace_id for s in spans}) == 1

    def test_metrics_scrape_returns_summary_and_trace(self, blobs):
        client_rec = TraceRecorder(seed=1, proc="client")
        server_rec = TraceRecorder(seed=2, proc="server")
        with DataServer(ListSource(blobs), trace=server_rec) as server:
            with RemoteSource(*server.address) as src:
                with client_rec.trace("loader.fetch") as tr:
                    src.read(0)
                    tid = tr.trace_id
                out = src.metrics(tid)
        assert out["observe"]["proc"] == "server"
        assert out["observe"]["traces"] == 1
        scraped = out["trace_spans"]
        assert scraped and all(
            int(s["trace_id"], 16) == tid for s in scraped
        )
        # the scraped JSON stitches against the local spans directly
        trees = build_trees(stitch(client_rec.spans(), scraped))
        assert len(trees) == 1

    def test_error_reply_carries_the_trace_id(self, blobs):
        class Failing(ListSource):
            def read(self, index):
                if index == 1:
                    raise RuntimeError("injected")
                return super().read(index)

        client_rec = TraceRecorder(seed=1, proc="client")
        server_rec = TraceRecorder(seed=2, proc="server")
        with DataServer(Failing(blobs), trace=server_rec) as server:
            with RemoteSource(*server.address) as src:
                with pytest.raises(Exception) as info:
                    with client_rec.trace("loader.fetch") as tr:
                        tid = tr.trace_id
                        src.read(1)
        assert getattr(info.value, "trace_id", 0) == tid
        # the server kept the failing handle's spans under the same id
        assert server_rec.spans_for(tid)


class TestMixedVersions:
    def test_header_bearing_client_vs_recorderless_server(self, blobs):
        """A server with no recorder still advertises and accepts the
        header — it is header-ignorant, not header-intolerant."""
        client_rec = TraceRecorder(seed=1, proc="client")
        with DataServer(ListSource(blobs)) as server:  # trace=None
            assert server.info()["trace_headers"] is True
            assert server.info()["trace"] is False
            with RemoteSource(*server.address) as src:
                with client_rec.trace("loader.fetch"):
                    got = [src.read(i) for i in range(4)]
                    slots = src.read_batch_slots([4, 5])
        assert got == blobs[:4] and slots == blobs[4:6]
        # the client half still recorded its rpc spans
        assert any(s.name == "wire.rpc" for s in client_rec.spans())

    def test_client_gates_on_the_handshake(self, blobs, monkeypatch):
        """Against a server that does not advertise ``trace_headers``
        (pre-header builds), the client must send pristine bodies."""
        info = DataServer.info

        def old_info(self):
            out = info(self)
            out.pop("trace_headers")
            return out

        monkeypatch.setattr(DataServer, "info", old_info)
        client_rec = TraceRecorder(seed=1, proc="client")
        with DataServer(ListSource(blobs)) as server:
            with RemoteSource(*server.address) as src:
                assert not src._trace_headers
                assert src._trace_tail() == b""
                with client_rec.trace("loader.fetch"):
                    assert src._trace_tail() == b""
                    assert src.read(2) == blobs[2]

    def test_old_style_strict_bodies_against_the_new_server(self, blobs):
        """Raw frames exactly as an old client would send them."""
        server_rec = TraceRecorder(seed=2, proc="server")
        with DataServer(ListSource(blobs), trace=server_rec) as server:
            with RemoteSource(*server.address) as src:
                payload = src._round_trip(
                    protocol.OP_READ, protocol.pack_read(3)
                )
        assert bytes(payload) == blobs[3]


class TestClusterFailoverAcceptance:
    def test_read_batch_with_replica_death_stitches_one_tree(self, blobs):
        """The ISSUE acceptance path: one READ_BATCH through a
        replicated cluster, one replica killed mid-trace → one stitched
        span tree holding client, surviving-worker, and retry spans."""
        dispatcher = Dispatcher(lease_s=0.5, replication=2,
                                n_buckets=4).start()
        worker_recs = [
            TraceRecorder(seed=10 + k, proc=f"worker:{k}") for k in range(2)
        ]
        workers = [
            ClusterWorker(
                ListSource(blobs), dispatcher=dispatcher.address,
                trace=worker_recs[k],
            ).start()
            for k in range(2)
        ]
        client_rec = TraceRecorder(seed=1, proc="client")
        indices = list(range(8))
        try:
            with ClusterSource(dispatcher.address, timeout_s=2.0) as src:
                src.read(0)  # open connections, learn the table
                workers[0].close(drain=False, timeout_s=2.0)  # hard kill
                with client_rec.trace("loader.fetch",
                                      batch=len(indices)) as tr:
                    tid = tr.trace_id
                    slots = src.read_batch_slots(indices)
        finally:
            workers[1].close(drain=False, timeout_s=2.0)
            dispatcher.close(drain=False, timeout_s=2.0)
        # every slot served despite the death — bit-identical bytes
        assert slots == [blobs[i] for i in indices]
        failovers = dict(src.stats.snapshot()).get(
            "cluster.failovers", (0, 0.0))[0]
        assert failovers > 0, "the dead replica was never routed to"

        spans = stitch(
            client_rec.spans_for(tid),
            worker_recs[0].spans_for(tid),
            worker_recs[1].spans_for(tid),
        )
        assert len({s.trace_id for s in spans}) == 1
        trees = build_trees(spans)
        assert len(trees) == 1, "client and worker spans did not stitch"
        root = trees[0]["span"]
        assert root.name == "loader.fetch" and root.proc == "client"
        names = {s.name for s in spans}
        assert "cluster.batch" in names  # the READ_BATCH group fetch
        assert "cluster.attempt" in names  # the per-replica retry path
        assert "wire.rpc" in names
        procs = {s.proc for s in spans if s.name == "server.handle"}
        assert "worker:1" in procs or "worker:0" in procs, (
            "no worker-side server.handle span joined the trace"
        )
        # the failover story is visible: more attempts than batches
        attempts = [s for s in spans if s.name == "cluster.attempt"]
        assert attempts, "scalar failover attempts missing from the tree"
