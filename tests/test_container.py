"""Tests for the encoded-sample container format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import container
from repro.core.encoding.delta import DeltaCodecConfig, decode_image, encode_image
from repro.core.encoding.lut import decode_sample, encode_sample


def _delta_channels(c=3, h=8, w=32, seed=0):
    rng = np.random.default_rng(seed)
    img = np.cumsum(rng.normal(0, 0.01, size=(c, h, w)), axis=2).astype(
        np.float32
    ) + 1.0
    return img, [encode_image(ch) for ch in img]


class TestRawContainer:
    def test_roundtrip(self):
        data = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        label = np.array([1, 2, 3], dtype=np.int64)
        codec, out, lab, extra = container.unpack_sample(
            container.pack_raw_sample(data, label)
        )
        assert codec == "raw"
        assert np.array_equal(out, data) and out.dtype == data.dtype
        assert np.array_equal(lab, label) and lab.dtype == label.dtype
        assert extra == {}

    def test_extra_metadata(self):
        blob = container.pack_raw_sample(
            np.zeros(3, np.float32), np.zeros(1), extra={"mean": [1.0, 2.0]}
        )
        _, _, _, extra = container.unpack_sample(blob)
        assert extra == {"mean": [1.0, 2.0]}

    def test_peek_codec(self):
        blob = container.pack_raw_sample(np.zeros(3, np.float32), np.zeros(1))
        assert container.peek_codec(blob) == "raw"


class TestDeltaContainer:
    def test_roundtrip_decodes_identically(self):
        _, channels = _delta_channels()
        label = np.ones((8, 32), dtype=np.int8)
        blob = container.pack_delta_sample(channels, label)
        codec, out_channels, lab, _ = container.unpack_sample(blob)
        assert codec == "delta"
        assert len(out_channels) == len(channels)
        for a, b in zip(channels, out_channels):
            assert np.array_equal(decode_image(a), decode_image(b))
        assert np.array_equal(lab, label)

    def test_config_roundtrips(self):
        img = np.cumsum(
            np.random.default_rng(1).normal(0, 0.01, (4, 64)), axis=1
        ).astype(np.float32)
        cfg = DeltaCodecConfig(block_size=16, rel_tol=0.02)
        blob = container.pack_delta_sample(
            [encode_image(img, cfg)], np.zeros(1)
        )
        _, chans, _, _ = container.unpack_sample(blob)
        assert chans[0].config == cfg

    def test_empty_channel_list_rejected(self):
        with pytest.raises(ValueError):
            container.pack_delta_sample([], np.zeros(1))

    def test_mismatched_shapes_rejected(self):
        _, c1 = _delta_channels(c=1, h=8, w=32)
        _, c2 = _delta_channels(c=1, h=8, w=16)
        with pytest.raises(ValueError):
            container.pack_delta_sample([c1[0], c2[0]], np.zeros(1))


class TestLutContainer:
    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 40, size=(4, 6, 6, 6)).astype(np.int16)
        label = rng.normal(size=4).astype(np.float32)
        blob = container.pack_lut_sample(encode_sample(data), label)
        codec, enc, lab, _ = container.unpack_sample(blob)
        assert codec == "lut"
        assert np.array_equal(decode_sample(enc), data)
        assert np.array_equal(lab, label)

    def test_multi_table_roundtrip(self):
        from repro.core.encoding.lut import LutCodecConfig

        rng = np.random.default_rng(3)
        data = rng.integers(0, 1000, size=(4, 8, 8, 8)).astype(np.int16)
        enc = encode_sample(data, LutCodecConfig(max_groups_per_table=150))
        blob = container.pack_lut_sample(enc, np.zeros(4, np.float32))
        _, enc2, _, _ = container.unpack_sample(blob)
        assert len(enc2.tables) == len(enc.tables)
        assert np.array_equal(decode_sample(enc2), data)


class TestLabelLosslessness:
    @given(
        st.lists(st.integers(-128, 127), min_size=1, max_size=64)
    )
    @settings(max_examples=40, deadline=None)
    def test_labels_bit_exact(self, values):
        label = np.array(values, dtype=np.int8)
        blob = container.pack_raw_sample(np.zeros(2, np.float32), label)
        _, _, lab, _ = container.unpack_sample(blob)
        assert np.array_equal(lab, label) and lab.dtype == label.dtype

    def test_float_labels_bit_exact(self):
        label = np.array([0.1, -1e-30, 3e30, np.pi], dtype=np.float32)
        blob = container.pack_raw_sample(np.zeros(2, np.float32), label)
        _, _, lab, _ = container.unpack_sample(blob)
        assert np.array_equal(lab, label)


class TestCorruption:
    def test_bad_magic(self):
        blob = container.pack_raw_sample(np.zeros(2, np.float32), np.zeros(1))
        with pytest.raises(ValueError, match="magic"):
            container.unpack_sample(b"XXXX" + blob[4:])

    def test_truncated(self):
        with pytest.raises(ValueError, match="truncated"):
            container.unpack_sample(b"RP")

    def test_bad_version(self):
        blob = bytearray(
            container.pack_raw_sample(np.zeros(2, np.float32), np.zeros(1))
        )
        blob[4] = 99
        with pytest.raises(ValueError, match="version"):
            container.unpack_sample(bytes(blob))


def _lut_blob(seed=2):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 40, size=(4, 6, 6, 6)).astype(np.int16)
    label = rng.normal(size=4).astype(np.float32)
    return container.pack_lut_sample(encode_sample(data), label), data, label


class TestVerifySample:
    def test_all_codecs_verify_clean(self):
        _, channels = _delta_channels()
        blobs = [
            container.pack_raw_sample(np.zeros(3, np.float32), np.zeros(1)),
            container.pack_delta_sample(channels, np.zeros(1)),
            _lut_blob()[0],
        ]
        for blob in blobs:
            assert container.verify_sample(blob) == 2

    def test_corrupt_raises_with_sample_id_and_section(self):
        blob = bytearray(
            container.pack_raw_sample(np.ones(8, np.float32), np.zeros(1))
        )
        blob[-1] ^= 0x01  # damage the label section
        with pytest.raises(container.CorruptSampleError) as ei:
            container.verify_sample(bytes(blob), sample_id="s42")
        assert ei.value.sample_id == "s42"
        assert ei.value.section is not None
        assert "s42" in str(ei.value)

    def test_corrupt_is_a_value_error(self):
        # pre-checksum error handling (except ValueError) keeps working
        assert issubclass(container.CorruptSampleError, ValueError)

    def test_junk_raises_structural_error(self):
        with pytest.raises(ValueError):
            container.verify_sample(b"RPRSjunkjunkjunkjunk")


class TestCorruptionDetectionAllCodecs:
    """Truncated and bit-flipped blobs are detected for RAW/DELTA/LUT —
    never decoded to garbage (satellite task)."""

    def _blobs(self):
        _, channels = _delta_channels()
        raw = container.pack_raw_sample(
            np.arange(24, dtype=np.float32), np.arange(3, dtype=np.int64)
        )
        delta = container.pack_delta_sample(channels, np.zeros(2, np.int8))
        lut = _lut_blob()[0]
        return {"raw": raw, "delta": delta, "lut": lut}

    def test_bitflip_every_codec(self):
        for name, blob in self._blobs().items():
            for frac in (0.3, 0.6, 0.95):
                buf = bytearray(blob)
                pos = 16 + int((len(buf) - 17) * frac)
                buf[pos] ^= 0x10
                with pytest.raises(container.CorruptSampleError):
                    container.unpack_sample(bytes(buf), sample_id=name)

    def test_truncation_every_codec(self):
        for name, blob in self._blobs().items():
            for cut in (len(blob) - 1, len(blob) - 8, len(blob) * 3 // 4):
                with pytest.raises(ValueError):
                    container.unpack_sample(blob[:cut], sample_id=name)

    def test_truncated_payload_names_the_damage(self):
        blob = self._blobs()["delta"]
        with pytest.raises(container.CorruptSampleError) as ei:
            container.verify_sample(blob[: len(blob) - 4], sample_id=9)
        assert ei.value.section == "payload" or ei.value.section.startswith(
            "section"
        )


class TestV1BackwardCompatibility:
    """Containers written before the checksum change must still unpack."""

    def test_raw_v1_roundtrip(self):
        data = np.arange(12, dtype=np.float32).reshape(3, 4)
        label = np.array([5, 6], dtype=np.int64)
        blob = container.pack_raw_sample(data, label, version=1)
        assert container.peek_version(blob) == 1
        codec, out, lab, _ = container.unpack_sample(blob)
        assert codec == "raw"
        assert np.array_equal(out, data)
        assert np.array_equal(lab, label)

    def test_delta_v1_roundtrip(self):
        img, channels = _delta_channels()
        blob = container.pack_delta_sample(channels, np.zeros(1), version=1)
        _, out_channels, _, _ = container.unpack_sample(blob)
        for a, b in zip(channels, out_channels):
            assert np.array_equal(decode_image(a), decode_image(b))

    def test_lut_v1_roundtrip(self):
        rng = np.random.default_rng(4)
        data = rng.integers(0, 40, size=(4, 6, 6, 6)).astype(np.int16)
        blob = container.pack_lut_sample(
            encode_sample(data), np.zeros(4, np.float32), version=1
        )
        _, enc, _, _ = container.unpack_sample(blob)
        assert np.array_equal(decode_sample(enc), data)

    def test_v1_has_no_checksums_and_verifies_structurally(self):
        blob = container.pack_raw_sample(
            np.zeros(4, np.float32), np.zeros(1), version=1
        )
        assert container.verify_sample(blob) == 1  # no CRCs → structural only

    def test_v1_prefix_is_the_legacy_12_bytes(self):
        import struct as _struct

        blob = container.pack_raw_sample(
            np.zeros(4, np.float32), np.zeros(1), version=1
        )
        magic, version, codec, pad, hdr_len = _struct.unpack_from(
            "<4sBBHI", blob
        )
        assert magic == b"RPRS" and version == 1 and pad == 0
        header = bytes(blob[12 : 12 + hdr_len]).decode()
        assert '"crcs"' not in header

    def test_v2_is_the_default(self):
        blob = container.pack_raw_sample(np.zeros(4, np.float32), np.zeros(1))
        assert container.peek_version(blob) == 2

    def test_unknown_write_version_rejected(self):
        with pytest.raises(ValueError):
            container.pack_raw_sample(
                np.zeros(4, np.float32), np.zeros(1), version=3
            )
