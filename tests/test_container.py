"""Tests for the encoded-sample container format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import container
from repro.core.encoding.delta import DeltaCodecConfig, decode_image, encode_image
from repro.core.encoding.lut import decode_sample, encode_sample


def _delta_channels(c=3, h=8, w=32, seed=0):
    rng = np.random.default_rng(seed)
    img = np.cumsum(rng.normal(0, 0.01, size=(c, h, w)), axis=2).astype(
        np.float32
    ) + 1.0
    return img, [encode_image(ch) for ch in img]


class TestRawContainer:
    def test_roundtrip(self):
        data = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        label = np.array([1, 2, 3], dtype=np.int64)
        codec, out, lab, extra = container.unpack_sample(
            container.pack_raw_sample(data, label)
        )
        assert codec == "raw"
        assert np.array_equal(out, data) and out.dtype == data.dtype
        assert np.array_equal(lab, label) and lab.dtype == label.dtype
        assert extra == {}

    def test_extra_metadata(self):
        blob = container.pack_raw_sample(
            np.zeros(3, np.float32), np.zeros(1), extra={"mean": [1.0, 2.0]}
        )
        _, _, _, extra = container.unpack_sample(blob)
        assert extra == {"mean": [1.0, 2.0]}

    def test_peek_codec(self):
        blob = container.pack_raw_sample(np.zeros(3, np.float32), np.zeros(1))
        assert container.peek_codec(blob) == "raw"


class TestDeltaContainer:
    def test_roundtrip_decodes_identically(self):
        _, channels = _delta_channels()
        label = np.ones((8, 32), dtype=np.int8)
        blob = container.pack_delta_sample(channels, label)
        codec, out_channels, lab, _ = container.unpack_sample(blob)
        assert codec == "delta"
        assert len(out_channels) == len(channels)
        for a, b in zip(channels, out_channels):
            assert np.array_equal(decode_image(a), decode_image(b))
        assert np.array_equal(lab, label)

    def test_config_roundtrips(self):
        img = np.cumsum(
            np.random.default_rng(1).normal(0, 0.01, (4, 64)), axis=1
        ).astype(np.float32)
        cfg = DeltaCodecConfig(block_size=16, rel_tol=0.02)
        blob = container.pack_delta_sample(
            [encode_image(img, cfg)], np.zeros(1)
        )
        _, chans, _, _ = container.unpack_sample(blob)
        assert chans[0].config == cfg

    def test_empty_channel_list_rejected(self):
        with pytest.raises(ValueError):
            container.pack_delta_sample([], np.zeros(1))

    def test_mismatched_shapes_rejected(self):
        _, c1 = _delta_channels(c=1, h=8, w=32)
        _, c2 = _delta_channels(c=1, h=8, w=16)
        with pytest.raises(ValueError):
            container.pack_delta_sample([c1[0], c2[0]], np.zeros(1))


class TestLutContainer:
    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 40, size=(4, 6, 6, 6)).astype(np.int16)
        label = rng.normal(size=4).astype(np.float32)
        blob = container.pack_lut_sample(encode_sample(data), label)
        codec, enc, lab, _ = container.unpack_sample(blob)
        assert codec == "lut"
        assert np.array_equal(decode_sample(enc), data)
        assert np.array_equal(lab, label)

    def test_multi_table_roundtrip(self):
        from repro.core.encoding.lut import LutCodecConfig

        rng = np.random.default_rng(3)
        data = rng.integers(0, 1000, size=(4, 8, 8, 8)).astype(np.int16)
        enc = encode_sample(data, LutCodecConfig(max_groups_per_table=150))
        blob = container.pack_lut_sample(enc, np.zeros(4, np.float32))
        _, enc2, _, _ = container.unpack_sample(blob)
        assert len(enc2.tables) == len(enc.tables)
        assert np.array_equal(decode_sample(enc2), data)


class TestLabelLosslessness:
    @given(
        st.lists(st.integers(-128, 127), min_size=1, max_size=64)
    )
    @settings(max_examples=40, deadline=None)
    def test_labels_bit_exact(self, values):
        label = np.array(values, dtype=np.int8)
        blob = container.pack_raw_sample(np.zeros(2, np.float32), label)
        _, _, lab, _ = container.unpack_sample(blob)
        assert np.array_equal(lab, label) and lab.dtype == label.dtype

    def test_float_labels_bit_exact(self):
        label = np.array([0.1, -1e-30, 3e30, np.pi], dtype=np.float32)
        blob = container.pack_raw_sample(np.zeros(2, np.float32), label)
        _, _, lab, _ = container.unpack_sample(blob)
        assert np.array_equal(lab, label)


class TestCorruption:
    def test_bad_magic(self):
        blob = container.pack_raw_sample(np.zeros(2, np.float32), np.zeros(1))
        with pytest.raises(ValueError, match="magic"):
            container.unpack_sample(b"XXXX" + blob[4:])

    def test_truncated(self):
        with pytest.raises(ValueError, match="truncated"):
            container.unpack_sample(b"RP")

    def test_bad_version(self):
        blob = bytearray(
            container.pack_raw_sample(np.zeros(2, np.float32), np.zeros(1))
        )
        blob[4] = 99
        with pytest.raises(ValueError, match="version"):
            container.unpack_sample(bytes(blob))
