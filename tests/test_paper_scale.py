"""Slow tests at the paper's true sample shapes.

Run with ``pytest -m slow``; the regular suite skips them.  These validate
that the code paths scale beyond the reduced test shapes and that the
compression claims hold where the paper measured them.
"""

import zlib

import numpy as np
import pytest

from repro.core.encoding import delta, lut
from repro.core.encoding.analysis import analyze_cosmoflow_sample
from repro.core.plugins.deepcam import _normalize, channel_stats
from repro.datasets import cosmoflow, deepcam

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def paper_cosmo():
    cfg = cosmoflow.CosmoflowConfig(
        grid=128, n_particles=2_000_000, n_clusters=48
    )
    return cosmoflow.generate_sample(cfg, seed=0)


class TestCosmoflowPaperScale:
    def test_lut_ratio_matches_paper(self, paper_cosmo):
        enc = lut.encode_sample(paper_cosmo.data)
        ratio = paper_cosmo.data.nbytes / enc.nbytes
        assert 3.3 < ratio < 4.7  # paper: "roughly 4x"

    def test_gzip_ratio_matches_paper(self, paper_cosmo):
        gz = len(zlib.compress(paper_cosmo.data.tobytes(), 6))
        ratio = paper_cosmo.data.nbytes / gz
        assert 4.0 < ratio < 7.0  # paper: "5x"

    def test_lossless_roundtrip(self, paper_cosmo):
        enc = lut.encode_sample(paper_cosmo.data)
        assert np.array_equal(lut.decode_sample(enc), paper_cosmo.data)

    def test_fig5_statistics_at_scale(self, paper_cosmo):
        st = analyze_cosmoflow_sample(paper_cosmo.data)
        assert st.keys_fit_16bit  # tens of thousands of groups max
        assert st.n_unique_groups < 0.01 * st.n_possible_permutations
        assert st.powerlaw_slope < -1.0

    def test_fused_log_at_scale(self, paper_cosmo):
        enc = lut.encode_sample(paper_cosmo.data)
        fused = lut.apply_to_tables(
            enc, lambda v: np.log1p(v.astype(np.float32)),
            out_dtype=np.float16,
        )
        got = lut.decode_sample(fused, dtype=np.float16)
        want = np.log1p(paper_cosmo.data.astype(np.float32)).astype(
            np.float16
        )
        assert np.array_equal(got, want)


class TestDeepcamPaperScale:
    @pytest.fixture(scope="class")
    def paper_channel(self):
        # paper shape with smoothing scaled to the resolution (the default
        # sigma is tuned for the reduced test shapes)
        cfg = deepcam.DeepcamConfig(
            height=768, width=1152, n_channels=4, smooth_x=40.0,
            smooth_y=8.0,
        )
        s = deepcam.generate_sample(cfg, seed=1)
        mean, std = channel_stats(s.data)
        return _normalize(s.data, mean, std)[0]

    def test_roundtrip_and_error_bound(self, paper_channel):
        enc = delta.encode_image(paper_channel)
        out = delta.decode_image(enc).astype(np.float32)
        scale = np.abs(paper_channel).max()
        sig = np.abs(paper_channel) > 0.01 * scale
        rel = np.abs(out - paper_channel)[sig] / np.abs(paper_channel)[sig]
        assert rel.max() <= 0.055

    def test_compression_at_scale(self, paper_channel):
        enc = delta.encode_image(paper_channel)
        assert paper_channel.nbytes / enc.nbytes > 1.8

    def test_line_independence_at_scale(self, paper_channel):
        enc = delta.encode_image(paper_channel)
        full = delta.decode_image(enc)
        for i in (0, 383, 767):
            assert np.array_equal(delta.decode_line(enc, i), full[i])

    def test_fast_encoder_identical_at_scale(self, paper_channel):
        from repro.core.encoding.delta_fast import encode_image_fast

        ref = delta.encode_image(paper_channel)
        fast = encode_image_fast(paper_channel)
        assert fast.payload == ref.payload
        assert np.array_equal(fast.line_modes, ref.line_modes)

    def test_full_16_channel_plugin_roundtrip(self):
        """The paper's complete sample shape through the GPU plugin."""
        from repro.accel import SimulatedGpu, V100
        from repro.core.plugins import DeepcamDeltaPlugin

        cfg = deepcam.DeepcamConfig(
            height=768, width=1152, n_channels=16, smooth_x=40.0,
            smooth_y=8.0,
        )
        s = deepcam.generate_sample(cfg, seed=2)
        plugin = DeepcamDeltaPlugin("gpu")
        blob = plugin.encode(s.data, s.label)
        assert len(blob) < s.data.nbytes  # compresses the 56.6 MB sample
        device = SimulatedGpu(spec=V100)
        tensor, label = plugin.decode(blob, device)
        assert tensor.shape == (16, 768, 1152)
        assert tensor.dtype == np.float16
        assert np.array_equal(label, s.label)
        # the warp model gives the optimistic analytic decode bound (tens
        # of microseconds); the DES uses the calibrated per-element cost
        # that matches the paper's ~4% overhead instead
        assert 1e-5 < device.busy_seconds < 0.1


class TestPaperProtocol:
    def test_fig7_sixteen_repetitions(self):
        """The paper's full MLPerf protocol: 16 repetitions per variant."""
        from repro.experiments import fig7

        res = fig7.run(repetitions=16, n_samples=8, epochs=3, grid=8,
                       base_filters=2, verbose=False)
        ratio = res.findings["decoded/base final loss ratio"]
        assert 0.7 < ratio < 1.3  # convergence preserved across 16 runs
        # variability is comparable between sample formats
        assert res.findings["final std decoded"] < (
            3 * res.findings["final std base"] + 1e-3
        )
