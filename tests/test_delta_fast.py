"""Equivalence tests: vectorized encoder vs reference encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.encoding.delta import DeltaCodecConfig, decode_image, encode_image
from repro.core.encoding.delta_fast import encode_image_fast
from repro.core.plugins.deepcam import _normalize, channel_stats
from repro.datasets import deepcam


def assert_identical(img, cfg=None):
    ref = encode_image(img, cfg)
    fast = encode_image_fast(img, cfg)
    assert np.array_equal(fast.line_modes, ref.line_modes)
    assert np.array_equal(fast.line_offsets, ref.line_offsets)
    assert fast.payload == ref.payload


class TestEquivalence:
    def test_smooth_image(self):
        rng = np.random.default_rng(0)
        img = np.cumsum(rng.normal(0, 0.01, (16, 200)), axis=1).astype(
            np.float32
        ) + 1.0
        assert_identical(img)

    def test_synthetic_deepcam_channels(self):
        cfg = deepcam.DeepcamConfig(height=32, width=48, n_channels=8)
        s = deepcam.generate_sample(cfg, seed=3)
        mean, std = channel_stats(s.data)
        norm = _normalize(s.data, mean, std)
        for ch in norm:
            assert_identical(ch)

    def test_constant_and_raw_lines(self):
        rng = np.random.default_rng(1)
        img = np.empty((6, 64), dtype=np.float32)
        img[0] = 5.0  # const
        img[1] = np.cumsum(rng.normal(0, 0.01, 64)) + 1  # delta
        img[2] = (rng.standard_normal(64)
                  * 10.0 ** rng.integers(-6, 6, 64).astype(float))  # raw
        img[3] = 0.0  # const zero
        img[4] = np.linspace(0, 1, 64)  # delta
        img[5] = rng.standard_normal(64)  # mixed
        assert_identical(img)

    def test_nan_inf_values(self):
        rng = np.random.default_rng(2)
        img = np.cumsum(rng.normal(0, 0.01, (4, 80)), axis=1).astype(
            np.float32
        ) + 1.0
        img[0, 10] = np.nan
        img[1, 20] = np.inf
        img[2, 30] = -np.inf
        assert_identical(img)

    def test_width_one_and_two(self):
        assert_identical(np.array([[1.5], [2.5]], dtype=np.float32))
        assert_identical(np.array([[1.5, 1.6], [0.0, 1e-8]],
                                  dtype=np.float32))

    def test_alternate_configs(self):
        rng = np.random.default_rng(4)
        img = np.cumsum(rng.normal(0, 0.05, (8, 100)), axis=1).astype(
            np.float32
        ) + 2.0
        for cfg in (
            DeltaCodecConfig(block_size=16),
            DeltaCodecConfig(mantissa_bits=2),
            DeltaCodecConfig(mantissa_bits=5),
            DeltaCodecConfig(quality_gate=False),
            DeltaCodecConfig(rel_tol=0.005),
            DeltaCodecConfig(max_literal_frac=0.1),
        ):
            assert_identical(img, cfg)

    def test_decodes_correctly(self):
        rng = np.random.default_rng(5)
        img = np.cumsum(rng.normal(0, 0.01, (8, 120)), axis=1).astype(
            np.float32
        ) + 1.0
        fast = encode_image_fast(img)
        out = decode_image(fast).astype(np.float32)
        sig = np.abs(img) > 0.01 * np.abs(img).max()
        rel = np.abs(out - img)[sig] / np.abs(img)[sig]
        assert rel.max() < 0.055

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            encode_image_fast(np.zeros(8, dtype=np.float32))

    @given(
        hnp.arrays(
            np.float32,
            shape=st.tuples(st.integers(1, 5), st.integers(1, 70)),
            elements=st.floats(min_value=-1e4, max_value=1e4,
                               allow_nan=False, width=32),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_equivalence_property(self, img):
        assert_identical(img)

    @given(
        hnp.arrays(
            np.float32,
            shape=st.tuples(st.integers(1, 3), st.integers(2, 50)),
            elements=st.floats(allow_nan=True, allow_infinity=True,
                               width=32),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_equivalence_property_with_nonfinite(self, img):
        assert_identical(img)
