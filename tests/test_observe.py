"""Tests for the observability plane: recorder, exporters, integrations."""

import json
import threading

import pytest

from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.observe import (
    TraceRecorder,
    build_trees,
    chrome_trace,
    current_trace,
    folded_stacks,
    load_spans,
    render_top,
    render_tree,
    span,
    span_from_json,
    span_to_json,
    stitch,
    top_spans,
    traced,
)
from repro.pipeline import DataLoader, ListSource
from repro.pipeline.executor import FailedItem
from repro.robust.quarantine import QuarantineLog
from repro.tune.controller import AdaptiveController, EpochObservation
from repro.tune.stats import StatsRegistry


@pytest.fixture(scope="module")
def deepcam_blobs():
    cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(5, cfg, seed=1)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


class TestRecorder:
    def test_trace_builds_a_span_tree(self):
        rec = TraceRecorder()
        with rec.trace("root", index=7):
            with span("child_a"):
                with span("grandchild"):
                    pass
            with span("child_b") as sp:
                sp.annotate(hit=True)
        spans = rec.spans()
        assert [s.name for s in spans] == [
            "grandchild", "child_a", "child_b", "root"
        ]
        root = spans[-1]
        assert root.meta == {"index": 7}
        by_name = {s.name: s for s in spans}
        assert by_name["child_a"].parent_id == root.span_id
        assert by_name["child_b"].parent_id == root.span_id
        assert by_name["grandchild"].parent_id == by_name["child_a"].span_id
        assert by_name["child_b"].meta == {"hit": True}
        assert all(s.trace_id == root.trace_id for s in spans)
        assert all(s.dur >= 0.0 for s in spans)

    def test_span_outside_a_trace_is_a_shared_noop(self):
        assert current_trace() is None
        ctx1, ctx2 = span("a"), span("b", k=1)
        assert ctx1 is ctx2  # no allocation on the disabled path
        with ctx1 as sp:
            sp.annotate(x=1)  # tolerated, dropped
            sp.name = "renamed"  # tier.hit -> tier.miss pattern
            assert sp.span_id == 0

    def test_head_sampling_is_seed_deterministic(self):
        def sampled_flags(seed):
            rec = TraceRecorder(sample_rate=0.5, seed=seed)
            flags = []
            for i in range(64):
                tr = rec.trace("t", index=i)
                with tr:
                    pass
                flags.append(tr.sampled)
            return flags

        a, b = sampled_flags(3), sampled_flags(3)
        assert a == b
        assert any(a) and not all(a)
        assert sampled_flags(4) != a

    def test_exemplars_survive_sample_rate_zero(self):
        rec = TraceRecorder(sample_rate=0.0, exemplars=2)
        for i in range(8):
            with rec.trace("t", index=i):
                pass
        assert rec.spans() == []  # nothing head-sampled into the ring
        ex = rec.exemplars()
        assert len(ex) == 2
        durs = [dur for dur, _, _ in ex]
        assert durs == sorted(durs, reverse=True)

    def test_ring_wraparound_keeps_newest(self):
        rec = TraceRecorder(capacity=4)
        for i in range(10):
            with rec.trace("t", index=i):
                pass
        spans = rec.spans()
        assert len(spans) == 4
        assert [s.meta["index"] for s in spans] == [6, 7, 8, 9]

    def test_ring_wraparound_multithreaded_writers(self):
        rec = TraceRecorder(capacity=32, exemplars=4)
        errors = []

        def worker(k):
            try:
                for i in range(50):
                    with rec.trace("t", thread=k, i=i):
                        with span("inner"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        spans = rec.spans()
        assert len(spans) == 32  # full ring, no holes
        assert all(s is not None for s in spans)
        assert len({s.span_id for s in spans}) == 32
        assert rec.summary()["traces"] == 200

    def test_thread_local_traces_do_not_interleave(self):
        rec = TraceRecorder()
        barrier = threading.Barrier(2)
        bad = []

        def worker(k):
            barrier.wait()
            for i in range(100):
                tr = rec.trace("t", thread=k)
                with tr:
                    with span("inner"):
                        if current_trace() is not tr:
                            bad.append(k)

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not bad
        for s in rec.spans():
            if s.name == "inner":
                assert s.tid != 0

    def test_distinct_procs_draw_distinct_ids(self):
        a = TraceRecorder(seed=0, proc="client")
        b = TraceRecorder(seed=0, proc="server")
        with a.trace("t"):
            pass
        with b.trace("t"):
            pass
        assert a.spans()[0].span_id != b.spans()[0].span_id

    def test_clear_resets_everything(self):
        rec = TraceRecorder()
        with rec.trace("t"):
            pass
        rec.clear()
        assert rec.spans() == []
        assert rec.exemplars() == []
        assert rec.summary()["traces"] == 0

    def test_exceptions_are_tagged_with_the_trace_id(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError) as info:
            with rec.trace("root"):
                with span("inner"):
                    raise ValueError("boom")
        assert info.value.trace_id == rec.spans()[-1].trace_id


class TestTracedHelper:
    def test_noop_without_recorder_or_trace(self):
        with traced(None, "x") as sp:
            assert sp.span_id == 0

    def test_root_trace_on_the_recorder(self):
        rec = TraceRecorder()
        with traced(rec, "publish", n=3):
            with span("flush"):
                pass
        assert [s.name for s in rec.spans()] == ["flush", "publish"]

    def test_child_span_inside_an_active_trace(self):
        rec = TraceRecorder()
        with rec.trace("root"):
            with traced(None, "publish"):
                pass
        assert [s.name for s in rec.spans()] == ["publish", "root"]


class TestSerialization:
    def test_span_json_round_trip(self):
        rec = TraceRecorder()
        with rec.trace("root", index=3):
            with span("child", hit=False):
                pass
        for s in rec.spans():
            back = span_from_json(json.loads(json.dumps(span_to_json(s))))
            assert (back.name, back.trace_id, back.span_id,
                    back.parent_id, back.proc) == (
                s.name, s.trace_id, s.span_id, s.parent_id, s.proc)
            assert back.t0 == s.t0 and back.dur == s.dur
            assert back.meta == s.meta

    def test_recorder_dump_and_load_spans(self, tmp_path):
        rec = TraceRecorder(exemplars=2)
        with rec.trace("root"):
            with span("child"):
                pass
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(rec.to_json()))
        spans = load_spans(path)
        assert {s.name for s in spans} == {"root", "child"}


class TestExporters:
    @pytest.fixture()
    def recorded(self):
        rec = TraceRecorder(proc="loader")
        for i in range(2):
            with rec.trace("loader.fetch", index=i):
                with span("read"):
                    pass
                with span("decode"):
                    pass
        return rec.spans()

    def test_build_trees_and_render(self, recorded):
        trees = build_trees(recorded)
        assert len(trees) == 2
        assert all(t["span"].name == "loader.fetch" for t in trees)
        assert all(len(t["children"]) == 2 for t in trees)
        text = render_tree(trees)
        assert "loader.fetch" in text and "  decode" in text

    def test_orphan_parents_root_their_own_tree(self, recorded):
        # drop the roots: children must still render as trees
        children = [s for s in recorded if s.name != "loader.fetch"]
        trees = build_trees(children)
        assert len(trees) == 4

    def test_chrome_trace_events(self, recorded):
        events = chrome_trace(recorded)
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1  # one proc
        assert meta[0]["args"]["name"] == "loader"
        assert len(complete) == len(recorded)
        for ev in complete:
            assert ev["ts"] > 0 and ev["dur"] >= 0
            int(ev["args"]["trace_id"], 16)

    def test_top_spans_table(self, recorded):
        rows = top_spans(recorded)
        assert rows[0]["name"] == "loader.fetch"  # most total time
        assert {r["name"] for r in rows} == {"loader.fetch", "read",
                                             "decode"}
        assert all(r["n"] == 2 for r in rows)
        text = render_top(rows)
        assert "loader.fetch" in text

    def test_folded_stacks_self_time(self, recorded):
        lines = folded_stacks(recorded)
        paths = {line.rsplit(" ", 1)[0] for line in lines}
        assert paths == {
            "loader;loader.fetch",
            "loader;loader.fetch;read",
            "loader;loader.fetch;decode",
        }
        for line in lines:
            assert int(line.rsplit(" ", 1)[1]) >= 0

    def test_stitch_dedups_by_span_id(self, recorded):
        doubled = stitch(recorded, recorded,
                         [span_to_json(s) for s in recorded])
        assert len(doubled) == len(recorded)


class TestLoaderIntegration:
    def test_traced_epoch_and_reconfigure_propagation(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        rec = TraceRecorder(proc="loader")
        loader = DataLoader(
            ListSource(blobs), plugin, batch_size=2, shuffle=False,
            graph=True, trace=rec,
        )
        plain = [b.tobytes() for b, _ in loader.batches(0)]
        names = {s.name for s in rec.spans()}
        assert "loader.fetch" in names and "decode" in names
        n_before = len(rec.spans())
        # reconfigure() swaps the executor but keeps the pipeline: the
        # recorder must survive and keep tracing
        loader.reconfigure(num_workers=2)
        assert loader.pipeline.trace is rec
        traced_rows = [b.tobytes() for b, _ in loader.batches(0)]
        assert len(rec.spans()) > n_before
        # tracing observes, never steers
        assert traced_rows == plain

    def test_untraced_loader_records_nothing(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        loader = DataLoader(
            ListSource(blobs), plugin, batch_size=2, shuffle=False,
            graph=True,
        )
        for _ in loader.batches(0):
            pass
        assert loader.trace is None


class TestFailureLinkage:
    def test_failed_item_inherits_the_exception_trace_id(self):
        rec = TraceRecorder()
        try:
            with rec.trace("loader.fetch", index=5):
                raise IOError("disk gone")
        except IOError as exc:
            item = FailedItem(index=5, error=exc)
        tid = rec.spans()[-1].trace_id
        assert item.trace_id == tid
        doc = item.to_json()
        assert int(doc["trace_id"], 16) == tid

    def test_failed_item_untraced_serializes_null(self):
        item = FailedItem(index=1, error=ValueError("x"))
        assert item.trace_id == 0
        assert item.to_json()["trace_id"] is None

    def test_quarantine_entry_round_trips_the_trace_id(self):
        rec = TraceRecorder()
        log = QuarantineLog()
        try:
            with rec.trace("loader.fetch"):
                raise ValueError("bad blob")
        except ValueError as exc:
            entry = log.record(3, 0, exc, "skipped")
        tid = rec.spans()[-1].trace_id
        assert entry.trace_id == tid
        dumped = log.to_json()
        assert int(dumped[0]["trace_id"], 16) == tid
        err = ValueError("untraced")
        assert log.record(4, 0, err, "skipped").to_json()["trace_id"] is None


class _StubLoader:
    def __init__(self):
        self.stats = StatsRegistry()
        self.calls = []

        class _Ex:
            num_workers = 2
            prefetch_depth = 2

        self.executor = _Ex()

    def reconfigure(self, num_workers=None, prefetch_depth=None):
        self.calls.append((num_workers, prefetch_depth))
        if num_workers is not None:
            self.executor.num_workers = num_workers
        if prefetch_depth is not None:
            self.executor.prefetch_depth = prefetch_depth


class TestControllerEvidence:
    def _starved(self):
        return EpochObservation(
            epoch_s=1.0, starvation=0.5, occupancy=0.9,
            num_workers=2, prefetch_depth=2,
        )

    def test_actions_cite_the_slowest_exemplar(self):
        rec = TraceRecorder()
        with rec.trace("loader.fetch", index=9):
            with span("decode"):
                pass
        tid = rec.spans()[-1].trace_id
        ctrl = AdaptiveController(_StubLoader(), trace=rec)
        action = ctrl.observe(self._starved())
        assert action.startswith("grow num_workers 2 -> 4")
        assert f"[exemplar {tid:x}:" in action
        assert "decode" in action

    def test_hold_and_traceless_actions_are_unchanged(self):
        ctrl = AdaptiveController(_StubLoader())
        action = ctrl.observe(self._starved())
        assert action == "grow num_workers 2 -> 4"
        rec = TraceRecorder()  # attached but empty: no citation
        ctrl2 = AdaptiveController(_StubLoader(), trace=rec)
        assert ctrl2.observe(self._starved()) == "grow num_workers 2 -> 4"


class TestCli:
    def _record_file(self, tmp_path, blobs):
        from repro.storage import tfrecord

        path = tmp_path / "data.rec"
        with tfrecord.TfRecordWriter(path) as w:
            for b in blobs:
                w.write(b)
        return path

    def test_trace_record_export_top(self, tmp_path, capsys, deepcam_blobs):
        from repro.cli import main

        _, blobs = deepcam_blobs
        rec_file = self._record_file(tmp_path, blobs)
        trace_file = tmp_path / "trace.json"
        assert main([
            "trace", "record", "--workload", "deepcam",
            "--input", str(rec_file), "--output", str(trace_file),
        ]) == 0
        doc = json.loads(trace_file.read_text())
        assert doc["schema"] == 1 and doc["spans"]
        capsys.readouterr()

        for fmt, needle in (
            ("tree", "loader.fetch"),
            ("folded", "loader;loader.fetch"),
        ):
            assert main([
                "trace", "export", "--trace", str(trace_file),
                "--format", fmt,
            ]) == 0
            assert needle in capsys.readouterr().out

        chrome_out = tmp_path / "chrome.json"
        assert main([
            "trace", "export", "--trace", str(trace_file),
            "--format", "chrome", "--output", str(chrome_out),
        ]) == 0
        events = json.loads(chrome_out.read_text())
        assert any(e["ph"] == "X" for e in events)
        capsys.readouterr()

        assert main([
            "trace", "top", "--trace", str(trace_file), "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert any(r["name"] == "loader.fetch" for r in rows)

    def test_stats_all_merged_document(self, tmp_path, capsys,
                                       deepcam_blobs):
        from repro.cli import main

        _, blobs = deepcam_blobs
        rec_file = self._record_file(tmp_path, blobs)
        assert main([
            "stats", "--input", str(rec_file), "--all",
            "--workload", "deepcam", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1
        # stable key schema: every subsystem key present, null when
        # not probed
        for key in ("loader", "pipeline", "tiers", "remote", "cluster",
                    "ingest"):
            assert key in doc
        assert doc["samples"]["n"] == len(blobs)
        assert doc["loader"]["loader.epoch"]["count"] == 1
        assert any(k.startswith("pipeline.") for k in doc["pipeline"])
        assert doc["remote"] is None and doc["cluster"] is None
        assert doc["tiers"] is None and doc["ingest"] is None
