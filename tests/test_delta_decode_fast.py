"""Equivalence tests: vectorized decoder vs reference decoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.encoding.delta import DeltaCodecConfig, decode_image, encode_image
from repro.core.encoding.delta_decode_fast import decode_image_fast
from repro.core.encoding.delta_fast import encode_image_fast
from repro.core.plugins.deepcam import _normalize, channel_stats
from repro.datasets import deepcam


def assert_decodes_identically(img, cfg=None):
    enc = encode_image(img, cfg)
    ref = decode_image(enc)
    fast = decode_image_fast(enc)
    # bit-identical including NaN positions
    assert np.array_equal(
        ref.view(np.uint16), fast.view(np.uint16)
    )


class TestEquivalence:
    def test_smooth_image(self):
        rng = np.random.default_rng(0)
        img = (np.cumsum(rng.normal(0, 0.01, (16, 200)), axis=1) + 1.0
               ).astype(np.float32)
        assert_decodes_identically(img)

    def test_mixed_modes(self):
        rng = np.random.default_rng(1)
        img = np.empty((6, 96), dtype=np.float32)
        img[0] = 5.0
        img[1] = np.cumsum(rng.normal(0, 0.01, 96)) + 1
        img[2] = (rng.standard_normal(96)
                  * 10.0 ** rng.integers(-6, 6, 96).astype(float))
        img[3] = 0.0
        img[4] = np.linspace(-1, 1, 96)
        img[5] = rng.standard_normal(96)
        assert_decodes_identically(img)

    def test_deepcam_channels(self):
        cfg = deepcam.DeepcamConfig(height=32, width=48, n_channels=8)
        s = deepcam.generate_sample(cfg, seed=7)
        mean, std = channel_stats(s.data)
        for ch in _normalize(s.data, mean, std):
            assert_decodes_identically(ch)

    def test_nonfinite_values(self):
        rng = np.random.default_rng(2)
        img = (np.cumsum(rng.normal(0, 0.01, (4, 80)), axis=1) + 1.0
               ).astype(np.float32)
        img[0, 10] = np.nan
        img[1, 20] = np.inf
        assert_decodes_identically(img)

    def test_width_edge_cases(self):
        assert_decodes_identically(np.array([[1.5], [2.5]], np.float32))
        assert_decodes_identically(
            np.array([[1.5, 1.6], [0.0, 1e-8]], np.float32)
        )

    def test_alternate_configs(self):
        rng = np.random.default_rng(3)
        img = (np.cumsum(rng.normal(0, 0.05, (8, 100)), axis=1) + 2.0
               ).astype(np.float32)
        for cfg in (
            DeltaCodecConfig(block_size=16),
            DeltaCodecConfig(mantissa_bits=2),
            DeltaCodecConfig(quality_gate=False),
            DeltaCodecConfig(max_literal_frac=0.1),
        ):
            assert_decodes_identically(img, cfg)

    def test_works_on_fast_encoder_output(self):
        rng = np.random.default_rng(4)
        img = (np.cumsum(rng.normal(0, 0.01, (10, 150)), axis=1) + 1.0
               ).astype(np.float32)
        enc = encode_image_fast(img)
        assert np.array_equal(
            decode_image(enc).view(np.uint16),
            decode_image_fast(enc).view(np.uint16),
        )

    def test_out_buffer(self):
        rng = np.random.default_rng(5)
        img = (np.cumsum(rng.normal(0, 0.01, (4, 64)), axis=1) + 1.0
               ).astype(np.float32)
        enc = encode_image(img)
        buf = np.empty((4, 64), dtype=np.float16)
        res = decode_image_fast(enc, out=buf)
        assert res is buf
        with pytest.raises(ValueError):
            decode_image_fast(enc, out=np.empty((4, 64), np.float32))

    @given(
        hnp.arrays(
            np.float32,
            shape=st.tuples(st.integers(1, 5), st.integers(1, 70)),
            elements=st.floats(min_value=-1e4, max_value=1e4,
                               allow_nan=False, width=32),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_equivalence_property(self, img):
        assert_decodes_identically(img)

    @given(
        hnp.arrays(
            np.float32,
            shape=st.tuples(st.integers(1, 3), st.integers(2, 50)),
            elements=st.floats(allow_nan=True, allow_infinity=True,
                               width=32),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_equivalence_property_nonfinite(self, img):
        assert_decodes_identically(img)
