"""Shared fixtures: small synthetic samples and plugin instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import cosmoflow, deepcam


@pytest.fixture(scope="session")
def deepcam_sample():
    """One small DeepCAM-like sample (8 channels, 32×48)."""
    cfg = deepcam.DeepcamConfig(height=32, width=48, n_channels=8)
    return deepcam.generate_sample(cfg, seed=101)


@pytest.fixture(scope="session")
def cosmo_sample():
    """One small CosmoFlow-like sample (4×16³)."""
    cfg = cosmoflow.CosmoflowConfig(grid=16, n_particles=30_000, n_clusters=10)
    return cosmoflow.generate_sample(cfg, seed=202)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)
