"""Tests for the preprocessing-graph IR, optimizer passes, compiler,
plan cost model, placement, and execution equivalence."""

import numpy as np
import pytest

from repro.accel.device import V100, SimulatedGpu
from repro.conformance import ConformanceError, check_graph_equivalence
from repro.core.plugins import (
    CosmoflowBaselinePlugin,
    CosmoflowLutPlugin,
    DeepcamDeltaPlugin,
    holdout_filter,
    log_transform,
)
from repro.datasets import cosmoflow, deepcam
from repro.graph import (
    DeadOpElimination,
    ElementwiseFusion,
    EpochConstantHoist,
    FilterReorder,
    OpAttrs,
    PassTrace,
    PipelineGraph,
    choose_placement,
    compile_graph,
    compose_steps,
    run_passes,
)
from repro.graph.compiler import EpochConstOp
from repro.pipeline import DataLoader, ListSource


@pytest.fixture(scope="module")
def cosmo_lut():
    cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=3000)
    ds = cosmoflow.generate_dataset(4, cfg, seed=5)
    plugin = CosmoflowLutPlugin("cpu")
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


@pytest.fixture(scope="module")
def deepcam_fix():
    cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
    ds = deepcam.generate_dataset(8, cfg, seed=6)
    plugin = DeepcamDeltaPlugin("cpu")
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


class TestIR:
    def test_builders_derive_field_sets(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        g = plugin.declare_preprocessing(ListSource(blobs))
        read, decode = g.node("read"), g.node("decode")
        assert read.reads == {"index"} and "blob" in read.writes
        assert decode.reads == {"blob"}
        assert {"tensor", "label"} <= decode.writes
        assert g.node("log1p").reads == {"tensor"}

    def test_edges_follow_field_conflicts(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        g = plugin.declare_preprocessing(ListSource(blobs))
        edges = set(g.edges())
        assert ("read", "decode") in edges  # blob flow dependence
        assert ("decode", "log1p") in edges  # tensor flow dependence
        assert ("log1p", "fp16") in edges  # tensor output dependence
        # an index-only filter has no edge from decode
        g.filter("f", lambda item: True, reads=("index",))
        assert ("decode", "f") not in set(g.edges())

    def test_duplicate_node_name_rejected(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        g = plugin.declare_preprocessing(ListSource(blobs))
        with pytest.raises(ValueError):
            g.elementwise("log1p", np.log1p)

    def test_second_read_or_decode_rejected(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        g = plugin.declare_preprocessing(ListSource(blobs))
        with pytest.raises(ValueError):
            g.read(ListSource(blobs), name="read2")
        with pytest.raises(ValueError):
            g.decode(plugin, name="decode2")

    def test_decode_requires_read(self, cosmo_lut):
        plugin, _ = cosmo_lut
        with pytest.raises(ValueError):
            PipelineGraph().decode(plugin)

    def test_elementwise_before_decode_rejected(self):
        g = PipelineGraph()
        g.elementwise("x", np.log1p)
        with pytest.raises(ValueError):
            g.validate()

    def test_unknown_field_rejected(self):
        g = PipelineGraph()
        with pytest.raises(ValueError):
            g.filter("f", lambda item: True, reads=("indexx",))

    def test_attrs_validation(self):
        with pytest.raises(ValueError):
            OpAttrs(selectivity=0.0)
        with pytest.raises(ValueError):
            OpAttrs(selectivity=1.5)
        with pytest.raises(ValueError):
            OpAttrs(cost_hint=-1)

    def test_to_json_and_describe(self, cosmo_lut):
        import json

        plugin, blobs = cosmo_lut
        g = plugin.declare_preprocessing(ListSource(blobs))
        doc = json.loads(json.dumps(g.to_json()))
        assert [n["name"] for n in doc["nodes"]] == [
            "read", "decode", "log1p", "fp16",
        ]
        assert doc["nodes"][3]["out_dtype"] == "float16"
        assert ["read", "decode"] in doc["edges"]
        assert "graph cosmoflow-lut-cpu" in g.describe()

    def test_copy_is_deep_at_node_level(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        g = plugin.declare_preprocessing(ListSource(blobs))
        g2 = g.copy()
        g2.node("decode").hoisted = True
        assert g.node("decode").hoisted is False


class TestPasses:
    def _graph(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        return plugin, plugin.declare_preprocessing(ListSource(blobs))

    def test_dead_op_removes_identity_elementwise(self, cosmo_lut):
        plugin, g = self._graph(cosmo_lut)
        g.elementwise("noop", None)  # no func, no cast
        out, trace = run_passes(g, passes=(DeadOpElimination(),))
        assert "noop" not in [n.name for n in out.nodes]
        assert any("identity" in d for d in trace.by_pass("dead-op-elimination"))

    def test_dead_op_removes_unread_epoch_const(self, cosmo_lut):
        plugin, g = self._graph(cosmo_lut)
        g.epoch_constant("aug_seed", lambda e: e * 7, meta_key="aug_seed")
        out, _ = run_passes(g, passes=(DeadOpElimination(),))
        assert "aug_seed" not in [n.name for n in out.nodes]

    def test_dead_op_keeps_epoch_const_read_downstream(self, cosmo_lut):
        plugin, g = self._graph(cosmo_lut)
        g.epoch_constant("aug_seed", lambda e: e * 7, meta_key="aug_seed")

        class MetaReader:
            name = "meta_reader"

            def __call__(self, item):
                return item

        g.op(MetaReader(), pure=True, reads=("meta", "tensor"),
             writes=("tensor",))
        out, _ = run_passes(g, passes=(DeadOpElimination(),))
        assert "aug_seed" in [n.name for n in out.nodes]

    def test_filter_reorder_hops_read_and_decode(self, deepcam_fix):
        plugin, blobs = deepcam_fix
        g = plugin.declare_preprocessing(ListSource(blobs), holdout=0.25)
        out, trace = run_passes(g, passes=(FilterReorder(),))
        assert [n.name for n in out.nodes][0] == "holdout"
        assert trace.by_pass("filter-reorder")

    def test_filter_reading_tensor_stays_after_decode(self, deepcam_fix):
        plugin, blobs = deepcam_fix
        g = plugin.declare_preprocessing(ListSource(blobs))
        g.filter("nonzero", lambda item: bool(np.any(item.tensor)),
                 reads=("tensor",))
        out, trace = run_passes(g, passes=(FilterReorder(),))
        names = [n.name for n in out.nodes]
        assert names.index("nonzero") > names.index("decode")
        assert not trace.by_pass("filter-reorder")

    def test_relative_filter_order_preserved(self, deepcam_fix):
        plugin, blobs = deepcam_fix
        g = plugin.declare_preprocessing(ListSource(blobs))
        g.filter("f1", lambda item: item.index % 2 == 0, reads=("index",))
        g.filter("f2", lambda item: item.index < 6, reads=("index",))
        out, _ = run_passes(g, passes=(FilterReorder(),))
        names = [n.name for n in out.nodes]
        assert names[:2] == ["f1", "f2"]

    def test_hoist_marks_epoch_constants(self, cosmo_lut):
        plugin, g = self._graph(cosmo_lut)
        g.epoch_constant("sched", lambda e: 0.5**e, meta_key="sched")
        out, trace = run_passes(g, passes=(EpochConstantHoist(),))
        assert out.node("sched").hoisted
        assert trace.by_pass("epoch-constant-hoist")

    def test_fusion_absorbs_elementwise_chain(self, cosmo_lut):
        plugin, g = self._graph(cosmo_lut)
        out, trace = run_passes(g, passes=(ElementwiseFusion(),))
        decode = out.node("decode")
        assert [s.name for s in decode.fused_steps] == ["log1p", "fp16"]
        assert [n.name for n in out.nodes] == ["read", "decode"]
        assert len(trace.by_pass("elementwise-fusion")) == 2

    def test_fusion_hops_label_transform(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        g = PipelineGraph("hop")
        g.read(ListSource(blobs))
        g.decode(plugin)
        g.elementwise("log1p", log_transform)
        g.label_transform("scale", lambda l: l * 2)
        g.cast("fp16", np.float16)
        out, _ = run_passes(g, passes=(ElementwiseFusion(),))
        decode = out.node("decode")
        assert [s.name for s in decode.fused_steps] == ["log1p", "fp16"]
        assert [n.name for n in out.nodes] == ["read", "decode", "scale"]

    def test_fusion_respects_unfusable_decode(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        g = PipelineGraph("nofuse")
        g.read(ListSource(blobs))
        g.decode(plugin, fusable=False)
        g.elementwise("log1p", log_transform)
        out, trace = run_passes(g, passes=(ElementwiseFusion(),))
        assert not out.node("decode").fused_steps
        assert "log1p" in [n.name for n in out.nodes]
        assert not trace.by_pass("elementwise-fusion")

    def test_impure_op_blocks_fusion_chain(self, cosmo_lut):
        plugin, blobs = cosmo_lut

        class Sideband:
            name = "sideband"

            def __call__(self, item):
                return item

        g = PipelineGraph("blocked")
        g.read(ListSource(blobs))
        g.decode(plugin)
        g.op(Sideband())  # impure, reads/writes everything
        g.elementwise("log1p", log_transform)
        out, _ = run_passes(g, passes=(ElementwiseFusion(),))
        assert not out.node("decode").fused_steps

    def test_passes_do_not_mutate_input_graph(self, cosmo_lut):
        plugin, g = self._graph(cosmo_lut)
        before = [n.name for n in g.nodes]
        run_passes(g)
        assert [n.name for n in g.nodes] == before
        assert not g.node("decode").fused_steps


class TestCompiler:
    def test_naive_plan_matches_declaration(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        g = plugin.declare_preprocessing(ListSource(blobs))
        plan = compile_graph(g, optimize=False)
        assert [op.name for op in plan.ops] == [
            "read", "decode", "log1p", "fp16",
        ]
        assert not plan.optimized and not plan.prefilters
        assert len(plan.trace) == 0

    def test_optimized_plan_fuses_and_prefilters(self, deepcam_fix):
        plugin, blobs = deepcam_fix
        g = plugin.declare_preprocessing(
            ListSource(blobs), cast=np.float32, holdout=0.25
        )
        plan = compile_graph(g)
        assert [op.name for op in plan.ops] == ["read", "decode"]
        assert [n.name for n in plan.prefilters] == ["holdout"]
        assert plan.trace.by_pass("prefilter")
        # source declaration is preserved unmodified
        assert [n.name for n in plan.source_graph.nodes] == [
            "read", "decode", "cast", "holdout",
        ]

    def test_naive_plan_keeps_filter_in_chain(self, deepcam_fix):
        plugin, blobs = deepcam_fix
        g = plugin.declare_preprocessing(ListSource(blobs), holdout=0.25)
        plan = compile_graph(g, optimize=False)
        assert not plan.prefilters
        assert "holdout" in [op.name for op in plan.ops]
        # the in-chain filter marks dropped items
        pipe = plan.pipeline()
        dropped = sum(
            bool(pipe.run(i).meta.get("dropped")) for i in range(len(blobs))
        )
        assert 0 < dropped < len(blobs)

    def test_filter_order_matches_admit(self, deepcam_fix):
        plugin, blobs = deepcam_fix
        g = plugin.declare_preprocessing(ListSource(blobs), holdout=0.5)
        plan = compile_graph(g)
        order = plan.filter_order(np.arange(len(blobs)), epoch=3)
        assert all(plan.admit(i, 3) for i in order.tolist())
        assert set(order.tolist()) == {
            i for i in range(len(blobs)) if plan.admit(i, 3)
        }
        # holdout reads only the index: same survivors every epoch
        assert np.array_equal(order, plan.filter_order(np.arange(len(blobs)), 9))

    def test_cost_terms_reflect_rewrites(self, deepcam_fix):
        plugin, blobs = deepcam_fix
        g = plugin.declare_preprocessing(
            ListSource(blobs), cast=np.float32, holdout=0.5
        )
        naive = compile_graph(g, optimize=False)
        opt = compile_graph(g)
        # naive: the post-decode filter doubles per-delivered reads/decodes
        assert naive.terms.read_inflation == pytest.approx(2.0)
        assert naive.terms.decode_inflation == pytest.approx(2.0)
        # optimized: prefilter inflates nothing, cast fused into decode
        assert opt.terms.read_inflation == 1.0
        assert opt.terms.decode_inflation == 1.0
        assert opt.terms.extra_passes < naive.terms.extra_passes

    def test_lut_fused_steps_cost_table_fraction(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        plan = compile_graph(plugin.declare_preprocessing(ListSource(blobs)))
        # fused log1p (1.0) + fp16 cast (0.5) scaled by the table
        # fraction, not 1.5 full passes over the volume
        assert plan.terms.extra_passes == pytest.approx(
            1.5 * CosmoflowLutPlugin._TABLE_FRACTION
        )

    def test_epoch_const_memoized_only_when_optimized(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        calls = []

        def schedule(epoch):
            calls.append(epoch)
            return 0.5**epoch

        class MetaReader:
            name = "meta_reader"

            def __call__(self, item):
                item.meta["seen"] = item.meta["sched"]
                return item

        def build():
            g = plugin.declare_preprocessing(ListSource(blobs))
            g.epoch_constant("sched", schedule, meta_key="sched")
            g.op(MetaReader(), pure=True, reads=("meta",), writes=("meta",))
            return g

        naive = compile_graph(build(), optimize=False)
        pipe = naive.pipeline()
        for i in range(4):
            pipe.run(i, epoch=0)
        assert len(calls) == 4  # per sample when unhoisted

        calls.clear()
        opt = compile_graph(build())
        pipe = opt.pipeline()
        for epoch in (0, 0, 1, 1, 1):
            item = pipe.run(0, epoch=epoch)
            assert item.meta["seen"] == 0.5**epoch
        assert calls == [0, 1]  # once per epoch
        const_op = next(o for o in opt.ops if isinstance(o, EpochConstOp))
        assert const_op.evaluations == 2

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            compile_graph(PipelineGraph())

    def test_compose_steps_matches_sequential_application(self):
        from repro.graph.ir import FusedStep

        composed = compose_steps((
            FusedStep("log1p", log_transform, None),
            FusedStep("fp16", None, np.dtype(np.float16)),
        ))
        x = np.arange(0, 50, dtype=np.int16)
        want = log_transform(x).astype(np.float16)
        assert composed(x).tobytes() == want.tobytes()


class TestExecutionEquivalence:
    def test_cosmoflow_graph_equivalence_with_legacy(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        report = check_graph_equivalence(
            plugin.declare_preprocessing(ListSource(blobs)),
            epochs=2, legacy_plugin=plugin,
        )
        report.raise_if_failed()
        assert report.impls == ["naive", "optimized", "legacy"]

    def test_cosmoflow_baseline_graph_equivalence(self):
        cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=3000)
        ds = cosmoflow.generate_dataset(3, cfg, seed=9)
        plugin = CosmoflowBaselinePlugin()
        blobs = [plugin.encode(s.data, s.label) for s in ds]
        check_graph_equivalence(
            plugin.declare_preprocessing(ListSource(blobs)),
            legacy_plugin=plugin,
        ).raise_if_failed()

    def test_cosmoflow_gpu_graph_equivalence(self):
        cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=3000)
        ds = cosmoflow.generate_dataset(3, cfg, seed=10)
        plugin = CosmoflowLutPlugin("gpu")
        blobs = [plugin.encode(s.data, s.label) for s in ds]
        check_graph_equivalence(
            plugin.declare_preprocessing(ListSource(blobs)),
            device=SimulatedGpu(spec=V100),
            legacy_plugin=plugin,
        ).raise_if_failed()

    def test_deepcam_filtered_graph_equivalence(self, deepcam_fix):
        plugin, blobs = deepcam_fix
        report = check_graph_equivalence(
            plugin.declare_preprocessing(
                ListSource(blobs), cast=np.float32, holdout=0.4
            ),
            epochs=2,
        )
        report.raise_if_failed()

    def test_harness_catches_non_elementwise_lie(self, cosmo_lut):
        """A stage falsely declared elementwise gets fused onto the LUT
        table, where it computes something different — the differential
        harness must catch the divergence, not paper over it."""
        plugin, blobs = cosmo_lut
        g = PipelineGraph("lie")
        g.read(ListSource(blobs))
        g.decode(plugin)
        # mean-centering is NOT elementwise: the mean over table values
        # differs from the mean over the expanded volume
        g.elementwise(
            "center",
            lambda t: (t - t.astype(np.float64).mean()).astype(np.float32),
        )
        report = check_graph_equivalence(g)
        assert not report.ok
        with pytest.raises(ConformanceError):
            report.raise_if_failed()

    def test_golden_lut_fused_vector_through_compiled_plan(self):
        """The compiled optimized plan reproduces the frozen lut-fused
        golden vector — the paper's hand-written log1p+FP16 table fusion,
        re-derived by the optimizer, against ground truth that predates
        the graph subsystem."""
        import json
        from pathlib import Path

        vec_dir = Path(__file__).parent / "vectors"
        case = next(
            c for c in json.loads((vec_dir / "manifest.json").read_text())["cases"]
            if c["name"] == "lut-fused"
        )
        blob = (vec_dir / case["blob"]).read_bytes()
        expected = np.load(vec_dir / case["expected"])

        plugin = CosmoflowLutPlugin("cpu")
        g = PipelineGraph("golden")
        g.read(ListSource([blob]))
        g.decode(plugin, fused_cost_hint=plugin._TABLE_FRACTION)
        g.elementwise("log1p", np.log1p)
        g.cast("fp16", np.float16)
        plan = compile_graph(g)
        assert plan.graph.node("decode").fused_steps  # fusion happened
        with np.errstate(invalid="ignore", divide="ignore"):
            item = plan.pipeline().run(0)
        assert item.tensor.dtype == np.dtype(case["expected_dtype"])
        assert item.tensor.shape == tuple(case["expected_shape"])
        assert item.tensor.tobytes() == expected.tobytes()


class TestLoaderGraph:
    def test_graph_loader_bit_identical_to_legacy(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        legacy = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=4)
        for optimize in (False, True):
            dl = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=4,
                            graph=True, optimize_graph=optimize)
            for (a, la), (b, lb) in zip(legacy.batches(1), dl.batches(1)):
                assert a.tobytes() == b.tobytes()
                assert la.tobytes() == lb.tobytes()

    def test_graph_loader_threaded_matches_sync(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        sync = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=2,
                          graph=True)
        thr = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=2,
                         graph=True, num_workers=3, prefetch_depth=2)
        for (a, _), (b, _) in zip(sync.batches(0), thr.batches(0)):
            assert a.tobytes() == b.tobytes()

    def test_explicit_graph_accepted(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        g = plugin.declare_preprocessing(ListSource(blobs))
        dl = DataLoader(ListSource(blobs), plugin, batch_size=4, graph=g)
        (batch, _), = list(dl.batches(0))
        assert batch.dtype == np.float16
        assert dl.plan is not None and dl.plan.optimized

    def test_prefilter_shrinks_epoch_order(self, deepcam_fix):
        plugin, blobs = deepcam_fix
        g = plugin.declare_preprocessing(ListSource(blobs), holdout=0.5)
        dl = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=0,
                        graph=g)
        order = dl.epoch_order(0)
        assert 0 < len(order) < len(blobs)
        n_samples = sum(b.shape[0] for b, _ in dl.batches(0))
        assert n_samples == len(order)
        # held-out samples were never read: executor items == survivors
        assert dl.stats.snapshot()["executor.items"][0] == len(order)
        assert "loader.filtered" not in dl.stats.snapshot()

    def test_in_chain_filter_counts_filtered(self, deepcam_fix):
        plugin, blobs = deepcam_fix
        g = plugin.declare_preprocessing(ListSource(blobs), holdout=0.5)
        dl = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=0,
                        graph=g, optimize_graph=False)
        n_samples = sum(b.shape[0] for b, _ in dl.batches(0))
        snap = dl.stats.snapshot()
        assert snap["loader.filtered"][0] == len(blobs) - n_samples
        assert snap["loader.filtered"][0] > 0
        assert len(dl.quarantine) == 0  # policy, not failure

    def test_naive_and_optimized_loaders_agree_on_survivors(self, deepcam_fix):
        plugin, blobs = deepcam_fix

        def batches(optimize):
            g = plugin.declare_preprocessing(ListSource(blobs), holdout=0.4)
            dl = DataLoader(ListSource(blobs), plugin, batch_size=1, seed=8,
                            graph=g, optimize_graph=optimize)
            return [(b.tobytes(), l.tobytes()) for b, l in dl.batches(2)]

        assert batches(True) == batches(False)

    def test_graph_loader_with_extra_ops_and_policy(self, deepcam_fix):
        from repro.pipeline.ops import LabelTransformOp

        plugin, blobs = deepcam_fix
        bad = list(blobs)
        bad[3] = b"corrupt"
        dl = DataLoader(
            ListSource(bad), plugin, batch_size=1, shuffle=False,
            graph=plugin.declare_preprocessing(ListSource(bad)),
            bad_sample_policy="skip",
            extra_ops=[LabelTransformOp(lambda l: l.astype(np.float32))],
        )
        got = list(dl.batches(0))
        assert len(got) == len(blobs) - 1
        assert dl.quarantine.ids() == [3]
        assert got[0][1].dtype == np.float32


class TestCostModelAndTune:
    def _space(self):
        from repro.tune.search import resolve_machine, workload_space

        return resolve_machine("summit"), workload_space("cosmoflow")

    def _plans(self, cosmo_lut):
        plugin, blobs = cosmo_lut
        g = plugin.declare_preprocessing(ListSource(blobs))
        return {
            "naive": compile_graph(g, optimize=False),
            "optimized": compile_graph(g),
        }

    def test_plan_sample_cost_reshapes_terms(self, deepcam_fix):
        from repro.core.plugins.base import SampleCost

        plugin, blobs = deepcam_fix
        g = plugin.declare_preprocessing(ListSource(blobs), holdout=0.5)
        naive = compile_graph(g, optimize=False)
        opt = compile_graph(g)
        base = SampleCost(stored_bytes=1000, h2d_bytes=500,
                          decoded_bytes=500, cpu_preprocess_elems=100)
        nc = naive.sample_cost(base, sample_elems=1000)
        oc = opt.sample_cost(base, sample_elems=1000)
        assert nc.stored_bytes == 2000  # late filter: 2x reads
        assert oc.stored_bytes == 1000  # prefilter: no inflation
        assert nc.cpu_preprocess_elems > oc.cpu_preprocess_elems

    def test_predict_throughput_ranks_optimized_above_naive(self, cosmo_lut):
        from repro.tune.costmodel import predict_throughput

        machine, space = self._space()
        plans = self._plans(cosmo_lut)
        cfg = space.config("plugin", staged=True, num_workers=4,
                          prefetch_depth=4, cache_fraction=0.3)
        cost = space.costs["plugin"]
        naive = predict_throughput(machine, space.workload, cost, cfg, 2048,
                                   plan=plans["naive"])
        opt = predict_throughput(machine, space.workload, cost, cfg, 2048,
                                 plan=plans["optimized"])
        bare = predict_throughput(machine, space.workload, cost, cfg, 2048)
        assert opt.steady_samples_per_s >= naive.steady_samples_per_s
        # the optimized plan's only residual is the tiny table-fraction pass
        assert opt.steady_samples_per_s <= bare.steady_samples_per_s

    def test_tune_picks_best_plan(self, cosmo_lut):
        from repro.tune.search import tune

        machine, space = self._space()
        result = tune(machine, space, samples_per_gpu=256, seed=1,
                      validate=False, plans=self._plans(cosmo_lut))
        assert result.best.plan == "optimized"
        assert {t.plan for t in result.trials} == {"naive", "optimized"}
        assert result.to_json()["best"]["plan"] == "optimized"

    def test_tune_without_plans_unchanged(self):
        from repro.tune.search import tune

        machine, space = self._space()
        result = tune(machine, space, samples_per_gpu=256, seed=1,
                      validate=False)
        assert result.best.plan is None

    def test_choose_placement_annotates_decode(self, cosmo_lut):
        from repro.tune.search import workload_space

        machine, _ = self._space()
        space = workload_space("deepcam")
        plugin, blobs = cosmo_lut
        plan = self._plans(cosmo_lut)["optimized"]
        decision = choose_placement(
            plan, machine, space.workload,
            {"cpu": space.costs["cpu"], "gpu": space.costs["gpu"]},
            staged=True, num_workers=4, prefetch_depth=4,
            cache_fraction=0.3,
        )
        assert decision.placement in ("cpu", "gpu")
        assert plan.graph.node("decode").device == decision.placement
        assert len(decision.ranked) == 2
        assert (decision.ranked[0][1].steady_samples_per_s
                >= decision.ranked[1][1].steady_samples_per_s)
        doc = decision.to_json()
        assert doc["placement"] == decision.placement

    def test_choose_placement_validates_keys(self, cosmo_lut):
        machine, space = self._space()
        plan = self._plans(cosmo_lut)["optimized"]
        with pytest.raises(ValueError):
            choose_placement(plan, machine, space.workload, {})
        with pytest.raises(ValueError):
            choose_placement(
                plan, machine, space.workload,
                {"tpu": space.costs["plugin"]},
            )
