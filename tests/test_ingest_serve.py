"""Serving and cluster integration of ``repro.ingest``.

The wire-level half of the ingestion acceptance criteria: the
``MANIFEST`` / ``EPOCH_MANIFEST`` ops, a ``DataServer`` over a live
ingest directory handing out manifest-pinned epochs that stay
bit-reproducible while ingestion appends concurrently, and the cluster
growth path (heartbeats announcing a grown dataset re-shard future
epochs without touching the registration conflict check).
"""

import threading

import numpy as np
import pytest

from repro.cluster import ClusterWorker, Dispatcher, Membership, dispatcher_call
from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.ingest import (
    IngestWriter,
    LiveIngestSource,
    ManifestEpochCoordinator,
    ManifestSource,
    ManifestStore,
)
from repro.pipeline import DataLoader
from repro.serve import DataServer, RemoteSource, protocol
from repro.serve.protocol import (
    ProtocolError,
    pack_manifest_shard,
    unpack_manifest_shard,
)


def blob(i: int) -> bytes:
    return bytes([i % 251]) * (30 + i)


@pytest.fixture()
def ingest_dir(tmp_path):
    writer = IngestWriter(tmp_path, fingerprint={"t": 1}, fsync=False)
    for i in range(8):
        writer.append(blob(i))
    writer.publish()
    yield tmp_path, writer
    writer.close()


@pytest.fixture()
def server(ingest_dir):
    root, _ = ingest_dir
    store = ManifestStore(root)
    live = LiveIngestSource(root)
    with DataServer(
        live,
        coordinator=ManifestEpochCoordinator(store, world_size=2, seed=0),
        manifest_store=store,
    ) as srv:
        yield srv
    live.close()


class TestManifestFrames:
    def test_pack_unpack_round_trip(self):
        indices = np.array([5, 1, 3], dtype=np.int64)
        body = pack_manifest_shard("ab" * 32, 7, indices)
        mid, n, out = unpack_manifest_shard(body)
        assert (mid, n) == ("ab" * 32, 7)
        assert out.tolist() == [5, 1, 3]

    def test_empty_shard_round_trips(self):
        mid, n, out = unpack_manifest_shard(
            pack_manifest_shard("x", 0, np.array([], dtype=np.int64))
        )
        assert (mid, n, out.tolist()) == ("x", 0, [])

    def test_truncated_body_rejected(self):
        body = pack_manifest_shard("abcd", 4, np.arange(4))
        for cut in (1, 5, len(body) - 3):
            with pytest.raises(ProtocolError):
                unpack_manifest_shard(body[:cut])

    def test_id_length_bounds(self):
        with pytest.raises(ValueError):
            pack_manifest_shard("", 0, np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            pack_manifest_shard("x" * 70_000, 0, np.array([], dtype=np.int64))


class TestServerOps:
    def test_manifest_op_returns_latest_and_by_id(self, ingest_dir, server):
        root, writer = ingest_dir
        with RemoteSource(*server.address) as src:
            latest = src.manifest()
            assert latest["manifest_id"] == ManifestStore(
                root
            ).latest().manifest_id
            assert latest["shards"][0]["n_samples"] == 8
            by_id = src.manifest(latest["manifest_id"])
            assert by_id == latest

    def test_manifest_op_without_store_errors(self, ingest_dir):
        root, _ = ingest_dir
        live = LiveIngestSource(root)
        with DataServer(live) as srv, RemoteSource(*srv.address) as src:
            with pytest.raises(ValueError, match="manifest"):
                src.manifest()
        live.close()

    def test_epoch_manifest_pins_both_ranks(self, ingest_dir, server):
        root, writer = ingest_dir
        with RemoteSource(*server.address) as a, RemoteSource(
            *server.address
        ) as b:
            mid_a, n_a, shard_a = a.epoch_shard_manifest(0, 0)
            # growth lands between the two ranks' requests...
            for i in range(8, 14):
                writer.append(blob(i))
            writer.publish()
            mid_b, n_b, shard_b = b.epoch_shard_manifest(1, 0)
            # ...but epoch 0 was already pinned: both ranks agree
            assert mid_a == mid_b and n_a == n_b == 8
            assert sorted(np.concatenate([shard_a, shard_b])) == list(range(8))
            # the next epoch adopts the grown snapshot
            mid2, n2, _ = a.epoch_shard_manifest(0, 1)
            assert n2 == 14 and mid2 != mid_a

    def test_epoch_manifest_requires_manifest_coordinator(self, ingest_dir):
        root, _ = ingest_dir
        live = LiveIngestSource(root)
        with DataServer(live) as srv, RemoteSource(*srv.address) as src:
            with pytest.raises(ValueError, match="EPOCH"):
                src.epoch_shard_manifest(0, 0)
        live.close()

    def test_client_length_grows_with_pin(self, ingest_dir, server):
        root, writer = ingest_dir
        with RemoteSource(*server.address) as src:
            assert len(src) == 8
            for i in range(8, 11):
                writer.append(blob(i))
            writer.publish()
            _, n, shard = src.epoch_shard_manifest(0, 1)
            assert n == 11 and len(src) == 11
            # reads past the old length now succeed over the wire
            assert src.read(10) == blob(10)

    def test_info_and_health_report_manifests(self, ingest_dir, server):
        with RemoteSource(*server.address) as src:
            src.epoch_shard_manifest(0, 0)
            info = src.info()
            assert info["manifests"] is True
            assert info["latest_manifest"]
            health = src.health()
            assert health["pinned_manifests"] == {
                "0": info["latest_manifest"]
            }


class TestConcurrentIngestTraining:
    def test_epochs_bit_reproducible_under_concurrent_ingest(self, tmp_path):
        root = tmp_path / "ingest"
        cfg = deepcam.DeepcamConfig(height=8, width=12, n_channels=2)
        plugin = DeepcamDeltaPlugin("cpu")
        samples = deepcam.generate_dataset(20, cfg, seed=9)
        writer = IngestWriter(root, fingerprint={"t": 2}, fsync=False)
        for s in samples[:8]:
            writer.append_sample(plugin, s.data, s.label)
        writer.publish()

        store = ManifestStore(root)
        live = LiveIngestSource(root)
        stop = threading.Event()

        def ingest_loop():
            k = 8
            while not stop.wait(0.005) and k < len(samples):
                writer.append_sample(plugin, samples[k].data, samples[k].label)
                k += 1
                if k % 4 == 0:
                    writer.publish()

        with DataServer(
            live,
            coordinator=ManifestEpochCoordinator(store, world_size=1, seed=0),
            manifest_store=store,
        ) as srv:
            thread = threading.Thread(target=ingest_loop, daemon=True)
            thread.start()
            try:
                remote = RemoteSource(*srv.address)
                loader = DataLoader(
                    remote, plugin, batch_size=4,
                    order_fn=remote.manifest_order_fn(0),
                )
                epochs, pins = [], []
                for e in range(3):
                    epochs.append(
                        [b.tobytes() for b, _ in loader.batches(e)]
                    )
                    pins.append(remote.epoch_shard_manifest(0, e)[0])
                remote.close()
            finally:
                stop.set()
                thread.join(timeout=5.0)
        live.close()

        # replay every epoch cold from its manifest id alone
        from repro.serve import ShardPlan

        for e, (lived, mid) in enumerate(zip(epochs, pins)):
            manifest = store.load(mid)
            plan = ShardPlan(manifest.n_samples, world_size=1, seed=0)
            with ManifestSource(root, manifest) as src:
                replayed = DataLoader(
                    src, plugin, batch_size=4,
                    order_fn=lambda _e: plan.shard(0, e),
                )
                assert [
                    b.tobytes() for b, _ in replayed.batches(e)
                ] == lived


class TestClusterGrowth:
    def test_heartbeat_growth_bumps_version_and_resize_event(self):
        m = Membership(lease_s=2.0)
        m.register("h", 9000, 64)
        v = m.version
        assert m.heartbeat("w0", n_samples=64) is True  # no growth: no bump
        assert m.version == v
        assert m.heartbeat("w0", n_samples=80) is True
        assert m.version == v + 1
        assert m.n_samples() == 80
        assert any(e.kind == "resize" for e in m.events)
        # shrink announcements are ignored (prefix stability: committed
        # samples never disappear)
        m.heartbeat("w0", n_samples=10)
        assert m.n_samples() == 80

    def test_cluster_epochs_reshard_after_worker_growth(self, tmp_path):
        writer = IngestWriter(tmp_path, fingerprint={}, fsync=False)
        for i in range(8):
            writer.append(blob(i))
        writer.publish()
        live = LiveIngestSource(tmp_path)
        with Dispatcher(lease_s=1.0, world_size=2, seed=0) as dispatcher:
            worker = ClusterWorker(
                live, dispatcher=dispatcher.address
            ).start()
            try:
                host, port = dispatcher.address
                shard0 = [
                    protocol.unpack_indices(_epoch(host, port, r, 0))
                    for r in range(2)
                ]
                assert sorted(np.concatenate(shard0)) == list(range(8))
                for i in range(8, 13):
                    writer.append(blob(i))
                writer.publish()
                live.refresh()
                worker._heartbeat_once()  # announces the grown size
                shard1 = [
                    protocol.unpack_indices(_epoch(host, port, r, 1))
                    for r in range(2)
                ]
                assert sorted(np.concatenate(shard1)) == list(range(13))
                # epoch 0 is cached: still the original 8
                again = protocol.unpack_indices(_epoch(host, port, 0, 0))
                assert again.tolist() == shard0[0].tolist()
            finally:
                worker.close(drain=False, timeout_s=2.0)
        live.close()
        writer.close()


def _epoch(host, port, rank, epoch):
    import socket

    with socket.create_connection((host, port), timeout=5.0) as sock:
        sock.sendall(
            protocol.pack_frame(
                protocol.OP_EPOCH, protocol.pack_epoch(rank, epoch)
            )
        )
        kind, payload = protocol.recv_frame(sock, frame_timeout_s=5.0)
    assert kind == protocol.ST_OK
    return payload
