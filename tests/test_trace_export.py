"""Tests for trace export/import round-trips."""

import csv

import pytest

from repro.simulate.trace import Trace


@pytest.fixture()
def trace():
    t = Trace()
    t.record("gpu_compute", 0, 0.0, 1.5)
    t.record("cpu_preprocess", 1, 0.25, 0.75)
    t.record("h2d_copy", 0, 1.5, 1.6)
    return t


class TestExport:
    def test_json_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        assert trace.to_json(path) == 3
        back = Trace.from_json(path)
        assert back.breakdown() == trace.breakdown()
        assert len(back.intervals) == 3
        assert back.intervals[0].activity == "gpu_compute"

    def test_csv_export(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        assert trace.to_csv(path) == 3
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["activity", "gpu", "start", "end"]
        assert len(rows) == 4
        assert rows[1][0] == "gpu_compute"

    def test_empty_trace(self, tmp_path):
        t = Trace()
        assert t.to_json(tmp_path / "e.json") == 0
        assert len(Trace.from_json(tmp_path / "e.json").intervals) == 0

    def test_from_json_validates(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('[{"activity": "nap", "gpu": 0, "start": 0, "end": 1}]')
        with pytest.raises(ValueError):
            Trace.from_json(path)

    def test_simulation_trace_exports(self, tmp_path):
        from repro.core.plugins.base import SampleCost
        from repro.simulate import CORI_V100, TrainSimConfig, WorkloadSpec, simulate_node

        wl = WorkloadSpec(name="t", sample_elems=1000,
                          flops_per_sample=1e9, model_grad_bytes=10**6)
        cost = SampleCost(stored_bytes=10**6, h2d_bytes=10**6,
                          decoded_bytes=10**6, cpu_preprocess_elems=1000)
        r = simulate_node(TrainSimConfig(
            machine=CORI_V100, workload=wl, cost=cost, plugin_name="t",
            placement="cpu", samples_per_gpu=8, batch_size=2, staged=True,
            epochs=1, sim_samples_cap=8,
        ))
        n = r.trace.to_json(tmp_path / "sim.json")
        assert n == len(r.trace.intervals) > 0
