"""End-to-end cluster failover: live sockets, real workers, real deaths.

The degradation ladder under test, from least to most broken:

1. a healthy cluster serves bit-identical bytes to a direct source;
2. one dead replica → transparent failover, zero client-visible errors;
3. one shedding replica → ``BUSY`` re-routes, zero client-visible errors;
4. *every* replica of a range gone → a retryable ``NoReplicaError``
   tagged ``degraded`` that ``RetryingSource`` retries and, if the
   outage persists, the loader's ``bad_sample_policy`` absorbs —
   the epoch completes short rather than collapsing.
"""

import numpy as np
import pytest

from repro.cluster import ClusterSource, ClusterWorker, Dispatcher, NoReplicaError
from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.pipeline import DataLoader, ListSource
from repro.robust import RetryingSource, RetryPolicy
from repro.serve import protocol
from repro.serve.admission import AdmissionController, AdmissionPolicy

N = 24


@pytest.fixture(scope="module")
def blobs():
    cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(N, cfg, seed=3)
    return [plugin.encode(s.data, s.label) for s in ds]


@pytest.fixture()
def cluster(blobs):
    """Dispatcher + 3 workers, replication 2; yields all the handles."""
    dispatcher = Dispatcher(lease_s=0.5, replication=2, n_buckets=8).start()
    workers = [
        ClusterWorker(ListSource(blobs), dispatcher=dispatcher.address).start()
        for _ in range(3)
    ]
    try:
        yield dispatcher, workers
    finally:
        for w in workers:
            w.close(drain=False, timeout_s=2.0)
        dispatcher.close(drain=False, timeout_s=2.0)


def _counter(source, name):
    return dict(source.stats.snapshot()).get(name, (0, 0.0))[0]


class TestHealthyCluster:
    def test_reads_match_the_direct_source(self, blobs, cluster):
        dispatcher, _ = cluster
        with ClusterSource(dispatcher.address, timeout_s=2.0) as src:
            assert len(src) == N
            for i in range(N):
                assert src.read(i) == blobs[i]
            assert _counter(src, "cluster.reads") == N
            assert _counter(src, "cluster.failovers") == 0

    def test_epoch_shard_round_trip(self, cluster):
        from repro.serve import ShardPlan

        dispatcher, _ = cluster
        with ClusterSource(dispatcher.address, timeout_s=2.0) as src:
            shard = src.epoch_shard(0, 2)
            assert np.array_equal(shard, ShardPlan(N, seed=0).shard(0, 2))

    def test_distinct_salts_rotate_the_primary(self, cluster):
        """Dense client seeds split a range's load across its replicas."""
        dispatcher, _ = cluster
        with ClusterSource(dispatcher.address, timeout_s=2.0, seed=0) as a, \
                ClusterSource(dispatcher.address, timeout_s=2.0, seed=1) as b:
            table = a._refresh_table()
            index = 0
            ra = table.replicas(index)[(index + a._salt) % 2]
            rb = table.replicas(index)[(index + b._salt) % 2]
            assert ra != rb


class TestWorkerDeath:
    def test_failover_serves_identical_bytes(self, blobs, cluster):
        dispatcher, workers = cluster
        with ClusterSource(dispatcher.address, timeout_s=2.0) as src:
            before = [src.read(i) for i in range(N)]
            workers[0].close(drain=False, timeout_s=2.0)  # hard kill
            after = [src.read(i) for i in range(N)]
            assert after == before == blobs
            assert _counter(src, "cluster.failovers") > 0
            assert _counter(src, "cluster.no_replica") == 0

    def test_routing_version_bump_is_picked_up(self, cluster):
        import time

        dispatcher, workers = cluster
        with ClusterSource(dispatcher.address, timeout_s=2.0) as src:
            v0 = src.routing_version
            workers[1].close(drain=False, timeout_s=2.0)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if not dispatcher.membership.sweep():
                    time.sleep(0.05)
                src._refresh_table(force=True)
                if src.routing_version > v0:
                    break
            assert src.routing_version > v0
            table = src._refresh_table(force=True)
            dead_id = workers[1].worker_id
            assert dead_id not in table.workers
            assert all(dead_id not in bs for bs in table.buckets)

    def test_all_replicas_dead_degrades_not_crashes(self, blobs):
        """The bottom of the ladder: retryable error → loader skip."""
        dispatcher = Dispatcher(lease_s=0.5, replication=2, n_buckets=4).start()
        workers = [
            ClusterWorker(
                ListSource(blobs), dispatcher=dispatcher.address
            ).start()
            for _ in range(2)
        ]
        plugin = DeepcamDeltaPlugin("cpu")
        try:
            src = ClusterSource(
                dispatcher.address, timeout_s=1.0, suspect_backoff_s=0.05
            )
            src.read(0)  # cluster is healthy first
            for w in workers:
                w.close(drain=False, timeout_s=2.0)
            with pytest.raises(NoReplicaError) as err:
                src.read(0)
            assert err.value.degraded is True
            assert err.value.retry_after_s > 0
            assert isinstance(err.value, OSError)  # retryable class

            # RetryingSource retries it; the outage persists, so the
            # loader absorbs the failure per bad_sample_policy and the
            # epoch completes (short), flagged under loader.degraded
            retrying = RetryingSource(
                src,
                RetryPolicy(
                    max_attempts=2, base_delay_s=0.001, max_delay_s=0.01
                ),
                seed=0,
            )
            loader = DataLoader(
                retrying,
                plugin,
                batch_size=4,
                bad_sample_policy="skip",
            )
            batches = list(loader.batches(0))
            assert batches == []  # every sample skipped, no crash
            assert len(loader.quarantine) == N
            degraded = dict(loader.stats.snapshot()).get(
                "loader.degraded", (0, 0.0)
            )[0]
            assert degraded == N  # accounted as brown-out, not corruption
            src.close()
        finally:
            dispatcher.close(drain=False, timeout_s=2.0)


class TestOverload:
    def test_busy_shed_reroutes_to_the_healthy_replica(self, blobs):
        shedding = AdmissionController(
            AdmissionPolicy(rate_per_client=0.1, burst=1.0)
        )
        dispatcher = Dispatcher(lease_s=5.0, replication=2).start()
        workers = [
            ClusterWorker(
                ListSource(blobs),
                dispatcher=dispatcher.address,
                admission=shedding if i == 0 else None,
            ).start()
            for i in range(2)
        ]
        try:
            with ClusterSource(dispatcher.address, timeout_s=2.0) as src:
                out = [src.read(i) for i in range(N)]
                assert out == blobs  # every read served despite the sheds
                assert _counter(src, "cluster.busy_sheds") > 0
                assert _counter(src, "cluster.failovers") == 0
        finally:
            for w in workers:
                w.close(drain=False, timeout_s=2.0)
            dispatcher.close(drain=False, timeout_s=2.0)


class TestWorkerReRegistration:
    def test_force_expired_worker_comes_back_with_same_id(self, cluster):
        import time

        dispatcher, workers = cluster
        victim = workers[2]
        wid = victim.worker_id
        from repro.cluster import dispatcher_call

        out = dispatcher_call(
            *dispatcher.address,
            protocol.OP_LEASE,
            {"action": "expire", "worker_id": wid},
        )
        assert out["expired"] is True
        # the worker's next heartbeat sees known=False and re-registers
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if wid in dispatcher.membership.alive():
                break
            time.sleep(0.05)
        assert wid in dispatcher.membership.alive()
        assert victim.worker_id == wid  # identity survived the restart
        assert victim.incarnation == 1
        assert _counter(victim, "worker.reregistrations") >= 1
