"""Unit + property tests for the bit-packing utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitpack import pack_fields, pack_uint, unpack_fields, unpack_uint


class TestPackUint:
    def test_roundtrip_u8(self):
        vals = np.array([0, 1, 127, 255], dtype=np.uint8)
        assert np.array_equal(unpack_uint(pack_uint(vals, 1), 1), vals)

    def test_roundtrip_u16(self):
        vals = np.array([0, 256, 65535], dtype=np.uint16)
        assert np.array_equal(unpack_uint(pack_uint(vals, 2), 2), vals)

    def test_roundtrip_u32_u64(self):
        vals = np.array([0, 2**31, 2**32 - 1], dtype=np.uint64)
        assert np.array_equal(unpack_uint(pack_uint(vals, 4), 4), vals[:3])
        big = np.array([2**63], dtype=np.uint64)
        assert np.array_equal(unpack_uint(pack_uint(big, 8), 8), big)

    def test_little_endian_layout(self):
        assert pack_uint(np.array([0x0102]), 2) == b"\x02\x01"

    def test_count_limits_read(self):
        data = pack_uint(np.arange(10), 2)
        assert len(unpack_uint(data, 2, count=3)) == 3

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            pack_uint(np.array([1]), 3)
        with pytest.raises(ValueError):
            unpack_uint(b"\x00\x00", 5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            pack_uint(np.array([-1]), 1)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            pack_uint(np.array([256]), 1)

    def test_empty(self):
        assert pack_uint(np.array([], dtype=np.uint8), 1) == b""
        assert unpack_uint(b"", 1).size == 0

    def test_rejects_truncated_stream(self):
        # a stream that is not a whole number of values must not silently
        # decode to a shorter array
        with pytest.raises(ValueError, match="not a multiple"):
            unpack_uint(b"\x01\x02\x03", 2)

    def test_rejects_count_beyond_data(self):
        data = pack_uint(np.arange(4), 2)
        with pytest.raises(ValueError, match="count 5"):
            unpack_uint(data, 2, count=5)
        with pytest.raises(ValueError, match="non-negative"):
            unpack_uint(data, 2, count=-1)

    def test_count_tolerates_trailing_bytes(self):
        # an explicit count may read a prefix of a larger buffer — this is
        # how the container slices sections out of one blob
        data = pack_uint(np.arange(4), 2) + b"\xff"
        assert np.array_equal(unpack_uint(data, 2, count=4), np.arange(4))

    @given(
        st.lists(st.integers(min_value=0, max_value=2**16 - 1), max_size=200)
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property_u16(self, values):
        arr = np.array(values, dtype=np.uint16)
        assert np.array_equal(unpack_uint(pack_uint(arr, 2), 2), arr)

    @given(
        st.sampled_from([1, 2, 4, 8]),
        st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_roundtrip_property_all_widths(self, width, data):
        """Round-trip holds for every width, including zero-length input
        and max-value payloads, and the stream length is exact."""
        limit = 2 ** (8 * width) - 1
        values = data.draw(
            st.lists(
                st.one_of(
                    st.integers(0, limit),
                    st.sampled_from([0, 1, limit - 1, limit]),
                ),
                min_size=0,
                max_size=64,
            )
        )
        arr = np.array(values, dtype=np.uint64)
        packed = pack_uint(arr, width)
        assert len(packed) == len(values) * width
        out = unpack_uint(packed, width)
        assert out.size == arr.size
        assert np.array_equal(out.astype(np.uint64), arr)

    @given(st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=8, deadline=None)
    def test_max_value_payload_property(self, width):
        limit = 2 ** (8 * width) - 1
        arr = np.full(16, limit, dtype=np.uint64)
        assert np.array_equal(
            unpack_uint(pack_uint(arr, width), width).astype(np.uint64), arr
        )
        if width < 8:  # limit + 1 is not representable in uint64 for w=8
            with pytest.raises(ValueError, match="does not fit"):
                pack_uint(np.array([limit + 1], dtype=np.uint64), width)


class TestPackFields:
    def test_layout(self):
        # sign=1, eoff=0b101, mant=0b0011 -> 1 101 0011
        packed = pack_fields(np.array([1]), np.array([5]), np.array([3]))
        assert packed[0] == 0b1101_0011

    def test_roundtrip_exhaustive(self):
        # every possible byte decodes and re-encodes identically
        all_bytes = np.arange(256, dtype=np.uint8)
        s, e, m = unpack_fields(all_bytes)
        assert np.array_equal(pack_fields(s, e, m), all_bytes)

    def test_rejects_wide_fields(self):
        with pytest.raises(ValueError):
            pack_fields(np.array([0]), np.array([8]), np.array([0]))
        with pytest.raises(ValueError):
            pack_fields(np.array([0]), np.array([0]), np.array([16]))

    @given(
        st.integers(0, 1), st.integers(0, 7), st.integers(0, 15)
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, s, e, m):
        packed = pack_fields(np.array([s]), np.array([e]), np.array([m]))
        s2, e2, m2 = unpack_fields(packed)
        assert (int(s2[0]), int(e2[0]), int(m2[0])) == (s, e, m)

    @given(st.integers(1, 6), st.data())
    @settings(max_examples=120, deadline=None)
    def test_roundtrip_property_all_splits(self, mantissa_bits, data):
        """Round-trip holds for every sign/eoff/mantissa bit split,
        including empty arrays and all-maximum fields."""
        eoff_max = (1 << (7 - mantissa_bits)) - 1
        mant_max = (1 << mantissa_bits) - 1
        n = data.draw(st.integers(0, 40))
        s = np.array(data.draw(st.lists(
            st.integers(0, 1), min_size=n, max_size=n)), dtype=np.uint8)
        e = np.array(data.draw(st.lists(
            st.integers(0, eoff_max), min_size=n, max_size=n)), dtype=np.uint8)
        m = np.array(data.draw(st.lists(
            st.integers(0, mant_max), min_size=n, max_size=n)), dtype=np.uint8)
        packed = pack_fields(s, e, m, mantissa_bits)
        s2, e2, m2 = unpack_fields(packed, mantissa_bits)
        assert np.array_equal(s2, s)
        assert np.array_equal(e2, e)
        assert np.array_equal(m2, m)

    @pytest.mark.parametrize("mantissa_bits", [1, 2, 3, 4, 5, 6])
    def test_exhaustive_byte_roundtrip_all_splits(self, mantissa_bits):
        all_bytes = np.arange(256, dtype=np.uint8)
        s, e, m = unpack_fields(all_bytes, mantissa_bits)
        assert np.array_equal(
            pack_fields(s, e, m, mantissa_bits), all_bytes
        )

    @pytest.mark.parametrize("mantissa_bits", [0, 7])
    def test_rejects_invalid_split(self, mantissa_bits):
        with pytest.raises(ValueError, match=r"\[1, 6\]"):
            pack_fields(np.array([0]), np.array([0]), np.array([0]),
                        mantissa_bits)
        with pytest.raises(ValueError, match=r"\[1, 6\]"):
            unpack_fields(np.array([0], dtype=np.uint8), mantissa_bits)
