"""Unit + property tests for the bit-packing utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitpack import pack_fields, pack_uint, unpack_fields, unpack_uint


class TestPackUint:
    def test_roundtrip_u8(self):
        vals = np.array([0, 1, 127, 255], dtype=np.uint8)
        assert np.array_equal(unpack_uint(pack_uint(vals, 1), 1), vals)

    def test_roundtrip_u16(self):
        vals = np.array([0, 256, 65535], dtype=np.uint16)
        assert np.array_equal(unpack_uint(pack_uint(vals, 2), 2), vals)

    def test_roundtrip_u32_u64(self):
        vals = np.array([0, 2**31, 2**32 - 1], dtype=np.uint64)
        assert np.array_equal(unpack_uint(pack_uint(vals, 4), 4), vals[:3])
        big = np.array([2**63], dtype=np.uint64)
        assert np.array_equal(unpack_uint(pack_uint(big, 8), 8), big)

    def test_little_endian_layout(self):
        assert pack_uint(np.array([0x0102]), 2) == b"\x02\x01"

    def test_count_limits_read(self):
        data = pack_uint(np.arange(10), 2)
        assert len(unpack_uint(data, 2, count=3)) == 3

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            pack_uint(np.array([1]), 3)
        with pytest.raises(ValueError):
            unpack_uint(b"\x00\x00", 5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            pack_uint(np.array([-1]), 1)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            pack_uint(np.array([256]), 1)

    def test_empty(self):
        assert pack_uint(np.array([], dtype=np.uint8), 1) == b""
        assert unpack_uint(b"", 1).size == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=2**16 - 1), max_size=200)
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property_u16(self, values):
        arr = np.array(values, dtype=np.uint16)
        assert np.array_equal(unpack_uint(pack_uint(arr, 2), 2), arr)


class TestPackFields:
    def test_layout(self):
        # sign=1, eoff=0b101, mant=0b0011 -> 1 101 0011
        packed = pack_fields(np.array([1]), np.array([5]), np.array([3]))
        assert packed[0] == 0b1101_0011

    def test_roundtrip_exhaustive(self):
        # every possible byte decodes and re-encodes identically
        all_bytes = np.arange(256, dtype=np.uint8)
        s, e, m = unpack_fields(all_bytes)
        assert np.array_equal(pack_fields(s, e, m), all_bytes)

    def test_rejects_wide_fields(self):
        with pytest.raises(ValueError):
            pack_fields(np.array([0]), np.array([8]), np.array([0]))
        with pytest.raises(ValueError):
            pack_fields(np.array([0]), np.array([0]), np.array([16]))

    @given(
        st.integers(0, 1), st.integers(0, 7), st.integers(0, 15)
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, s, e, m):
        packed = pack_fields(np.array([s]), np.array([e]), np.array([m]))
        s2, e2, m2 = unpack_fields(packed)
        assert (int(s2[0]), int(e2[0]), int(m2[0])) == (s, e, m)
