"""Tests for the command-line tools."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.encoding import container
from repro.storage import tfrecord


class TestGenerate:
    def test_cosmoflow_base(self, tmp_path, capsys):
        out = tmp_path / "c.tfr"
        assert main(["generate", "--workload", "cosmoflow", "--count", "2",
                     "--size", "8", "--output", str(out)]) == 0
        records = tfrecord.read_records(out)
        assert len(records) == 2
        codec, payload, label, _ = container.unpack_sample(records[0])
        assert codec == "raw" and payload.shape == (4, 8, 8, 8)

    def test_cosmoflow_plugin(self, tmp_path):
        out = tmp_path / "cp.tfr"
        main(["generate", "--workload", "cosmoflow", "--representation",
              "plugin", "--count", "1", "--size", "8", "--output", str(out)])
        codec, _, _, _ = container.unpack_sample(
            tfrecord.read_records(out)[0]
        )
        assert codec == "lut"

    def test_deepcam_plugin_gzip(self, tmp_path):
        out = tmp_path / "d.tfr.gz"
        main(["generate", "--workload", "deepcam", "--representation",
              "plugin", "--count", "1", "--size", "16", "--gzip",
              "--output", str(out)])
        records = tfrecord.read_records(out, compression="gzip")
        codec, _, _, _ = container.unpack_sample(records[0])
        assert codec == "delta"

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.tfr", tmp_path / "b.tfr"
        for out in (a, b):
            main(["generate", "--workload", "cosmoflow", "--count", "1",
                  "--size", "8", "--seed", "5", "--output", str(out)])
        assert a.read_bytes() == b.read_bytes()


class TestInspectAnalyzeBench:
    @pytest.fixture()
    def record_file(self, tmp_path):
        out = tmp_path / "c.tfr"
        main(["generate", "--workload", "cosmoflow", "--count", "2",
              "--size", "8", "--output", str(out)])
        return out

    def test_inspect(self, record_file, capsys):
        assert main(["inspect", "--input", str(record_file)]) == 0
        text = capsys.readouterr().out
        assert "raw" in text and "total: 2 samples" in text

    def test_analyze(self, record_file, capsys):
        assert main(["analyze", "--input", str(record_file)]) == 0
        text = capsys.readouterr().out
        assert "unique values" in text and "yes" in text

    def test_analyze_rejects_encoded(self, tmp_path):
        out = tmp_path / "cp.tfr"
        main(["generate", "--workload", "cosmoflow", "--representation",
              "plugin", "--count", "1", "--size", "8", "--output", str(out)])
        with pytest.raises(SystemExit):
            main(["analyze", "--input", str(out)])

    def test_bench(self, record_file, capsys):
        assert main(["bench", "--workload", "cosmoflow",
                     "--representation", "base", "--input",
                     str(record_file)]) == 0
        assert "samples/s" in capsys.readouterr().out

    def test_bench_json(self, record_file, capsys):
        import json

        assert main(["bench", "--workload", "cosmoflow",
                     "--representation", "base", "--input",
                     str(record_file), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["samples"] == 2
        assert data["samples_per_s"] > 0
        assert data["decoded_mb_per_s"] > 0

    def test_unknown_representation(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--workload", "cosmoflow", "--representation",
                  "nope", "--input", "x"])


class TestStats:
    def test_delta_stats(self, tmp_path, capsys):
        out = tmp_path / "d.tfr"
        main(["generate", "--workload", "deepcam", "--representation",
              "plugin", "--count", "2", "--size", "16", "--output",
              str(out)])
        assert main(["stats", "--input", str(out)]) == 0
        text = capsys.readouterr().out
        assert "delta" in text and "vs fp16" in text

    def test_lut_stats(self, tmp_path, capsys):
        out = tmp_path / "c.tfr"
        main(["generate", "--workload", "cosmoflow", "--representation",
              "plugin", "--count", "1", "--size", "16", "--output",
              str(out)])
        assert main(["stats", "--input", str(out)]) == 0
        text = capsys.readouterr().out
        assert "lut" in text and "groups" in text

    def test_raw_stats(self, tmp_path, capsys):
        out = tmp_path / "r.tfr"
        main(["generate", "--workload", "cosmoflow", "--count", "1",
              "--size", "8", "--output", str(out)])
        assert main(["stats", "--input", str(out)]) == 0
        assert "raw" in capsys.readouterr().out

    def test_stats_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "d.tfr"
        main(["generate", "--workload", "deepcam", "--representation",
              "plugin", "--count", "2", "--size", "16", "--output",
              str(out)])
        capsys.readouterr()  # drop the generate banner
        assert main(["stats", "--input", str(out), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["samples"]) == 2
        rec = data["samples"][0]
        assert rec["codec"] == "delta"
        assert rec["compression_vs_fp16"] > 0.0
        assert rec["lines_const"] + rec["lines_delta"] + rec["lines_raw"] > 0


class TestTune:
    def test_tune_human_output(self, capsys):
        assert main(["tune", "--machine", "summit", "--workload",
                     "cosmoflow"]) == 0
        text = capsys.readouterr().out
        assert "converged" in text
        assert "best:" in text and "paper:" in text
        assert "bottleneck" in text

    def test_tune_json(self, capsys):
        import json

        assert main(["tune", "--machine", "cori-a100", "--workload",
                     "deepcam", "--json", "--top", "3", "--seed", "1"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["machine"] == "Cori-A100"
        assert data["converged"] is True
        assert len(data["trials"]) == 3
        assert data["best"]["prediction_error"] < 0.15
        assert data["paper_simulated_samples_per_s"] > 0

    def test_tune_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["tune", "--machine", "frontier", "--workload",
                  "cosmoflow"])


class TestServeFetch:
    def test_serve_fetch_end_to_end(self, tmp_path, capsys):
        import json
        import threading
        import time

        out = tmp_path / "d.tfr"
        assert main(["generate", "--workload", "deepcam",
                     "--representation", "plugin", "--count", "4",
                     "--size", "16", "--output", str(out)]) == 0
        capsys.readouterr()  # drop generate output

        rc = {}

        def serve():
            rc["serve"] = main([
                "serve", "--input", str(out), "--world-size", "2",
                "--duration-s", "3", "--json",
            ])

        t = threading.Thread(target=serve)
        t.start()
        try:
            # the startup JSON line carries the ephemeral port
            port, lines = None, []
            deadline = time.monotonic() + 5.0
            while port is None and time.monotonic() < deadline:
                lines += capsys.readouterr().out.splitlines()
                for line in lines:
                    obj = json.loads(line or "{}")
                    if "port" in obj:
                        port = obj["port"]
                time.sleep(0.05)
            assert port is not None, f"no startup line in {lines!r}"

            assert main(["fetch", "--port", str(port), "--health",
                         "--json"]) == 0
            health = json.loads(capsys.readouterr().out)
            assert health["status"] == "ok"

            assert main(["fetch", "--port", str(port), "--indices", "0,2",
                         "--verify", "--json"]) == 0
            fetched = json.loads(capsys.readouterr().out)
            assert fetched["samples"] == 2 and fetched["corrupt"] == 0

            assert main(["fetch", "--port", str(port), "--epoch", "0",
                         "--rank", "1", "--json"]) == 0
            shard = json.loads(capsys.readouterr().out)
            assert shard["samples"] == 2  # 4 samples over 2 ranks
            assert shard["rank"] == 1 and shard["epoch"] == 0
        finally:
            t.join(timeout=10.0)
        assert rc.get("serve") == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["reads"] >= 4 and summary["errors"] == 0


class TestTiers:
    @pytest.fixture()
    def record_file(self, tmp_path):
        out = tmp_path / "t.tfr"
        main(["generate", "--workload", "deepcam", "--representation",
              "plugin", "--count", "8", "--size", "16", "--output",
              str(out)])
        return out

    def test_status_json_reports_hit_rates(self, record_file, capsys):
        import json

        capsys.readouterr()
        assert main(["tiers", "status", "--input", str(record_file),
                     "--epochs", "3", "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert {lv["name"] for lv in status["levels"]} == {"ram", "nvme"}
        for lv in status["levels"]:
            assert "hit_rate" in lv and "budget_bytes" in lv
        assert status["hit_rate"] > 0.0  # promoted epochs actually hit
        assert status["promotions"] > 0
        assert status["modeled_read_s"] > 0.0

    def test_status_human_output(self, record_file, capsys):
        capsys.readouterr()
        assert main(["tiers", "status", "--input", str(record_file)]) == 0
        text = capsys.readouterr().out
        assert "hit rate" in text and "ram" in text and "nvme" in text
        assert "promotions" in text

    def test_plan_lists_moves(self, record_file, capsys):
        import json

        capsys.readouterr()
        assert main(["tiers", "plan", "--input", str(record_file),
                     "--epochs", "1", "--json"]) == 0
        plan = json.loads(capsys.readouterr().out)
        assert set(plan["counts"]) == {"promote", "demote", "evict"}
        assert plan["counts"]["promote"] > 0
        assert all({"key", "kind", "src", "dst", "bytes"} <= set(m)
                   for m in plan["moves"])

    def test_migrate_applies_and_reports(self, record_file, capsys):
        import json

        capsys.readouterr()
        assert main(["tiers", "migrate", "--input", str(record_file),
                     "--epochs", "1", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["migrated"].get("promote", 0) > 0
        assert out["status"]["promotions"] > 0

    def test_nvme_dir_persists_replicas(self, record_file, tmp_path, capsys):
        nvme = tmp_path / "nvme"
        capsys.readouterr()
        assert main(["tiers", "status", "--input", str(record_file),
                     "--ram-mb", "0", "--nvme-dir", str(nvme),
                     "--policy", "cost", "--json"]) == 0
        assert list(nvme.glob("*.blob"))  # staged replicas are real files

    def test_rejects_unknown_machine(self, record_file):
        with pytest.raises(SystemExit):
            main(["tiers", "status", "--input", str(record_file),
                  "--machine", "frontier"])

    def test_stats_tier_probe(self, record_file, capsys):
        import json

        capsys.readouterr()
        assert main(["stats", "--input", str(record_file), "--tiers",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["tiers"]["hit_rate"] > 0.0
        assert len(data["samples"]) == 8


class TestGraphCommand:
    @pytest.fixture()
    def cosmo_file(self, tmp_path):
        out = tmp_path / "c.tfr"
        main(["generate", "--workload", "cosmoflow", "--representation",
              "plugin", "--count", "3", "--size", "8", "--output",
              str(out)])
        return out

    @pytest.fixture()
    def deepcam_file(self, tmp_path):
        out = tmp_path / "d.tfr"
        main(["generate", "--workload", "deepcam", "--representation",
              "plugin", "--count", "6", "--size", "16", "--output",
              str(out)])
        return out

    def test_show_lists_stages_and_edges(self, cosmo_file, capsys):
        capsys.readouterr()
        assert main(["graph", "show", "--workload", "cosmoflow",
                     "--input", str(cosmo_file)]) == 0
        text = capsys.readouterr().out
        assert "decode" in text and "log1p" in text and "fp16" in text
        assert "edges:" in text and "->" in text

    def test_show_json(self, cosmo_file, capsys):
        import json

        capsys.readouterr()
        assert main(["graph", "show", "--workload", "cosmoflow",
                     "--input", str(cosmo_file), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        names = [n["name"] for n in data["nodes"]]
        assert "read" in names and "log1p" in names

    def test_optimize_check_cosmoflow(self, cosmo_file, capsys):
        capsys.readouterr()
        assert main(["graph", "optimize", "--workload", "cosmoflow",
                     "--input", str(cosmo_file), "--check"]) == 0
        text = capsys.readouterr().out
        assert "bit-identical" in text
        assert "naive/optimized/legacy" in text
        assert "fused" in text  # pass trace mentions the fusion

    def test_optimize_check_deepcam_holdout(self, deepcam_file, capsys):
        capsys.readouterr()
        assert main(["graph", "optimize", "--workload", "deepcam",
                     "--input", str(deepcam_file), "--holdout", "0.5",
                     "--check"]) == 0
        text = capsys.readouterr().out
        assert "bit-identical" in text
        assert "holdout" in text  # filter shows up in the trace

    def test_optimize_json_has_cost_terms(self, cosmo_file, capsys):
        import json

        capsys.readouterr()
        assert main(["graph", "optimize", "--workload", "cosmoflow",
                     "--input", str(cosmo_file), "--check", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["check"]["ok"] is True
        assert data["check"]["mismatches"] == []
        naive = data["naive"]["cost_terms"]
        opt = data["optimized"]["cost_terms"]
        assert opt["extra_passes"] < naive["extra_passes"]
        assert data["optimized"]["optimized"] is True

    def test_holdout_rejected_for_cosmoflow(self, cosmo_file):
        with pytest.raises(SystemExit):
            main(["graph", "optimize", "--workload", "cosmoflow",
                  "--input", str(cosmo_file), "--holdout", "0.5"])

    def test_stats_pipeline_counters(self, cosmo_file, capsys):
        import json

        capsys.readouterr()
        assert main(["stats", "--input", str(cosmo_file), "--pipeline",
                     "--workload", "cosmoflow", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        stages = data["pipeline"]
        assert "pipeline.read" in stages and "pipeline.decode" in stages
        assert stages["pipeline.decode"]["count"] == 3
        assert stages["pipeline.decode"]["seconds"] >= 0.0

    def test_stats_pipeline_needs_workload(self, cosmo_file):
        with pytest.raises(SystemExit):
            main(["stats", "--input", str(cosmo_file), "--pipeline"])
