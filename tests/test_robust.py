"""Tests for the fault-tolerance subsystem: injection, retries, policies.

The chaos acceptance criteria live here:

* a seeded 5% transient-IOError epoch under ``RetryingSource`` is
  *bit-identical* to the fault-free epoch, and
* a 1%-permanently-corrupted epoch under ``bad_sample_policy="skip"``
  completes with the quarantine listing exactly the corrupted ids.
"""

import numpy as np
import pytest

from repro.core.encoding.container import CorruptSampleError, verify_sample
from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.pipeline import DataLoader, ListSource
from repro.robust import (
    FaultInjector,
    FaultPlan,
    FaultyTier,
    QuarantineLog,
    RetryingSource,
    RetryPolicy,
)
from repro.storage import Tier, TierSpec


@pytest.fixture(scope="module")
def small_blobs():
    cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(8, cfg, seed=7)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


@pytest.fixture(scope="module")
def epoch_blobs():
    """A larger set for the chaos epoch tests (100 samples → 1% granularity)."""
    cfg = deepcam.DeepcamConfig(height=8, width=12, n_channels=2)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(100, cfg, seed=11)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


class TestFaultPlan:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(io_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(bitflip_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(latency_s=-1.0)

    def test_corrupt_ids_normalized(self):
        plan = FaultPlan(corrupt_ids={1, 2})
        assert isinstance(plan.corrupt_ids, frozenset)


class TestFaultInjector:
    def test_no_faults_is_transparent(self, small_blobs):
        _, blobs = small_blobs
        inj = FaultInjector(ListSource(blobs), FaultPlan())
        assert len(inj) == len(blobs)
        assert all(inj.read(i) == blobs[i] for i in range(len(blobs)))
        assert inj.stats.total_injected == 0

    def test_io_errors_are_seeded_and_reproducible(self, small_blobs):
        _, blobs = small_blobs

        def fault_pattern(seed):
            inj = FaultInjector(
                ListSource(blobs), FaultPlan(io_error_rate=0.5, seed=seed)
            )
            pattern = []
            for i in range(len(blobs)):
                try:
                    inj.read(i)
                    pattern.append("ok")
                except IOError:
                    pattern.append("io")
            return pattern

        assert fault_pattern(3) == fault_pattern(3)
        assert fault_pattern(3) != fault_pattern(4)

    def test_retry_rerolls_transient_fault(self, small_blobs):
        """A second attempt on the same index draws fresh randomness."""
        _, blobs = small_blobs
        inj = FaultInjector(
            ListSource(blobs), FaultPlan(io_error_rate=0.5, seed=0)
        )
        recovered = 0
        for i in range(len(blobs)):
            for _ in range(20):  # retry until the fault clears
                try:
                    assert inj.read(i) == blobs[i]
                    recovered += 1
                    break
                except IOError:
                    continue
        assert recovered == len(blobs)

    def test_bitflip_detected_by_checksum(self, small_blobs):
        _, blobs = small_blobs
        inj = FaultInjector(
            ListSource(blobs), FaultPlan(bitflip_rate=1.0, seed=1)
        )
        flipped = inj.read(0)
        assert flipped != blobs[0]
        with pytest.raises(ValueError):  # CorruptSampleError or structural
            verify_sample(flipped, sample_id=0)

    def test_truncation_detected(self, small_blobs):
        _, blobs = small_blobs
        inj = FaultInjector(
            ListSource(blobs), FaultPlan(truncate_rate=1.0, seed=2)
        )
        cut = inj.read(0)
        assert len(cut) < len(blobs[0])
        with pytest.raises(ValueError):
            verify_sample(cut, sample_id=0)

    def test_latency_spike_uses_sleep_hook(self, small_blobs):
        _, blobs = small_blobs
        naps = []
        inj = FaultInjector(
            ListSource(blobs),
            FaultPlan(latency_rate=1.0, latency_s=0.25, seed=0),
            sleep=naps.append,
        )
        inj.read(0)
        assert naps == [0.25]

    def test_permanent_corruption_is_stable(self, small_blobs):
        _, blobs = small_blobs
        inj = FaultInjector(
            ListSource(blobs), FaultPlan(corrupt_ids=frozenset({3}), seed=0)
        )
        first = inj.read(3)
        assert first != blobs[3]
        # every read returns the SAME damaged bytes — retrying cannot help
        assert all(inj.read(3) == first for _ in range(3))
        with pytest.raises(CorruptSampleError):
            verify_sample(first, sample_id=3)
        # other samples are untouched
        assert inj.read(0) == blobs[0]


class TestFaultyTier:
    def _tier(self, tmp_path):
        return Tier(TierSpec("t", 1.0, 1.0, 0.0), tmp_path)

    def test_read_injection(self, tmp_path, small_blobs):
        _, blobs = small_blobs
        tier = self._tier(tmp_path)
        tier.write("a", blobs[0])
        faulty = FaultyTier(
            tier, FaultPlan(io_error_rate=1.0, seed=0), on="read"
        )
        with pytest.raises(IOError):
            faulty.read("a")
        # delegation of non-wrapped attributes
        assert faulty.spec.name == "t"
        assert faulty.has_room(1)

    def test_write_injection_damages_landed_bytes(self, tmp_path, small_blobs):
        _, blobs = small_blobs
        tier = self._tier(tmp_path)
        faulty = FaultyTier(
            tier, FaultPlan(bitflip_rate=1.0, seed=0), on="write"
        )
        faulty.write("a", blobs[0])
        assert tier.read("a") != blobs[0]

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            FaultyTier(self._tier(tmp_path), FaultPlan(), on="sideways")


class _FlakySource:
    """Fails the first ``n_failures`` reads of every index."""

    def __init__(self, blobs, n_failures, exc=IOError):
        self._blobs = blobs
        self.n_failures = n_failures
        self.exc = exc
        self.attempts = {}

    def __len__(self):
        return len(self._blobs)

    def read(self, index):
        seen = self.attempts.get(index, 0)
        self.attempts[index] = seen + 1
        if seen < self.n_failures:
            raise self.exc(f"flaky read {index} (attempt {seen})")
        return self._blobs[index]


class TestRetryingSource:
    def test_recovers_from_transient_failures(self, small_blobs):
        _, blobs = small_blobs
        src = RetryingSource(
            _FlakySource(blobs, 2),
            RetryPolicy(max_attempts=4, base_delay_s=0.0),
        )
        assert src.read(0) == blobs[0]
        assert src.stats.reads == 1
        assert src.stats.retries == 2
        assert src.stats.aborts == 0
        assert src.stats.errors == {"OSError": 2}

    def test_exhaustion_reraises_last_error(self, small_blobs):
        _, blobs = small_blobs
        src = RetryingSource(
            _FlakySource(blobs, 99),
            RetryPolicy(max_attempts=3, base_delay_s=0.0),
        )
        with pytest.raises(IOError) as ei:
            src.read(0)
        assert ei.value.retry_attempts == 3
        assert src.stats.aborts == 1
        assert src.stats.retries == 2

    def test_non_retryable_passes_through_immediately(self, small_blobs):
        _, blobs = small_blobs
        flaky = _FlakySource(blobs, 99, exc=KeyError)
        src = RetryingSource(flaky, RetryPolicy(max_attempts=5))
        with pytest.raises(KeyError):
            src.read(0)
        assert flaky.attempts[0] == 1  # no retries for unexpected errors

    def test_exponential_backoff_without_jitter(self, small_blobs):
        _, blobs = small_blobs
        naps = []
        src = RetryingSource(
            _FlakySource(blobs, 3),
            RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=1.0,
                        jitter=0.0),
            sleep=naps.append,
        )
        src.read(0)
        assert naps == [0.01, 0.02, 0.04]
        assert src.stats.backoff_seconds == pytest.approx(0.07)

    def test_jitter_is_bounded_and_seeded(self, small_blobs):
        _, blobs = small_blobs

        def naps_for(seed):
            naps = []
            src = RetryingSource(
                _FlakySource(blobs, 3),
                RetryPolicy(max_attempts=4, base_delay_s=0.01,
                            max_delay_s=1.0, jitter=0.5),
                seed=seed,
                sleep=naps.append,
            )
            src.read(0)
            return naps

        # same seed → same jittered delays; delays stay within ±jitter bounds
        assert naps_for(5) == naps_for(5)
        for nap, base in zip(naps_for(5), [0.01, 0.02, 0.04]):
            assert 0.5 * base <= nap <= 1.5 * base

    def test_delay_cap(self, small_blobs):
        _, blobs = small_blobs
        naps = []
        src = RetryingSource(
            _FlakySource(blobs, 5),
            RetryPolicy(max_attempts=6, base_delay_s=0.01, max_delay_s=0.03,
                        jitter=0.0),
            sleep=naps.append,
        )
        src.read(0)
        assert max(naps) == 0.03

    def test_timeout_budget_aborts_instead_of_oversleeping(self, small_blobs):
        _, blobs = small_blobs
        now = [0.0]

        def clock():
            return now[0]

        def sleep(s):
            now[0] += s

        src = RetryingSource(
            _FlakySource(blobs, 99),
            RetryPolicy(max_attempts=100, base_delay_s=1.0, max_delay_s=1.0,
                        jitter=0.0, timeout_s=2.5),
            sleep=sleep,
            clock=clock,
        )
        with pytest.raises(IOError):
            src.read(0)
        assert src.stats.aborts == 1
        assert now[0] <= 2.5  # never slept past the budget

    def test_verify_turns_bitflip_into_retry(self, small_blobs):
        _, blobs = small_blobs
        inj = FaultInjector(
            ListSource(blobs), FaultPlan(bitflip_rate=0.5, seed=0)
        )
        src = RetryingSource(
            inj, RetryPolicy(max_attempts=10, base_delay_s=0.0), verify=True
        )
        for i in range(len(blobs)):
            assert src.read(i) == blobs[i]  # always ends with clean bytes
        assert src.stats.verify_failures > 0  # and some flips were caught

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0)

    def test_len_delegates(self, small_blobs):
        _, blobs = small_blobs
        assert len(RetryingSource(ListSource(blobs))) == len(blobs)


class TestQuarantineLog:
    def test_record_and_report(self):
        log = QuarantineLog()
        assert not log and len(log) == 0
        log.record(3, 0, ValueError("boom"), "skipped")
        log.record(3, 1, ValueError("boom again"), "skipped")
        log.record(7, 1, IOError("nope"), "substituted")
        assert len(log) == 3
        assert log.ids() == [3, 7]
        assert log.ids(epoch=0) == [3]
        assert log.counts_by_action() == {"skipped": 2, "substituted": 1}
        report = log.report()
        assert "ValueError" in report and "substituted" in report

    def test_empty_report(self):
        assert "empty" in QuarantineLog().report()


class TestLoaderPolicies:
    def test_invalid_policy_rejected(self, small_blobs):
        plugin, blobs = small_blobs
        with pytest.raises(ValueError):
            DataLoader(ListSource(blobs), plugin, bad_sample_policy="ignore")

    def test_raise_policy_carries_sample_index(self, small_blobs):
        plugin, blobs = small_blobs
        inj = FaultInjector(
            ListSource(blobs), FaultPlan(corrupt_ids=frozenset({4}))
        )
        dl = DataLoader(inj, plugin, batch_size=2, shuffle=False,
                        num_workers=2, verify_reads=True)
        with pytest.raises(CorruptSampleError) as ei:
            list(dl.batches(0))
        assert ei.value.sample_index == 4
        assert ei.value.sample_id == 4

    def test_skip_policy_completes_and_quarantines(self, small_blobs):
        plugin, blobs = small_blobs
        bad = frozenset({1, 6})
        inj = FaultInjector(ListSource(blobs), FaultPlan(corrupt_ids=bad))
        dl = DataLoader(inj, plugin, batch_size=3, shuffle=False,
                        num_workers=2, bad_sample_policy="skip",
                        verify_reads=True)
        batches = list(dl.batches(0))
        assert sum(b.shape[0] for b, _ in batches) == len(blobs) - len(bad)
        assert set(dl.quarantine.ids()) == set(bad)
        assert dl.quarantine.counts_by_action() == {"skipped": 2}
        stats = dl.robust_stats()
        assert stats["quarantined"] == 2

    def test_substitute_policy_preserves_batch_geometry(self, small_blobs):
        plugin, blobs = small_blobs
        bad = frozenset({2, 5})
        inj = FaultInjector(ListSource(blobs), FaultPlan(corrupt_ids=bad))
        dl = DataLoader(inj, plugin, batch_size=4, shuffle=False,
                        num_workers=0, bad_sample_policy="substitute",
                        verify_reads=True)
        batches = list(dl.batches(0))
        # every sample slot is filled: 8 samples -> 4+4
        assert [b.shape[0] for b, _ in batches] == [4, 4]
        assert dl.quarantine.counts_by_action() == {"substituted": 2}
        # slot of sample 2 carries a copy of sample 1's tensor
        ref = plugin.decode(blobs[1])[0]
        assert np.array_equal(batches[0][0][2], ref)

    def test_substitute_before_first_good_sample_skips(self, small_blobs):
        plugin, blobs = small_blobs
        inj = FaultInjector(
            ListSource(blobs), FaultPlan(corrupt_ids=frozenset({0}))
        )
        dl = DataLoader(inj, plugin, batch_size=2, shuffle=False,
                        num_workers=0, bad_sample_policy="substitute",
                        verify_reads=True)
        batches = list(dl.batches(0))
        assert sum(b.shape[0] for b, _ in batches) == len(blobs) - 1
        assert dl.quarantine.counts_by_action() == {"skipped": 1}

    def test_verified_reads_identical_to_unverified(self, small_blobs):
        plugin, blobs = small_blobs
        plain = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=9)
        checked = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=9,
                             verify_reads=True, bad_sample_policy="skip")
        for (a, la), (b, lb) in zip(plain.batches(0), checked.batches(0)):
            assert np.array_equal(a, b) and np.array_equal(la, lb)
        assert not checked.quarantine


@pytest.mark.chaos
class TestChaosAcceptance:
    """The ISSUE's acceptance scenarios, at 100-sample scale."""

    def _loader(self, source, plugin, policy="raise", workers=2):
        return DataLoader(source, plugin, batch_size=8, shuffle=True,
                          seed=42, num_workers=workers,
                          bad_sample_policy=policy, verify_reads=True)

    def test_transient_io_errors_yield_bit_identical_epoch(self, epoch_blobs):
        plugin, blobs = epoch_blobs
        clean = list(self._loader(ListSource(blobs), plugin).batches(0))

        inj = FaultInjector(
            ListSource(blobs), FaultPlan(io_error_rate=0.05, seed=1234)
        )
        retrying = RetryingSource(
            inj, RetryPolicy(max_attempts=6, base_delay_s=0.0), verify=True,
            seed=1234,
        )
        chaos = list(self._loader(retrying, plugin).batches(0))

        assert inj.stats.injected["io_error"] > 0  # faults really fired
        assert retrying.stats.retries > 0
        assert retrying.stats.aborts == 0
        assert len(chaos) == len(clean)
        for (a, la), (b, lb) in zip(clean, chaos):
            assert np.array_equal(a, b)
            assert np.array_equal(la, lb)

    def test_permanent_corruption_skip_quarantines_exactly(self, epoch_blobs):
        plugin, blobs = epoch_blobs
        corrupt = frozenset({17})  # 1% of 100 samples
        inj = FaultInjector(
            ListSource(blobs), FaultPlan(corrupt_ids=corrupt, seed=5)
        )
        dl = self._loader(inj, plugin, policy="skip")
        epoch = list(dl.batches(0))
        assert sum(b.shape[0] for b, _ in epoch) == len(blobs) - 1
        assert set(dl.quarantine.ids()) == set(corrupt)
        # the quarantine names the error and epoch
        entry = dl.quarantine.entries[0]
        assert entry.error_type == "CorruptSampleError"
        assert entry.epoch == 0

    def test_multi_epoch_skip_requarantines_each_epoch(self, epoch_blobs):
        plugin, blobs = epoch_blobs
        corrupt = frozenset({3, 50})
        inj = FaultInjector(
            ListSource(blobs), FaultPlan(corrupt_ids=corrupt, seed=6)
        )
        dl = self._loader(inj, plugin, policy="skip")
        for epoch in range(2):
            total = sum(b.shape[0] for b, _ in dl.batches(epoch))
            assert total == len(blobs) - len(corrupt)
            assert set(dl.quarantine.ids(epoch=epoch)) == set(corrupt)


class TestChaosExperimentHarness:
    def test_experiment_runs_and_asserts(self):
        from repro.experiments import chaos as chaos_exp

        result = chaos_exp.run(n_samples=12, num_workers=0, quiet=True)
        assert result.findings["transient_identical"] == 1.0
        assert result.findings["quarantine_exact"] == 1.0
