"""Golden-vector corpus: verified, never regenerated.

``tests/vectors/`` is the frozen codec contract: encoded blobs, the exact
arrays they must decode to, and SHA-256 digests over both.  The tier-1
suite *verifies* the committed corpus through every decode implementation;
it must never regenerate it — a digest mismatch means the codec (or the
container framing) changed bits and the change must be deliberate.
"""

import json
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.conformance import generate_vectors, verify_vectors
from repro.conformance.vectors import DEFAULT_SEED, MANIFEST_NAME

VECTOR_DIR = Path(__file__).parent / "vectors"


def test_committed_corpus_exists_and_is_nonempty():
    manifest = json.loads((VECTOR_DIR / MANIFEST_NAME).read_text())
    cases = manifest["cases"]
    assert len(cases) >= 15
    codecs = {c["codec"] for c in cases}
    assert codecs == {"delta", "lut", "delta-batch", "lut-batch"}
    for c in cases:
        assert (VECTOR_DIR / c["blob"]).is_file()
        assert (VECTOR_DIR / c["expected"]).is_file()


def test_committed_corpus_verifies_bit_exact():
    """The acceptance gate: every implementation reproduces every frozen
    expected array bit-for-bit, and every digest matches."""
    report = verify_vectors(VECTOR_DIR)
    assert report.results, "empty corpus must not pass silently"
    details = "; ".join(
        f"{r.name}: {r.errors}" for r in report.failed
    )
    assert report.ok, f"golden-vector verification failed: {details}"


def test_corpus_covers_documented_edge_cases():
    manifest = json.loads((VECTOR_DIR / MANIFEST_NAME).read_text())
    names = {c["name"] for c in manifest["cases"]}
    # the regeneration policy (docs/format-*.md) promises these families
    for required in (
        "delta-smooth", "delta-abrupt", "delta-const", "delta-singlecol",
        "delta-specials", "delta-denormal", "delta-nogate",
        "lut-u8", "lut-u16", "lut-split", "lut-fused",
        "batch-delta", "batch-lut",
    ):
        assert required in names


class TestTamperDetection:
    """Verification must fail loudly when the corpus drifts."""

    @pytest.fixture()
    def corpus_copy(self, tmp_path):
        dst = tmp_path / "vectors"
        shutil.copytree(VECTOR_DIR, dst)
        return dst

    def test_blob_tamper_fails_digest(self, corpus_copy):
        target = next(corpus_copy.glob("delta-*.bin"))
        raw = bytearray(target.read_bytes())
        raw[-1] ^= 0xFF
        target.write_bytes(bytes(raw))
        report = verify_vectors(corpus_copy)
        assert not report.ok
        assert any("SHA-256" in e for r in report.failed for e in r.errors)

    def test_expected_tamper_fails_digest(self, corpus_copy):
        target = next(corpus_copy.glob("lut-*.npy"))
        raw = bytearray(target.read_bytes())
        raw[-1] ^= 0x01
        target.write_bytes(bytes(raw))
        assert not verify_vectors(corpus_copy).ok

    def test_manifest_expectation_tamper_is_caught(self, corpus_copy):
        """Rewriting manifest digests alone cannot launder a bit change:
        the decoded output no longer matches the stored expectation."""
        import hashlib

        manifest_path = corpus_copy / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        entry = next(c for c in manifest["cases"]
                     if c["name"] == "delta-smooth")
        npy_path = corpus_copy / entry["expected"]
        arr = np.load(npy_path)
        arr.view(np.uint16).reshape(-1)[0] ^= 1
        np.save(npy_path, arr)
        entry["expected_sha256"] = hashlib.sha256(
            npy_path.read_bytes()
        ).hexdigest()
        manifest_path.write_text(json.dumps(manifest))
        report = verify_vectors(corpus_copy)
        bad = [r for r in report.failed if r.name == "delta-smooth"]
        assert bad and any("expected" in e for e in bad[0].errors)

    def test_missing_manifest_fails(self, tmp_path):
        assert not verify_vectors(tmp_path / "nowhere").ok


class TestGenerationPolicy:
    def test_refuses_to_overwrite_without_force(self, tmp_path):
        generate_vectors(tmp_path)
        with pytest.raises(FileExistsError, match="frozen"):
            generate_vectors(tmp_path)
        generate_vectors(tmp_path, force=True)  # deliberate override works

    def test_generation_is_deterministic(self, tmp_path):
        """Same seed → byte-identical corpus.  This is what makes the
        committed digests meaningful across machines."""
        a = generate_vectors(tmp_path / "a", seed=123)
        b = generate_vectors(tmp_path / "b", seed=123)
        assert a == b
        for case in a["cases"]:
            assert (tmp_path / "a" / case["blob"]).read_bytes() == (
                tmp_path / "b" / case["blob"]
            ).read_bytes()

    def test_committed_corpus_matches_default_seed(self, tmp_path):
        """Regenerating with the recorded seed reproduces the committed
        digests exactly — proof the corpus was built by this code and the
        'never regenerate' policy loses nothing."""
        committed = json.loads((VECTOR_DIR / MANIFEST_NAME).read_text())
        assert committed["seed"] == DEFAULT_SEED
        fresh = generate_vectors(tmp_path, seed=DEFAULT_SEED)
        fresh_digests = {
            c["name"]: (c["blob_sha256"], c["expected_sha256"])
            for c in fresh["cases"]
        }
        committed_digests = {
            c["name"]: (c["blob_sha256"], c["expected_sha256"])
            for c in committed["cases"]
        }
        assert fresh_digests == committed_digests
