"""API hygiene: every public item is documented and importable.

A release-quality library documents its public surface; this test walks
every module under ``repro`` and asserts that each public module, class,
and function carries a docstring, and that ``__all__`` (where declared)
only names things that exist.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    mods = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        mods.append(importlib.import_module(info.name))
    return mods


MODULES = _walk_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_all_names_resolve(module):
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module.__name__}.__all__: {name}"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            # only enforce for items defined in this package
            if (getattr(obj, "__module__", "") or "").startswith("repro"):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{module.__name__}.{name} lacks a docstring"
                )


def test_package_exports_match_layout():
    import repro.core
    import repro.datasets
    import repro.storage
    import repro.pipeline
    import repro.accel
    import repro.ml
    import repro.simulate
    import repro.experiments

    for name in repro.__all__:
        importlib.import_module(f"repro.{name}")
