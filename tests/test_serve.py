"""Tests for the data service: wire protocol, server ops, remote data path.

The serving acceptance criterion lives here: a full ``DataLoader`` epoch
driven through :class:`RemoteSource` over localhost is *bit-identical*
(raw ``tobytes()``) to the same epoch through a :class:`ListSource`, for
both the delta and LUT codecs.
"""

import socket
import threading

import numpy as np
import pytest

from repro.core.encoding.container import CorruptSampleError
from repro.core.plugins import CosmoflowLutPlugin, DeepcamDeltaPlugin
from repro.datasets import cosmoflow, deepcam
from repro.pipeline import DataLoader, ListSource
from repro.serve import DataServer, RemoteSource, protocol
from repro.serve.protocol import (
    FrameCorruptError,
    ProtocolError,
    pack_frame,
    recv_frame,
)
from repro.storage.cache import SampleCache

N = 12


@pytest.fixture(scope="module")
def deepcam_blobs():
    cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(N, cfg, seed=3)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


@pytest.fixture(scope="module")
def cosmo_blobs():
    cfg = cosmoflow.CosmoflowConfig(grid=16, n_particles=20_000)
    plugin = CosmoflowLutPlugin("cpu")
    ds = cosmoflow.generate_dataset(N, cfg, seed=3)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


def _pair():
    a, b = socket.socketpair()
    a.settimeout(2.0)
    b.settimeout(2.0)
    return a, b


class TestProtocol:
    def test_frame_roundtrip(self):
        a, b = _pair()
        try:
            body = b"\x00payload\xff" * 100
            a.sendall(pack_frame(protocol.ST_OK, body))
            assert recv_frame(b) == (protocol.ST_OK, body)
        finally:
            a.close()
            b.close()

    def test_empty_body_roundtrip(self):
        a, b = _pair()
        try:
            a.sendall(pack_frame(protocol.OP_INFO))
            assert recv_frame(b) == (protocol.OP_INFO, b"")
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = _pair()
        try:
            a.close()
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_bad_magic_is_protocol_error(self):
        a, b = _pair()
        try:
            frame = bytearray(pack_frame(protocol.ST_OK, b"x"))
            frame[:4] = b"JUNK"
            a.sendall(bytes(frame))
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncation_mid_frame_is_protocol_error(self):
        a, b = _pair()
        try:
            frame = pack_frame(protocol.ST_OK, b"0123456789")
            a.sendall(frame[: len(frame) // 2])
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_crc_mismatch_is_frame_corrupt_not_protocol(self):
        a, b = _pair()
        try:
            frame = bytearray(pack_frame(protocol.ST_OK, b"0123456789"))
            frame[12] ^= 0x40  # flip a body byte, leave the CRC
            a.sendall(bytes(frame))
            with pytest.raises(FrameCorruptError):
                recv_frame(b)
            # the stream is still synchronized: the next frame parses
            a.sendall(pack_frame(protocol.ST_OK, b"next"))
            assert recv_frame(b) == (protocol.ST_OK, b"next")
        finally:
            a.close()
            b.close()

    def test_oversize_length_rejected_before_allocation(self):
        a, b = _pair()
        try:
            head = protocol._HEAD.pack(
                protocol.MAGIC, protocol.ST_OK, protocol.MAX_BODY_BYTES + 1
            )
            a.sendall(head)
            with pytest.raises(ProtocolError, match="cap"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            pack_frame(0x7F, b"")
        a, b = _pair()
        try:
            a.sendall(protocol._HEAD.pack(protocol.MAGIC, 0x7F, 0))
            with pytest.raises(ProtocolError, match="kind"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_body_codecs_roundtrip(self):
        assert protocol.unpack_read(protocol.pack_read(2**40)) == 2**40
        assert protocol.unpack_epoch(protocol.pack_epoch(3, 2**33)) == (3, 2**33)
        idx = np.array([5, 0, 2**35], dtype=np.int64)
        out = protocol.unpack_indices(protocol.pack_indices(idx))
        assert out.dtype == np.int64 and np.array_equal(out, idx)
        assert protocol.unpack_json(protocol.pack_json({"a": [1]})) == {"a": [1]}

    def test_malformed_bodies_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.unpack_read(b"\x00" * 3)
        with pytest.raises(ProtocolError):
            protocol.unpack_indices(protocol._COUNT.pack(2) + b"\x00" * 8)
        with pytest.raises(ProtocolError):
            protocol.unpack_json(b"[1, 2]")
        with pytest.raises(ValueError):
            protocol.pack_read(-1)


class TestServerClient:
    def test_read_roundtrip_and_len(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        with DataServer(ListSource(blobs)) as server:
            with RemoteSource(*server.address) as src:
                assert len(src) == len(blobs)
                assert all(src.read(i) == blobs[i] for i in range(len(blobs)))

    def test_index_error_is_local_and_remote(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        with DataServer(ListSource(blobs)) as server:
            with RemoteSource(*server.address) as src:
                with pytest.raises(IndexError):
                    src.read(len(blobs))  # client-side bounds check
                with pytest.raises(IndexError):
                    # bypass the local check: the server's answer must
                    # come back as a faithful IndexError, not a retry loop
                    src._n = len(blobs) + 10
                    src.read(len(blobs) + 1)
                src._n = len(blobs)
                assert src.read(0) == blobs[0]  # connection still usable

    def test_info_health_stats_ops(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        with DataServer(
            ListSource(blobs), cache=SampleCache(1e7), world_size=2
        ) as server:
            with RemoteSource(*server.address) as src:
                info = src.info()
                assert info["n_samples"] == len(blobs)
                assert info["world_size"] == 2
                assert info["cached"] is True
                src.read(1)
                health = src.health()
                assert health["status"] == "ok"
                stats = src.stats_report()
                assert stats["counters"]["serve.read"]["n"] >= 1
                assert stats["cache"]["misses"] >= 1

    def test_shared_source_many_client_threads(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        errors = []

        def sweep(host, port):
            try:
                with RemoteSource(host, port) as src:
                    for i in range(len(blobs)):
                        assert src.read(i) == blobs[i]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with DataServer(ListSource(blobs), cache=SampleCache(1e7)) as server:
            host, port = server.address
            threads = [
                threading.Thread(target=sweep, args=(host, port))
                for _ in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []

    @pytest.mark.parametrize("workload", ["deepcam", "cosmo"])
    def test_remote_epoch_bit_identical_to_local(
        self, workload, deepcam_blobs, cosmo_blobs
    ):
        """Acceptance: remote epoch == local epoch, raw bytes, both codecs."""
        plugin, blobs = deepcam_blobs if workload == "deepcam" else cosmo_blobs

        def epoch_bytes(loader):
            out = []
            for batch, labels in loader.batches(0):
                out.append(batch.tobytes())
                out.append(labels.tobytes())
            return out

        local = DataLoader(ListSource(blobs), plugin, batch_size=4, seed=9)
        with DataServer(ListSource(blobs), cache=SampleCache(1e8)) as server:
            with RemoteSource(*server.address) as src:
                remote = DataLoader(src, plugin, batch_size=4, seed=9)
                assert epoch_bytes(remote) == epoch_bytes(local)

    def test_verify_before_cache_rejects_corrupt_blob(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        bad = bytearray(blobs[2])
        bad[len(bad) // 2] ^= 0x10
        served = list(blobs)
        served[2] = bytes(bad)
        cache = SampleCache(1e7)
        with DataServer(ListSource(served), cache=cache) as server:
            with RemoteSource(*server.address) as src:
                assert src.read(0) == blobs[0]
                for _ in range(2):  # never cached, fails identically twice
                    with pytest.raises(CorruptSampleError):
                        src.read(2)
                assert src.read(1) == blobs[1]  # connection survives
        assert 2 not in cache

    def test_back_pressure_bound_respected(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        with DataServer(
            ListSource(blobs), max_connections=2, service_delay_s=0.005
        ) as server:
            host, port = server.address
            done = []

            def sweep():
                # the connect itself queues behind the 2-connection bound;
                # the handshake completes once a slot frees
                with RemoteSource(host, port) as src:
                    for i in range(len(blobs)):
                        src.read(i)
                done.append(1)

            threads = [threading.Thread(target=sweep) for _ in range(5)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(done) == 5  # queued clients eventually served
            with RemoteSource(host, port) as probe:
                assert probe.health()["max_connections"] == 2

    def test_graceful_drain_refuses_new_connections(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        server = DataServer(ListSource(blobs)).start()
        host, port = server.address
        src = RemoteSource(host, port)
        assert src.read(0) == blobs[0]
        server.close(drain=True)
        with pytest.raises(OSError):
            RemoteSource(host, port)
        src.close()

    def test_close_is_idempotent(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        server = DataServer(ListSource(blobs)).start()
        server.close()
        server.close()

    def test_service_delay_applied_outside_locks(self, deepcam_blobs):
        """Two concurrent delayed reads overlap: total < 2 × delay × reads."""
        from time import perf_counter

        _, blobs = deepcam_blobs
        with DataServer(
            ListSource(blobs), cache=SampleCache(1e7), service_delay_s=0.02
        ) as server:
            host, port = server.address

            def sweep():
                with RemoteSource(host, port) as src:
                    for i in range(6):
                        src.read(i)

            sweep()  # warm
            t0 = perf_counter()
            threads = [threading.Thread(target=sweep) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = perf_counter() - t0
        # serial floor would be 2 clients × 6 reads × 20 ms = 240 ms
        assert elapsed < 0.9 * 2 * 6 * 0.02
