"""Tests that the synthetic datasets have the properties the codecs exploit.

These are the load-bearing checks of the substitution argument (DESIGN.md
§2): the generators must reproduce the statistical structure the paper
measured on the real data, or the codec results would be meaningless.
"""

import numpy as np
import pytest

from repro.core.encoding.analysis import (
    analyze_cosmoflow_sample,
    analyze_deepcam_sample,
)
from repro.datasets import cosmoflow, deepcam


class TestCosmoflowGenerator:
    def test_shapes_and_dtype(self, cosmo_sample):
        assert cosmo_sample.data.shape == (4, 16, 16, 16)
        assert cosmo_sample.data.dtype == np.int16
        assert cosmo_sample.label.shape == (4,)

    def test_deterministic(self):
        cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=5000)
        a = cosmoflow.generate_sample(cfg, seed=5)
        b = cosmoflow.generate_sample(cfg, seed=5)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.label, b.label)

    def test_different_seeds_differ(self):
        cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=5000)
        a = cosmoflow.generate_sample(cfg, seed=5)
        b = cosmoflow.generate_sample(cfg, seed=6)
        assert not np.array_equal(a.data, b.data)

    def test_particle_count_conserved(self):
        cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=5000)
        s = cosmoflow.generate_sample(cfg, seed=1)
        sums = s.data.astype(np.int64).reshape(4, -1).sum(axis=1)
        assert np.all(sums == cfg.n_particles)

    def test_labels_within_30pct_spread(self):
        for seed in range(5):
            s = cosmoflow.generate_sample(
                cosmoflow.CosmoflowConfig(grid=8, n_particles=2000), seed=seed
            )
            rel = s.label / cosmoflow.PARAM_MEANS
            assert np.all(rel >= 0.699) and np.all(rel <= 1.301)

    def test_label_normalization_roundtrip(self):
        label = cosmoflow.PARAM_MEANS * 1.2
        norm = cosmoflow.normalize_label(label)
        assert np.allclose(norm, 1.2 / 0.3 - 1 / 0.3, atol=1e-5)
        back = cosmoflow.denormalize_label(norm)
        assert np.allclose(back, label, rtol=1e-5)

    def test_progressive_clustering(self, cosmo_sample):
        # later redshifts concentrate mass: max voxel count grows
        maxima = cosmo_sample.data.reshape(4, -1).max(axis=1).astype(int)
        assert maxima[-1] > maxima[0]

    # --- Fig 5 structural properties the LUT codec needs -----------------

    def test_unique_values_order_hundreds(self, cosmo_sample):
        st = analyze_cosmoflow_sample(cosmo_sample.data)
        assert 20 <= st.n_unique_values <= 2000

    def test_power_law_frequencies(self, cosmo_sample):
        st = analyze_cosmoflow_sample(cosmo_sample.data)
        assert st.powerlaw_slope < -1.0  # steep, power-law-like

    def test_groups_fit_16bit_keys(self, cosmo_sample):
        st = analyze_cosmoflow_sample(cosmo_sample.data)
        assert st.keys_fit_16bit
        assert st.group_fraction < 0.01  # far below the permutation bound

    def test_dataset_generation(self):
        cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=2000)
        ds = cosmoflow.generate_dataset(3, cfg, seed=0)
        assert len(ds) == 3
        labels = np.stack([s.label for s in ds])
        assert len(np.unique(labels[:, 0])) == 3  # independent parameters

    def test_config_validation(self):
        with pytest.raises(ValueError):
            cosmoflow.CosmoflowConfig(grid=1)
        with pytest.raises(ValueError):
            cosmoflow.CosmoflowConfig(n_channels=0)
        with pytest.raises(ValueError):
            cosmoflow.CosmoflowConfig(n_particles=0)


class TestDeepcamGenerator:
    def test_shapes_and_dtype(self, deepcam_sample):
        assert deepcam_sample.data.shape == (8, 32, 48)
        assert deepcam_sample.data.dtype == np.float32
        assert deepcam_sample.label.shape == (32, 48)
        assert deepcam_sample.label.dtype == np.int8

    def test_deterministic(self):
        cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
        a = deepcam.generate_sample(cfg, seed=9)
        b = deepcam.generate_sample(cfg, seed=9)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.label, b.label)

    def test_all_classes_present(self, deepcam_sample):
        present = set(np.unique(deepcam_sample.label))
        assert deepcam.CLASS_BACKGROUND in present
        assert deepcam.CLASS_CYCLONE in present
        assert deepcam.CLASS_RIVER in present

    def test_background_dominates(self, deepcam_sample):
        frac_bg = np.mean(deepcam_sample.label == deepcam.CLASS_BACKGROUND)
        assert frac_bg > 0.5  # extreme weather is rare, as in CAM5

    def test_channel_scales_span_orders_of_magnitude(self):
        # full 16-channel samples span pressures (~1e5 Pa) down to upper
        # humidities (~1e-3 kg/kg)
        cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=16)
        s = deepcam.generate_sample(cfg, seed=4)
        means = np.abs(s.data.reshape(16, -1)).mean(axis=1)
        assert means.max() / max(means.min(), 1e-12) > 1e4

    def test_x_direction_is_smoothest(self, deepcam_sample):
        smoother = 0
        for ch in deepcam_sample.data:
            st = analyze_deepcam_sample(ch)
            if st.mean_abs_diff_x < st.mean_abs_diff_y:
                smoother += 1
        assert smoother >= 6  # most channels smoother along x

    def test_thermodynamic_channels_are_codec_friendly(self, deepcam_sample):
        # temperature channels (0–3) are the smooth majority the codec
        # targets; wind channels carry the vortices and are allowed to be
        # rough (they fall back to literal/raw storage)
        fracs = []
        for ch in deepcam_sample.data[:4]:
            norm = (ch - ch.mean()) / ch.std()
            fracs.append(analyze_deepcam_sample(norm).frac_smooth_lines)
        assert np.mean(fracs) > 0.5

    def test_cyclone_perturbs_pressure(self):
        cfg = deepcam.DeepcamConfig(height=48, width=64, n_channels=16,
                                    n_cyclones=1, n_rivers=0)
        s = deepcam.generate_sample(cfg, seed=3)
        inside = s.label == deepcam.CLASS_CYCLONE
        assert inside.any()
        pressure = s.data[8]
        assert pressure[inside].mean() < pressure[~inside].mean()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            deepcam.DeepcamConfig(height=4)
        with pytest.raises(ValueError):
            deepcam.DeepcamConfig(n_channels=0)
        with pytest.raises(ValueError):
            deepcam.DeepcamConfig(n_channels=17)

    def test_dataset_generation(self):
        cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
        ds = deepcam.generate_dataset(2, cfg, seed=0)
        assert len(ds) == 2
        assert not np.array_equal(ds[0].data, ds[1].data)
