"""Tests for the DeepCAM and CosmoFlow decoder plugins."""

import numpy as np
import pytest

from repro.accel.device import A100, V100, SimulatedGpu
from repro.core.plugins import (
    CosmoflowBaselinePlugin,
    CosmoflowLutPlugin,
    DeepcamBaselinePlugin,
    DeepcamDeltaPlugin,
    channel_stats,
    log_transform,
)


class TestDeepcamBaseline:
    def test_output_is_normalized_fp32(self, deepcam_sample):
        plugin = DeepcamBaselinePlugin()
        tensor, label = plugin.decode_cpu(
            plugin.encode(deepcam_sample.data, deepcam_sample.label)
        )
        assert tensor.dtype == np.float32
        assert tensor.shape == deepcam_sample.data.shape
        means = tensor.reshape(tensor.shape[0], -1).mean(axis=1)
        stds = tensor.reshape(tensor.shape[0], -1).std(axis=1)
        assert np.allclose(means, 0.0, atol=1e-4)
        assert np.allclose(stds, 1.0, atol=1e-3)
        assert np.array_equal(label, deepcam_sample.label)

    def test_gpu_decode_unsupported(self, deepcam_sample):
        plugin = DeepcamBaselinePlugin()
        blob = plugin.encode(deepcam_sample.data, deepcam_sample.label)
        with pytest.raises(NotImplementedError):
            plugin.decode_gpu(blob, SimulatedGpu(spec=V100))

    def test_measure_cost(self, deepcam_sample):
        cost = DeepcamBaselinePlugin().measure(
            deepcam_sample.data, deepcam_sample.label
        )
        assert cost.h2d_bytes == deepcam_sample.data.nbytes  # FP32 across
        assert cost.cpu_preprocess_elems == deepcam_sample.data.size
        assert cost.gpu_decode_seconds == 0.0


class TestDeepcamDelta:
    def test_cpu_gpu_decode_identical(self, deepcam_sample):
        gpu_plugin = DeepcamDeltaPlugin("gpu")
        cpu_plugin = DeepcamDeltaPlugin("cpu")
        blob = gpu_plugin.encode(deepcam_sample.data, deepcam_sample.label)
        t_cpu, l_cpu = cpu_plugin.decode(blob)
        t_gpu, l_gpu = gpu_plugin.decode(blob, SimulatedGpu(spec=V100))
        assert t_cpu.dtype == np.float16 and t_gpu.dtype == np.float16
        assert np.array_equal(t_cpu, t_gpu)
        assert np.array_equal(l_cpu, l_gpu)

    def test_decoded_close_to_baseline_normalized(self, deepcam_sample):
        base = DeepcamBaselinePlugin()
        plug = DeepcamDeltaPlugin("cpu")
        truth, _ = base.decode_cpu(
            base.encode(deepcam_sample.data, deepcam_sample.label)
        )
        approx, _ = plug.decode_cpu(
            plug.encode(deepcam_sample.data, deepcam_sample.label)
        )
        err = np.abs(approx.astype(np.float32) - truth)
        scale = np.abs(truth).max()
        sig = np.abs(truth) > 0.01 * scale
        rel = err[sig] / np.abs(truth)[sig]
        assert rel.max() < 0.06  # the 5% gate + FP16 cast

    def test_encoded_smaller_than_baseline(self, deepcam_sample):
        base_blob = DeepcamBaselinePlugin().encode(
            deepcam_sample.data, deepcam_sample.label
        )
        enc_blob = DeepcamDeltaPlugin("gpu").encode(
            deepcam_sample.data, deepcam_sample.label
        )
        assert len(enc_blob) < len(base_blob)

    def test_gpu_decode_charges_device(self, deepcam_sample):
        plugin = DeepcamDeltaPlugin("gpu")
        blob = plugin.encode(deepcam_sample.data, deepcam_sample.label)
        dev = SimulatedGpu(spec=V100)
        plugin.decode(blob, dev)
        assert dev.busy_seconds > 0
        assert any(k.name == "delta_decode" for k in dev.launches)

    def test_placement_dispatch(self, deepcam_sample):
        plugin = DeepcamDeltaPlugin("cpu")
        blob = plugin.encode(deepcam_sample.data, deepcam_sample.label)
        dev = SimulatedGpu(spec=V100)
        plugin.decode(blob, dev)  # cpu placement ignores the device
        assert dev.busy_seconds == 0

    def test_measure_gpu_vs_cpu_costs(self, deepcam_sample):
        data, label = deepcam_sample.data, deepcam_sample.label
        c_gpu = DeepcamDeltaPlugin("gpu").measure(data, label)
        c_cpu = DeepcamDeltaPlugin("cpu").measure(data, label)
        assert c_gpu.stored_bytes == c_cpu.stored_bytes
        # GPU placement ships the encoded form; CPU placement the FP16 tensor
        assert c_gpu.h2d_bytes == c_gpu.stored_bytes
        assert c_cpu.h2d_bytes == c_cpu.decoded_bytes
        assert c_gpu.cpu_preprocess_elems == 0
        assert c_cpu.cpu_preprocess_elems > 0
        assert c_gpu.gpu_decode_seconds > 0

    def test_invalid_placement(self):
        with pytest.raises(ValueError):
            DeepcamDeltaPlugin("fpga")

    def test_wrong_container_rejected(self, deepcam_sample):
        base_blob = DeepcamBaselinePlugin().encode(
            deepcam_sample.data, deepcam_sample.label
        )
        with pytest.raises(ValueError):
            DeepcamDeltaPlugin("cpu").decode_cpu(base_blob)


class TestChannelStats:
    def test_matches_numpy(self, deepcam_sample):
        mean, std = channel_stats(deepcam_sample.data)
        C = deepcam_sample.data.shape[0]
        flat = deepcam_sample.data.reshape(C, -1)
        assert np.allclose(mean, flat.mean(axis=1), rtol=1e-5)
        assert np.allclose(std, flat.std(axis=1), rtol=1e-4)

    def test_constant_channel_unit_std(self):
        data = np.ones((2, 4, 4), dtype=np.float32)
        _, std = channel_stats(data)
        assert np.all(std == 1.0)


class TestCosmoflowBaseline:
    def test_full_volume_log(self, cosmo_sample):
        plugin = CosmoflowBaselinePlugin()
        tensor, label = plugin.decode_cpu(
            plugin.encode(cosmo_sample.data, cosmo_sample.label)
        )
        assert tensor.dtype == np.float32
        want = np.log1p(cosmo_sample.data.astype(np.float32))
        assert np.array_equal(tensor, want)
        assert np.array_equal(label, cosmo_sample.label)


class TestCosmoflowLut:
    def test_lossless_to_fp16(self, cosmo_sample):
        plugin = CosmoflowLutPlugin("cpu")
        tensor, _ = plugin.decode_cpu(
            plugin.encode(cosmo_sample.data, cosmo_sample.label)
        )
        want = np.log1p(cosmo_sample.data.astype(np.float32)).astype(
            np.float16
        )
        assert np.array_equal(tensor, want)  # "not lossy when casting"

    def test_cpu_gpu_identical(self, cosmo_sample):
        plugin = CosmoflowLutPlugin("gpu")
        blob = plugin.encode(cosmo_sample.data, cosmo_sample.label)
        t_gpu, _ = plugin.decode(blob, SimulatedGpu(spec=A100))
        t_cpu, _ = CosmoflowLutPlugin("cpu").decode(blob)
        assert np.array_equal(t_gpu, t_cpu)

    def test_no_log_variant(self, cosmo_sample):
        plugin = CosmoflowLutPlugin("cpu", apply_log=False)
        tensor, _ = plugin.decode_cpu(
            plugin.encode(cosmo_sample.data, cosmo_sample.label)
        )
        assert np.array_equal(
            tensor, cosmo_sample.data.astype(np.float16)
        )

    def test_fused_gpu_kernels_recorded(self, cosmo_sample):
        plugin = CosmoflowLutPlugin("gpu")
        blob = plugin.encode(cosmo_sample.data, cosmo_sample.label)
        dev = SimulatedGpu(spec=V100)
        plugin.decode(blob, dev)
        names = [k.name for k in dev.launches]
        assert "lut_table_preproc" in names  # fused log on the table
        assert "lut_gather" in names

    def test_encoded_smaller(self, cosmo_sample):
        base = CosmoflowBaselinePlugin().encode(
            cosmo_sample.data, cosmo_sample.label
        )
        enc = CosmoflowLutPlugin("gpu").encode(
            cosmo_sample.data, cosmo_sample.label
        )
        assert len(enc) < len(base)

    def test_measure_costs(self, cosmo_sample):
        data, label = cosmo_sample.data, cosmo_sample.label
        c_base = CosmoflowBaselinePlugin().measure(data, label)
        c_gpu = CosmoflowLutPlugin("gpu").measure(data, label)
        c_cpu = CosmoflowLutPlugin("cpu").measure(data, label)
        assert c_gpu.stored_bytes < c_base.stored_bytes
        assert c_gpu.h2d_bytes < c_cpu.h2d_bytes < c_base.h2d_bytes
        assert c_base.cpu_preprocess_elems == data.size
        assert c_cpu.cpu_preprocess_elems < c_base.cpu_preprocess_elems

    def test_log_transform_fp32(self):
        counts = np.array([0, 1, 100], dtype=np.int16)
        out = log_transform(counts)
        assert out.dtype == np.float32
        assert np.allclose(out, np.log1p([0.0, 1.0, 100.0]))
