"""Tests for the tiered storage manager (policies, manager, source, worker)."""

import threading

import numpy as np
import pytest

from repro.core.encoding import container
from repro.pipeline import DataLoader, ListSource
from repro.storage.filesystem import Tier, TierSpec, read_time
from repro.tiering import (
    CostAwarePolicy,
    LfuPolicy,
    LruPolicy,
    MemoryTier,
    MigrationWorker,
    TieredSource,
    TierLevel,
    TierManager,
    build_hierarchy,
    make_policy,
)
from repro.tune import resolve_machine
from repro.tune.costmodel import (
    expected_read_seconds,
    host_ram_tierspec,
    machine_tier_specs,
)
from repro.tune.stats import StatsRegistry

FAST = TierSpec("fast", read_bw_gbps=100.0, write_bw_gbps=100.0,
                latency_s=1e-7)
SLOW = TierSpec("slow", read_bw_gbps=1.0, write_bw_gbps=1.0, latency_s=1e-3)
PFS = TierSpec("pfs", read_bw_gbps=0.5, write_bw_gbps=0.5, latency_s=1e-2)


class _DictBacking:
    """Minimal backing store: read(key) over a dict."""

    def __init__(self, blobs):
        self.blobs = dict(blobs)
        self.reads = 0

    def read(self, key):
        self.reads += 1
        return self.blobs[key]


def _blob(seed: int, n: int = 40) -> bytes:
    rng = np.random.default_rng(seed)
    return container.pack_raw_sample(
        rng.normal(size=(n // 4,)).astype(np.float32),
        np.arange(2, dtype=np.int64),
    )


def _manager(n_keys=8, *, budgets=(3, 5), verify=False, blob_size=10,
             policy=None, stats=None):
    """Two-level manager over byte-string blobs of uniform size."""
    blobs = {i: bytes([i]) * blob_size for i in range(n_keys)}
    levels = [
        TierLevel(MemoryTier(FAST), budget_bytes=budgets[0] * blob_size,
                  policy=policy() if policy else None, name="fast"),
        TierLevel(MemoryTier(SLOW), budget_bytes=budgets[1] * blob_size,
                  policy=policy() if policy else None, name="slow"),
    ]
    backing = _DictBacking(blobs)
    return TierManager(levels, backing=backing, backing_spec=PFS,
                       verify=verify, stats=stats), backing, blobs


class TestPolicies:
    def test_lru_victim_is_least_recently_used(self):
        p = LruPolicy()
        for k in "abc":
            p.on_admit(k, 1)
        p.on_access("a")
        assert p.victim() == "b"
        p.on_remove("b")
        assert p.victim() == "c"

    def test_lru_empty_has_no_victim(self):
        assert LruPolicy().victim() is None

    def test_lfu_counts_and_breaks_ties_by_recency(self):
        p = LfuPolicy()
        for k in "abc":
            p.on_admit(k, 1)
        p.on_access("a")
        p.on_access("a")
        p.on_access("b")
        assert p.victim() == "c"  # count 1, untouched longest
        p.on_access("c")  # b and c now tie at 2; b is staler
        assert p.victim() == "b"

    def test_cost_aware_prefers_evicting_cheap_to_restream(self):
        # big sample with a tiny bandwidth delta saves almost nothing per
        # byte; small hot sample over a big delta is what the tier is for
        p = CostAwarePolicy(FAST, SLOW)
        p.on_admit("big", 1_000_000)
        p.on_admit("small", 1_000)
        for _ in range(5):
            p.on_access("small")
        assert p.victim() == "big"

    def test_cost_aware_equal_scores_evict_stalest(self):
        p = CostAwarePolicy(FAST, SLOW)
        p.on_admit("a", 100)
        p.on_admit("b", 100)
        assert p.victim() == "a"

    def test_make_policy(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("lfu"), LfuPolicy)
        assert isinstance(make_policy("cost", FAST, SLOW), CostAwarePolicy)
        with pytest.raises(ValueError):
            make_policy("cost")  # needs both specs
        with pytest.raises(ValueError):
            make_policy("random")


class TestMemoryTier:
    def test_roundtrip_and_accounting(self):
        tier = MemoryTier(TierSpec("m", 1, 1, 0, capacity_bytes=10))
        tier.write("a", b"12345")
        assert tier.read("a") == b"12345"
        assert tier.used_bytes == 5 and tier.exists("a")
        tier.write("a", b"123")  # overwrite charges the delta
        assert tier.used_bytes == 3
        assert tier.delete("a") and not tier.delete("a")
        assert tier.used_bytes == 0

    def test_capacity_enforced(self):
        tier = MemoryTier(TierSpec("m", 1, 1, 0, capacity_bytes=4))
        with pytest.raises(OSError):
            tier.write("a", b"12345")
        with pytest.raises(FileNotFoundError):
            tier.read("a")


class TestTierManagerReadPath:
    def test_miss_admits_at_slowest_then_hits(self):
        mgr, backing, blobs = _manager()
        assert mgr.read(0) == blobs[0]
        assert backing.reads == 1
        # admitted at the slowest managed level, not the fastest
        assert mgr.levels[1].has(0) and not mgr.levels[0].has(0)
        assert mgr.read(0) == blobs[0]
        assert backing.reads == 1  # served from the tier, not backing
        snap = mgr.stats.snapshot()
        assert snap["tiers.misses"][0] == 1
        assert snap["tiers.slow.hits"][0] == 1
        assert snap["tiers.backing.reads"][0] == 1

    def test_modeled_time_charged_per_serving_tier(self):
        mgr, _, blobs = _manager()
        mgr.read(0)
        mgr.read(0)
        snap = mgr.stats.snapshot()
        assert snap["tiers.backing.read_s"][1] == pytest.approx(
            read_time(PFS, len(blobs[0]))
        )
        assert snap["tiers.slow.read_s"][1] == pytest.approx(
            read_time(SLOW, len(blobs[0]))
        )
        assert mgr.modeled_read_seconds() == pytest.approx(
            snap["tiers.backing.read_s"][1] + snap["tiers.slow.read_s"][1]
        )

    def test_read_without_backing_raises(self):
        level = TierLevel(MemoryTier(FAST), budget_bytes=100)
        mgr = TierManager([level])
        with pytest.raises(KeyError):
            mgr.read(0)

    def test_eviction_makes_room_within_budget(self):
        mgr, _, _ = _manager(budgets=(3, 2))  # slow level holds 2 blobs
        for k in range(4):
            mgr.read(k)
        slow = mgr.levels[1]
        assert len(slow.entries) == 2
        assert slow.used_bytes <= slow.budget_bytes
        assert mgr.stats.snapshot()["tiers.evicted"][0] == 2

    def test_oversize_blob_rejected_not_admitted(self):
        mgr, _, _ = _manager(budgets=(1, 1), blob_size=10)
        assert not mgr.admit("huge", b"x" * 1000)
        assert mgr.stats.snapshot()["tiers.rejected_oversize"][0] == 1
        assert all(not lv.has("huge") for lv in mgr.levels)

    def test_invalidate_drops_the_replica(self):
        mgr, backing, _ = _manager()
        mgr.read(0)
        assert mgr.invalidate(0)
        assert not mgr.invalidate(0)
        mgr.read(0)
        assert backing.reads == 2  # refetched from the authoritative copy


class TestMigration:
    def test_hot_samples_promote_between_epochs(self):
        mgr, _, blobs = _manager(budgets=(2, 6))
        for _ in range(3):  # keys 0/1 are hot
            mgr.read(0)
            mgr.read(1)
        for k in range(2, 6):
            mgr.read(k)
        plan = mgr.plan_migrations()
        promoted = {m.key for m in plan.moves if m.kind == "promote"}
        assert {0, 1} <= promoted
        summary = mgr.end_epoch()
        assert summary["promote"] >= 2
        assert mgr.levels[0].has(0) and mgr.levels[0].has(1)
        # a promoted key is resident in exactly one managed level
        assert not mgr.levels[1].has(0)
        assert mgr.read(0) == blobs[0]

    def test_plan_is_deterministic_and_ranked_hottest_first(self):
        mgr, _, _ = _manager(budgets=(1, 6))
        for k in range(4):
            for _ in range(4 - k):  # 0 hottest, 3 coldest
                mgr.read(k)
        plan_a = mgr.plan_migrations()
        plan_b = mgr.plan_migrations()
        assert [m.to_json() for m in plan_a.moves] == [
            m.to_json() for m in plan_b.moves
        ]
        promotes = [m for m in plan_a.moves if m.kind == "promote"
                    and m.dst == "fast"]
        assert promotes[0].key == 0  # hottest first into the fast level

    def test_max_moves_caps_the_cycle(self):
        mgr, _, _ = _manager(budgets=(4, 8))
        for k in range(6):
            mgr.read(k)
        plan = mgr.plan_migrations(max_moves=2)
        assert len(plan) == 2
        summary = mgr.end_epoch(max_moves=1)
        assert sum(summary.values()) <= 1

    def test_window_resets_each_epoch(self):
        mgr, _, _ = _manager(budgets=(1, 6))
        mgr.read(5)  # hot only this epoch
        mgr.end_epoch()
        assert mgr.levels[0].has(5)
        for _ in range(3):
            mgr.read(2)  # next epoch 2 is the hot one
        mgr.end_epoch()
        assert mgr.levels[0].has(2) and not mgr.levels[0].has(5)

    def test_vanished_sample_skips_move(self):
        mgr, backing, _ = _manager(budgets=(2, 6))
        mgr.read(0)
        mgr.invalidate(0)  # known but resident nowhere: promote from backing
        plan = mgr.plan_migrations()
        assert any(m.src == "backing" for m in plan.moves)
        del backing.blobs[0]  # ...and then backing loses it too
        summary = mgr.apply(plan)
        assert summary.get("skipped_missing", 0) >= 1

    def test_stale_plan_against_moved_residency_is_skipped(self):
        mgr, _, _ = _manager(budgets=(2, 6))
        mgr.read(0)
        plan = mgr.plan_migrations()  # promote 0: slow -> fast
        mgr.apply(plan)
        assert mgr.apply(plan) == {}  # replaying it finds nothing to do


class TestVerifyBeforeAdmit:
    def _verified_manager(self, n=4):
        blobs = {i: _blob(i) for i in range(n)}
        size = max(len(b) for b in blobs.values())
        levels = [
            TierLevel(MemoryTier(FAST), budget_bytes=2 * size, name="fast"),
            TierLevel(MemoryTier(SLOW), budget_bytes=n * size, name="slow"),
        ]
        mgr = TierManager(levels, backing=_DictBacking(blobs),
                          backing_spec=PFS, verify=True)
        return mgr, blobs

    def test_corrupt_backing_read_raises_before_admit(self):
        mgr, blobs = self._verified_manager()
        # flip a bit in the checksummed label tail: structure parses, CRC fails
        mgr.backing.blobs[0] = blobs[0][:-1] + bytes([blobs[0][-1] ^ 0xFF])
        with pytest.raises(container.CorruptSampleError):
            mgr.read(0)
        assert all(not lv.has(0) for lv in mgr.levels)

    def test_corrupt_replica_never_promotes(self):
        mgr, blobs = self._verified_manager()
        for _ in range(3):
            mgr.read(0)
        # damage the replica inside the slow level after admission
        fname = mgr.levels[1]._fname(0)
        clean = mgr.levels[1].tier.read(fname)
        buf = bytearray(clean)
        buf[-1] ^= 0xFF
        mgr.levels[1].tier._blobs[fname] = bytes(buf)
        summary = mgr.end_epoch()
        assert summary.get("skipped_corrupt", 0) == 1
        # the poisoned replica was dropped, so the next read refetches
        # the authoritative bytes and serves them clean
        assert mgr.read(0) == blobs[0]
        snap = mgr.stats.snapshot()
        assert snap["tiers.verify_failures"][0] == 1


class TestRebalance:
    def test_rebalance_shifts_budget_to_the_fast_level(self):
        stats = StatsRegistry()
        mgr, _, _ = _manager(budgets=(1, 7), blob_size=10, stats=stats)
        for k in range(4):
            mgr.read(k)  # 40-byte working set, fast budget only 10
        change = mgr.rebalance()
        assert change is not None and "fast" in change
        assert mgr.levels[0].budget_bytes == pytest.approx(40.0)
        # total managed budget is conserved, surplus parked on the slowest
        assert sum(lv.budget_bytes for lv in mgr.levels) == pytest.approx(80.0)
        assert stats.snapshot()["tiers.rebalanced"][0] == 1
        assert mgr.rebalance() is None  # already optimal: no churn

    def test_rebalance_noop_without_observations(self):
        levels = [TierLevel(MemoryTier(FAST), budget_bytes=100)]
        assert TierManager(levels).rebalance() is None

    def test_shrunk_budget_evicts_down_to_it(self):
        mgr, _, _ = _manager(budgets=(8, 1), blob_size=10)
        for k in range(8):
            mgr.read(k)
        mgr.end_epoch()  # fills the fast level
        assert mgr.levels[0].used_bytes > 40
        mgr.levels[0].budget_bytes = 20.0
        mgr._shrink_to_budget(mgr.levels[0])
        assert mgr.levels[0].used_bytes <= 20


class TestStatusReporting:
    def test_status_counters_and_hit_rates(self):
        mgr, _, _ = _manager(budgets=(2, 6))
        for k in range(4):
            mgr.read(k)
        mgr.end_epoch()
        for k in range(4):
            mgr.read(k)
        status = mgr.status()
        assert {lv["name"] for lv in status["levels"]} == {"fast", "slow"}
        for field in ("hit_rate", "misses", "backing_reads", "promotions",
                      "demotions", "evictions", "rejected_oversize",
                      "verify_failures", "rebalances", "modeled_read_s"):
            assert field in status
        assert status["promotions"] > 0
        assert 0.0 < status["hit_rate"] <= 1.0
        rates = mgr.hit_rates()
        assert rates["overall"] == pytest.approx(status["hit_rate"])
        assert sum(
            rates[lv.name] for lv in mgr.levels
        ) == pytest.approx(rates["overall"])

    def test_unique_level_names_required(self):
        levels = [
            TierLevel(MemoryTier(FAST), budget_bytes=10, name="x"),
            TierLevel(MemoryTier(SLOW), budget_bytes=10, name="x"),
        ]
        with pytest.raises(ValueError):
            TierManager(levels)


class TestConcurrency:
    def test_readers_and_migrations_interleave_safely(self):
        mgr, _, blobs = _manager(n_keys=24, budgets=(4, 8))
        errors = []
        stop = threading.Event()

        def reader(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(300):
                    k = int(rng.integers(0, 24))
                    assert mgr.read(k) == blobs[k]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def migrator():
            try:
                while not stop.is_set():
                    mgr.run_migration()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(s,))
                   for s in range(6)]
        mig = threading.Thread(target=migrator)
        mig.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        mig.join()
        assert errors == []
        for lv in mgr.levels:
            assert 0 <= lv.used_bytes <= lv.budget_bytes
            assert lv.used_bytes == sum(lv.entries.values())


class TestTieredSource:
    def test_epoch_bit_identical_to_flat_source(self):
        blobs = [_blob(i) for i in range(8)]
        mgr, _, _ = _manager(budgets=(3, 5), blob_size=len(blobs[0]))
        mgr.backing = None
        src = TieredSource(ListSource(blobs), mgr)
        assert len(src) == 8
        for epoch in range(3):
            got = [src.read(i) for i in range(8)]
            assert got == blobs
            src.end_epoch()

    def test_stats_property_surfaces_status(self):
        blobs = [b"x" * 10] * 4
        mgr, _, _ = _manager()
        mgr.backing = None
        src = TieredSource(ListSource(blobs), mgr)
        src.read(0)
        assert src.stats["misses"] == 1
        assert src.inner is not None and src.manager is mgr

    def test_composes_under_retrying_source(self):
        from repro.robust import RetryingSource, RetryPolicy

        blobs = [_blob(i) for i in range(4)]
        mgr, _, _ = _manager(budgets=(2, 2), blob_size=len(blobs[0]))
        mgr.backing, mgr.verify = None, True
        src = RetryingSource(
            TieredSource(ListSource(blobs), mgr),
            RetryPolicy(max_attempts=2, base_delay_s=0.0),
        )
        assert [src.read(i) for i in range(4)] == blobs

    def test_collect_loader_stats_reports_tiers(self):
        from repro.tune.stats import collect_loader_stats

        blobs = [b"x" * 10] * 4
        mgr, _, _ = _manager()
        mgr.backing = None
        src = TieredSource(ListSource(blobs), mgr)
        src.read(0)

        class _Loader:
            def __init__(self):
                self.source = src
                self.stats = StatsRegistry()

            def stage_times(self):
                return {}

        out = collect_loader_stats(_Loader())
        assert out["tiers"]["misses"] == 1
        assert {lv["name"] for lv in out["tiers"]["levels"]} == {
            "fast", "slow"
        }

    def test_data_loader_epoch_through_the_hierarchy(self):
        from repro.core.plugins import DeepcamDeltaPlugin
        from repro.datasets import deepcam

        cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
        plugin = DeepcamDeltaPlugin("cpu")
        ds = deepcam.generate_dataset(8, cfg, seed=0)
        blobs = [plugin.encode(s.data, s.label) for s in ds]
        machine = resolve_machine("summit")
        mgr = build_hierarchy(
            machine, ram_budget_bytes=1e6, nvme_budget_bytes=1e6,
            verify=True,
        )
        flat = DataLoader(ListSource(blobs), plugin, batch_size=4, seed=0)
        tiered_src = TieredSource(ListSource(blobs), mgr)
        tiered = DataLoader(tiered_src, plugin, batch_size=4, seed=0)
        for epoch in range(2):
            ref = [(b.tobytes(), l.tobytes())
                   for b, l in flat.batches(epoch)]
            got = [(b.tobytes(), l.tobytes())
                   for b, l in tiered.batches(epoch)]
            assert got == ref
            tiered_src.end_epoch()
        assert mgr.status()["promotions"] > 0


class TestMigrationWorker:
    def test_run_once_synchronous(self):
        mgr, _, _ = _manager(budgets=(2, 6))
        for k in range(4):
            mgr.read(k)
        worker = MigrationWorker(mgr)
        summary = worker.run_once()
        assert worker.cycles == 1 and summary == worker.last_summary
        assert summary.get("promote", 0) > 0

    def test_background_trigger_and_stop(self):
        mgr, _, _ = _manager(budgets=(2, 6))
        for k in range(4):
            mgr.read(k)
        with MigrationWorker(mgr, max_moves=8) as worker:
            worker.trigger()
            assert worker.wait(timeout=5.0)
            assert worker.cycles == 1
            assert mgr.levels[0].has(0)
        assert worker._thread is None  # joined on exit

    def test_trigger_requires_started_thread(self):
        worker = MigrationWorker(_manager()[0])
        with pytest.raises(RuntimeError):
            worker.trigger()


class TestHierarchyBuilder:
    def test_builds_ram_and_nvme_levels(self, tmp_path):
        machine = resolve_machine("summit")
        mgr = build_hierarchy(
            machine, ram_budget_bytes=1e6, nvme_budget_bytes=2e6,
            nvme_dir=tmp_path / "nvme", policy="cost",
        )
        assert [lv.name for lv in mgr.levels] == ["ram", "nvme"]
        assert isinstance(mgr.levels[0].tier, MemoryTier)
        assert isinstance(mgr.levels[1].tier, Tier)
        assert isinstance(mgr.levels[0].policy, CostAwarePolicy)
        assert mgr.backing_spec is machine.pfs

    def test_zero_budget_omits_a_level(self):
        machine = resolve_machine("summit")
        mgr = build_hierarchy(
            machine, ram_budget_bytes=0, nvme_budget_bytes=1e6
        )
        assert [lv.name for lv in mgr.levels] == ["nvme"]
        with pytest.raises(ValueError):
            build_hierarchy(machine, ram_budget_bytes=0, nvme_budget_bytes=0)

    def test_budgets_clamped_to_physical_capacity(self):
        machine = resolve_machine("summit")
        mgr = build_hierarchy(
            machine, ram_budget_bytes=1e30, nvme_budget_bytes=1e6
        )
        assert mgr.levels[0].budget_bytes <= machine.cache_bytes


class TestCostModelTierHelpers:
    def test_host_ram_tierspec(self):
        machine = resolve_machine("summit")
        ram = host_ram_tierspec(machine)
        assert ram.read_bw_gbps == machine.cpu.mem_bw_gbps
        assert ram.capacity_bytes == machine.cache_bytes

    def test_machine_tier_specs_fastest_first(self):
        machine = resolve_machine("summit")
        ram, nvme, pfs = machine_tier_specs(machine)
        assert ram.read_bw_gbps > nvme.read_bw_gbps > pfs.read_bw_gbps
        assert nvme is machine.nvme and pfs is machine.pfs

    def test_expected_read_seconds_blends_tiers(self):
        t = expected_read_seconds([FAST, SLOW], [0.5, 0.5], 1000)
        assert t == pytest.approx(
            0.5 * read_time(FAST, 1000) + 0.5 * read_time(SLOW, 1000)
        )
        # all-fast beats any blend
        assert expected_read_seconds([FAST, SLOW], [1.0, 0.0], 1000) < t

    def test_expected_read_seconds_validation(self):
        with pytest.raises(ValueError):
            expected_read_seconds([FAST], [0.5, 0.5], 10)
        with pytest.raises(ValueError):
            expected_read_seconds([FAST, SLOW], [0.9, 0.3], 10)
        with pytest.raises(ValueError):
            expected_read_seconds([FAST, SLOW], [1.2, -0.2], 10)


class _FakeExecutor:
    def __init__(self):
        self.num_workers = 2
        self.prefetch_depth = 2


class _FakeLoader:
    def __init__(self):
        self.stats = StatsRegistry()
        self.executor = _FakeExecutor()

    def reconfigure(self, num_workers=None, prefetch_depth=None):
        if num_workers is not None:
            self.executor.num_workers = num_workers
        if prefetch_depth is not None:
            self.executor.prefetch_depth = prefetch_depth


class TestControllerTierIntegration:
    def _obs(self, loader, epoch_s=10.0):
        from repro.tune import EpochObservation

        return EpochObservation(
            epoch_s=epoch_s, starvation=0.0, occupancy=0.8,
            num_workers=loader.executor.num_workers,
            prefetch_depth=loader.executor.prefetch_depth,
        )

    def test_settled_knobs_let_the_tiers_rebalance(self):
        from repro.tune import AdaptiveController

        mgr, _, _ = _manager(budgets=(1, 7), blob_size=10)
        for k in range(4):
            mgr.read(k)
        loader = _FakeLoader()
        ctl = AdaptiveController(loader, tier_manager=mgr)
        action = ctl.observe(self._obs(loader))
        assert action.startswith("rebalance tiers:")
        assert not ctl.converged  # a rebalance is an action, not a hold
        # next epoch the split is already optimal: back to holding
        assert ctl.observe(self._obs(loader)) == "hold"
        assert ctl.tier_hit_rates is not None

    def test_without_manager_behavior_unchanged(self):
        from repro.tune import AdaptiveController

        loader = _FakeLoader()
        ctl = AdaptiveController(loader)
        assert ctl.tier_hit_rates is None
        assert ctl.observe(self._obs(loader)) == "hold"
