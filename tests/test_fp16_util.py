"""Tests for floating-point decomposition and codec-grid quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.fp16 import (
    MANTISSA_BITS,
    compose_float32,
    decompose_float32,
    dequantize_magnitude,
    quantize_magnitude,
)

_SENTINEL = np.iinfo(np.int32).min


class TestDecompose:
    def test_exact_roundtrip(self):
        x = np.array([1.0, -2.5, 0.375, 1e-10, -7.25e8], dtype=np.float32)
        s, e, f = decompose_float32(x)
        assert np.array_equal(compose_float32(s, e, f), x)

    def test_zero_sentinel(self):
        s, e, f = decompose_float32(np.array([0.0], dtype=np.float32))
        assert e[0] == _SENTINEL and f[0] == 0.0
        assert compose_float32(s, e, f)[0] == 0.0

    def test_unit_values(self):
        _, e, f = decompose_float32(np.array([1.0, 2.0, 0.5], dtype=np.float32))
        assert list(e) == [0, 1, -1]
        assert np.allclose(f, 0.0)

    def test_sign_bit(self):
        s, _, _ = decompose_float32(np.array([3.0, -3.0], dtype=np.float32))
        assert list(s) == [0, 1]

    @given(st.floats(min_value=1e-30, max_value=1e30, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, v):
        x = np.array([v], dtype=np.float32)
        s, e, f = decompose_float32(x)
        assert compose_float32(s, e, f)[0] == x[0]


class TestQuantize:
    def test_relative_error_bound(self):
        # quantization to 4 mantissa bits: relative error <= 2^-(M+1)
        # (excluding +2^emin exactly, which the reserved-byte nudge moves
        # by one mantissa step — covered by test_reserved_byte_nudge)
        vals = np.array([1.1, 1.3, 7.9, 2.0, 3.999], dtype=np.float32)
        s, e, m = quantize_magnitude(vals, 0)
        back = dequantize_magnitude(s, e, m, 0)
        rel = np.abs(back - vals) / vals
        assert rel.max() <= 2.0 ** -(MANTISSA_BITS + 1) + 1e-6

    def test_zero_maps_to_reserved_byte(self):
        s, e, m = quantize_magnitude(np.array([0.0], dtype=np.float32), -5)
        assert (s[0], e[0], m[0]) == (0, 0, 0)
        assert dequantize_magnitude(s, e, m, -5)[0] == 0.0

    def test_reserved_byte_nudge(self):
        # exact +2^emin must NOT collide with the zero byte
        s, e, m = quantize_magnitude(np.array([1.0], dtype=np.float32), 0)
        assert (s[0], e[0], m[0]) != (0, 0, 0)
        back = dequantize_magnitude(s, e, m, 0)[0]
        assert abs(back - 1.0) / 1.0 <= 2.0**-MANTISSA_BITS + 1e-6

    def test_negative_2_pow_emin_is_exact(self):
        s, e, m = quantize_magnitude(np.array([-1.0], dtype=np.float32), 0)
        assert dequantize_magnitude(s, e, m, 0)[0] == -1.0

    def test_below_emin_raises(self):
        with pytest.raises(ValueError):
            quantize_magnitude(np.array([0.25], dtype=np.float32), 0)

    def test_rounding_carry_at_top_bin_clamps(self):
        # 255.9 has E = 7; mantissa rounds up, carrying to E=8 -> clamped
        val = np.array([255.9], dtype=np.float32)
        s, e, m = quantize_magnitude(val, 0)
        assert e[0] == 7 and m[0] == 15
        back = dequantize_magnitude(s, e, m, 0)[0]
        assert abs(back - 255.9) / 255.9 < 0.04

    def test_signs_preserved(self):
        vals = np.array([3.0, -3.0], dtype=np.float32)
        s, e, m = quantize_magnitude(vals, 1)
        back = dequantize_magnitude(s, e, m, 1)
        assert back[0] > 0 and back[1] < 0
        assert back[0] == -back[1]

    @given(
        st.floats(min_value=1.0, max_value=255.0, allow_nan=False),
        st.integers(min_value=-50, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_quantize_property(self, mag, emin):
        # scale magnitude into the segment window [2^emin, 2^(emin+8))
        v = np.array([mag * 2.0**emin], dtype=np.float32)
        if not np.isfinite(v[0]) or v[0] == 0.0:
            return
        s, e, m = quantize_magnitude(v, emin)
        back = dequantize_magnitude(s, e, m, emin)
        rel = abs(back[0] - v[0]) / v[0]
        assert rel <= 2.0**-MANTISSA_BITS + 1e-6
