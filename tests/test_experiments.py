"""Tests for the exhibit harnesses (scaled-down runs of every figure)."""

import numpy as np
import pytest

from repro.experiments import (
    claims,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    tables,
)
from repro.experiments.harness import ExperimentResult, format_table
from repro.simulate import CORI_V100, SUMMIT


class TestHarness:
    def test_result_add_and_column(self):
        res = ExperimentResult("X", "t", headers=["a", "b"])
        res.add(1, 2.0)
        res.add(3, 4.0)
        assert res.column("b") == [2.0, 4.0]
        with pytest.raises(ValueError):
            res.add(1)

    def test_format_table_alignment(self):
        out = format_table(["col", "x"], [[1, 2.5], ["long-value", 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) or True for l in lines)
        assert "long-value" in out

    def test_render_includes_findings(self):
        res = ExperimentResult("Fig X", "demo", headers=["a"])
        res.add(1)
        res.findings = {"speedup": 3.0}
        text = res.render()
        assert "Fig X" in text and "speedup" in text


class TestTables:
    def test_table1_matches_paper(self):
        res = tables.table1()
        rows = {r[0]: r[1:] for r in res.rows}
        assert rows["GPUs per node"] == [6, 8, 8]
        assert rows["Tensorcore TF/s"] == [120.0, 120.0, 312.0]
        assert rows["Host Memory (GB)"] == [512, 384, 1056]
        assert rows["NVMe Read BW (GiB/s)"] == pytest.approx([5.5, 3.2, 24.3],
                                                             rel=0.01)

    def test_table2_matches_paper(self):
        res = tables.table2()
        rows = {r[0]: r[1:] for r in res.rows}
        assert rows["Framework"][:3] == ["TF 2.5"] * 3
        assert rows["Framework"][3:] == ["PT 1.10", "PT 1.8", "PT 1.9"]
        assert set(rows["DALI"]) == {"1.9.0"}


class TestFig5:
    def test_properties_hold(self):
        res = fig5.run(n_samples=3, grid=16, verbose=False)
        assert all(v == "yes" for v in res.column("16-bit keys"))
        assert res.findings["mean log-log slope (power law <= -1)"] < -1.0
        assert 10 < res.findings["mean unique values"] < 2000


class TestFig6:
    def test_convergence_identical(self):
        res = fig6.run(n_samples=6, epochs=2, height=16, width=24,
                       n_channels=4, base_filters=2, verbose=False)
        # paper: "identical convergence behavior"
        assert res.findings["max |diff| / loss span"] < 0.05
        # "... also seen in the loss function of the validation samples"
        assert res.findings["max val |diff| / train span"] < 0.05
        assert res.findings["loss drop base"] > 0  # it actually learns


class TestFig7:
    def test_convergence_preserved_across_reps(self):
        res = fig7.run(repetitions=2, n_samples=6, epochs=3, grid=8,
                       verbose=False)
        ratio = res.findings["decoded/base final loss ratio"]
        assert 0.5 < ratio < 1.5  # preserved (paper: decoded slightly better)
        base_curve = res.column("base mean")
        assert base_curve[-1] < base_curve[0]  # learning happens


class TestFig8:
    def test_grid_shape_and_speedups(self):
        res = fig8.run(machines=(CORI_V100,), batch_sizes=(4,),
                       dataset_sizes={"small": 1536}, sim_samples_cap=32,
                       verbose=False)
        assert len(res.rows) == 2  # staged + unstaged
        for row in res.rows:
            su_gpu = row[res.headers.index("speedup gpu")]
            assert su_gpu > 1.5


class TestFig9:
    def test_plugin_removes_cpu_time(self):
        res = fig9.run(machines=(CORI_V100,), sim_samples_cap=32,
                       verbose=False)
        idx_cpu = res.headers.index("cpu_preprocess")
        by_plugin = {r[1]: r for r in res.rows}
        assert by_plugin["gpu"][idx_cpu] == 0.0
        assert by_plugin["base"][idx_cpu] > by_plugin["cpu"][idx_cpu] > 0
        # sync_wait (allreduce variability) shrinks with the plugin
        idx_sync = res.headers.index("sync_wait")
        assert by_plugin["gpu"][idx_sync] < by_plugin["base"][idx_sync]


class TestFig10:
    def test_speedups_and_gzip(self):
        res = fig10.run(machines=(SUMMIT,), batch_sizes=(1, 4),
                        sim_samples_cap=32, verbose=False)
        assert res.findings["max plugin speedup Summit"] > 4
        assert 1.0 < res.findings["max gzip slowdown"] < 2.0


class TestFig11:
    def test_large_set_findings(self):
        res = fig11.run(machines=(CORI_V100,), batch_sizes=(4,),
                        sim_samples_cap=32, verbose=False)
        assert res.findings["max plugin speedup Cori-V100"] > 6
        assert 1.1 < res.findings["staging gain Cori-V100"] < 2.2


class TestFig12:
    def test_base_cpu_dominates_plugin_does_not(self):
        res = fig12.run(machines=(CORI_V100,), sim_samples_cap=32,
                        verbose=False)
        f = res.findings
        assert f["Cori-V100/base cpu/gpu ratio"] > 5  # GPU underutilized
        assert f["Cori-V100/plugin cpu/gpu ratio"] == 0
        assert f["Cori-V100 decode share of gpu time"] < 0.01


class TestClaims:
    def test_claims_table(self):
        res = claims.run(verbose=False)
        f = res.findings
        assert f["deepcam frac >10% err"] < 0.05
        assert 3.0 < f["lut ratio"] < 5.0
        assert 3.0 < f["gzip ratio"] < 7.0
        assert 0.01 < f["deepcam decode share"] < 0.08
        assert f["cosmoflow decode share"] < 0.01


class TestTuning:
    def test_search_matches_paper_everywhere(self):
        from repro.experiments import tuning

        res = tuning.run(quiet=True)
        assert len(res.rows) == 6  # 3 machines x 2 workloads
        f = res.findings
        assert f["all_converged"] == 1.0
        # acceptance: searched config matches/beats the paper's on every
        # cell, and the cost model agrees with the what-if within 15%
        assert f["min_ratio_vs_paper"] >= 0.999
        assert f["max_prediction_error"] < 0.15


class TestMainDriver:
    def test_runs_named_exhibit(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out

    def test_runs_tuning_exhibit(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["tuning"]) == 0
        out = capsys.readouterr().out
        assert "min_ratio_vs_paper" in out

    def test_rejects_unknown(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig99"]) == 2
        assert "unknown exhibits" in capsys.readouterr().out


class TestRenderBars:
    def test_bars_scale_to_peak(self):
        from repro.experiments.harness import render_bars

        out = render_bars(["a", "bb"], [2.0, 4.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10
        assert "4.0" in lines[1]

    def test_validation_and_empty(self):
        from repro.experiments.harness import render_bars

        assert render_bars([], []) == ""
        with pytest.raises(ValueError):
            render_bars(["a"], [])

    def test_zero_peak(self):
        from repro.experiments.harness import render_bars

        out = render_bars(["x"], [0.0])
        assert "#" not in out
