"""Tests for the ASPP block and the DeepLabv3+-style model variant."""

import numpy as np
import pytest

from repro.ml import SGD, Trainer, WarmupSchedule, build_deepcam
from repro.ml.aspp import ASPP
from repro.ml.losses import softmax_cross_entropy

_RNG = np.random.default_rng(4)


class TestASPPBlock:
    def test_output_shape(self):
        aspp = ASPP("a", in_channels=4, out_channels=8, rates=(1, 2, 4))
        x = _RNG.standard_normal((2, 4, 12, 16)).astype(np.float32)
        y = aspp.forward(x)
        assert y.shape == (2, 8, 12, 16)

    def test_params_cover_all_branches(self):
        aspp = ASPP("a", 4, 8, rates=(1, 2, 4), seed=1)
        names = [n for n, _ in aspp.param_items()]
        assert any("a.b0" in n for n in names)
        assert any("a.b2" in n for n in names)
        assert any("a.proj" in n for n in names)

    def test_rate_one_uses_1x1(self):
        aspp = ASPP("a", 4, 8, rates=(1, 2))
        assert aspp.branches[0][0].k == 1
        assert aspp.branches[1][0].k == 3
        assert aspp.branches[1][0].dilation == 2

    def test_gradients_flow_to_every_branch(self):
        aspp = ASPP("a", 2, 4, rates=(1, 2), seed=2)
        x = _RNG.standard_normal((1, 2, 8, 8)).astype(np.float32)
        y = aspp.forward(x)
        dx = aspp.backward(np.ones_like(y))
        assert dx.shape == x.shape
        grads = aspp.grad_items()
        for i in range(2):
            assert np.abs(grads[f"a.b{i}.w"]).sum() > 0

    def test_gradcheck_branch_weight(self):
        aspp = ASPP("a", 2, 3, rates=(1, 2), seed=3)
        rng = np.random.default_rng(10)
        x = rng.standard_normal((2, 2, 8, 8)).astype(np.float32)
        y = aspp.forward(x.copy())
        dy = rng.standard_normal(y.shape).astype(np.float32)
        aspp.backward(dy)
        grads = aspp.grad_items()
        conv = aspp.branches[1][0]
        flat = conv.params["w"].reshape(-1)
        g = grads["a.b1.w"].reshape(-1)
        eps = 1e-3
        for i in rng.choice(flat.size, 4, replace=False):
            orig = flat[i]
            flat[i] = orig + eps
            l1 = float((aspp.forward(x, training=False).astype(np.float64)
                        * dy).sum())
            flat[i] = orig - eps
            l2 = float((aspp.forward(x, training=False).astype(np.float64)
                        * dy).sum())
            flat[i] = orig
            fd = (l1 - l2) / (2 * eps)
            assert abs(fd - g[i]) / max(abs(fd), abs(g[i]), 1e-3) < 2e-2

    def test_empty_rates_rejected(self):
        with pytest.raises(ValueError):
            ASPP("a", 2, 2, rates=())


class TestAsppModel:
    def test_shapes_and_param_registration(self):
        m = build_deepcam(in_channels=4, base_filters=4, use_aspp=True)
        x = _RNG.standard_normal((2, 4, 16, 24)).astype(np.float32)
        assert m.forward(x).shape == (2, 3, 16, 24)
        assert any("mid.b" in k for k in m.parameters())
        assert m.n_parameters() > build_deepcam(
            in_channels=4, base_filters=4
        ).n_parameters() * 0  # sanity: parameters counted

    def test_aspp_model_trains(self):
        m = build_deepcam(in_channels=4, base_filters=4, seed=2,
                          use_aspp=True)
        x = _RNG.standard_normal((2, 4, 16, 24)).astype(np.float32)
        y = _RNG.integers(0, 3, (2, 16, 24))
        trainer = Trainer(
            m, lambda p, t: softmax_cross_entropy(p, t),
            SGD(m.parameters(), WarmupSchedule(base_lr=0.05, warmup_steps=2),
                momentum=0.9),
            mixed_precision=True,
        )
        for _ in range(12):
            trainer.train_step(x, y)
        assert trainer.history.step_losses[-1] < trainer.history.step_losses[0]

    def test_checkpoint_roundtrip_with_aspp(self, tmp_path):
        from repro.ml.checkpoint import restore_model, save_checkpoint

        m = build_deepcam(in_channels=2, base_filters=2, seed=5,
                          use_aspp=True)
        path = tmp_path / "aspp.rpck"
        save_checkpoint(path, m)
        fresh = build_deepcam(in_channels=2, base_filters=2, seed=99,
                              use_aspp=True)
        restore_model(path, fresh)
        for k, v in m.parameters().items():
            assert np.array_equal(fresh.parameters()[k], v)
