"""Tests for the DeepCAM differential line codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.encoding.delta import (
    LINE_CONST,
    LINE_DELTA,
    LINE_RAW,
    DeltaCodecConfig,
    decode_image,
    decode_line,
    encode_image,
)


def _smooth_image(h=16, w=128, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.normal(0, 0.01 * scale, size=(h, w)), axis=1)
    return (x + scale).astype(np.float32)


class TestLineModes:
    def test_constant_line(self):
        img = np.full((4, 64), 3.25, dtype=np.float32)
        enc = encode_image(img)
        assert all(m == LINE_CONST for m in enc.line_modes)
        out = decode_image(enc)
        assert np.all(out == np.float16(3.25))

    def test_constant_line_is_tiny(self):
        img = np.full((1, 1024), -7.5, dtype=np.float32)
        enc = encode_image(img)
        assert enc.line_offsets[-1] == 4  # one FP32 pivot

    def test_smooth_line_is_delta(self):
        img = _smooth_image()
        enc = encode_image(img)
        assert np.count_nonzero(enc.line_modes == LINE_DELTA) == img.shape[0]

    def test_abrupt_line_is_raw(self):
        rng = np.random.default_rng(3)
        # white noise spanning many binades forces literal fallback on most
        # segments -> RAW classification
        img = (rng.standard_normal((4, 128)) * 10.0 ** rng.integers(
            -6, 6, size=(4, 128)).astype(np.float64)).astype(np.float32)
        enc = encode_image(img)
        assert np.count_nonzero(enc.line_modes == LINE_RAW) >= 3

    def test_raw_lines_keep_full_precision(self):
        rng = np.random.default_rng(4)
        img = (rng.standard_normal((2, 64)) * 10.0 ** rng.integers(
            -6, 6, size=(2, 64)).astype(np.float64)).astype(np.float32)
        enc = encode_image(img)
        out = decode_image(enc)
        raw_rows = enc.line_modes == LINE_RAW
        assert np.array_equal(
            out[raw_rows], img[raw_rows].astype(np.float16)
        )

    def test_width_one_image(self):
        img = np.array([[1.5], [2.5]], dtype=np.float32)
        enc = encode_image(img)
        assert all(m == LINE_CONST for m in enc.line_modes)
        assert np.array_equal(decode_image(enc).ravel(), np.float16([1.5, 2.5]))


class TestAccuracy:
    def test_quality_gate_bounds_error(self):
        cfg = DeltaCodecConfig(rel_tol=0.05, rel_floor=0.01)
        img = _smooth_image(h=8, w=256, seed=1)
        enc = encode_image(img, cfg)
        out = decode_image(enc).astype(np.float32)
        scale = np.abs(img).max()
        significant = np.abs(img) > 0.01 * scale
        rel = np.abs(out - img)[significant] / np.abs(img)[significant]
        # FP16 output adds <=0.05% on top of the 5% encode gate
        assert rel.max() <= 0.055

    def test_tighter_tolerance_gives_lower_error(self):
        img = _smooth_image(h=8, w=256, seed=2)
        errs = []
        for tol in (0.10, 0.01):
            enc = encode_image(img, DeltaCodecConfig(rel_tol=tol))
            out = decode_image(enc).astype(np.float32)
            errs.append(float(np.abs(out - img).max()))
        assert errs[1] <= errs[0]

    def test_tighter_tolerance_costs_space(self):
        img = _smooth_image(h=8, w=256, seed=2)
        loose = encode_image(img, DeltaCodecConfig(rel_tol=0.10))
        tight = encode_image(img, DeltaCodecConfig(rel_tol=0.005))
        assert tight.nbytes >= loose.nbytes

    def test_compresses_smooth_data(self):
        img = _smooth_image(h=32, w=512)
        enc = encode_image(img)
        assert enc.nbytes < img.nbytes / 2  # ~1 byte per 4-byte value + meta

    def test_nan_survives_via_fallback(self):
        img = _smooth_image(h=2, w=64)
        img[0, 10] = np.nan
        enc = encode_image(img)
        out = decode_image(enc)
        assert np.isnan(out[0, 10])
        assert not np.isnan(out[1]).any()


class TestIndependentLineDecode:
    def test_single_line_matches_full_decode(self):
        img = _smooth_image(h=12, w=200, seed=5)
        img[3] = 42.0  # a const line
        enc = encode_image(img)
        full = decode_image(enc)
        for i in range(img.shape[0]):
            assert np.array_equal(decode_line(enc, i), full[i])

    def test_line_decode_out_of_range(self):
        enc = encode_image(_smooth_image(h=2, w=16))
        with pytest.raises(IndexError):
            decode_line(enc, 2)

    def test_offsets_are_monotone(self):
        enc = encode_image(_smooth_image(h=10, w=100, seed=6))
        offs = enc.line_offsets.astype(np.int64)
        assert np.all(np.diff(offs) > 0)
        assert offs[-1] == len(enc.payload)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"block_size": 0},
            {"rel_tol": 0.0},
            {"rel_tol": 1.0},
            {"rel_floor": -0.1},
            {"max_literal_frac": 0.0},
            {"max_literal_frac": 1.5},
        ],
    )
    def test_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            DeltaCodecConfig(**kwargs)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            encode_image(np.zeros(8, dtype=np.float32))

    def test_decode_out_buffer_validation(self):
        enc = encode_image(_smooth_image(h=2, w=16))
        with pytest.raises(ValueError):
            decode_image(enc, out=np.empty((2, 16), dtype=np.float32))
        with pytest.raises(ValueError):
            decode_image(enc, out=np.empty((3, 16), dtype=np.float16))

    def test_block_size_variants_roundtrip(self):
        img = _smooth_image(h=4, w=130, seed=7)
        for bs in (1, 7, 64, 200):
            enc = encode_image(img, DeltaCodecConfig(block_size=bs))
            out = decode_image(enc).astype(np.float32)
            scale = np.abs(img).max()
            sig = np.abs(img) > 0.01 * scale
            rel = np.abs(out - img)[sig] / np.abs(img)[sig]
            assert rel.max() <= 0.055, f"block_size={bs}"


class TestProperties:
    @given(
        hnp.arrays(
            np.float32,
            shape=st.tuples(st.integers(1, 6), st.integers(1, 80)),
            elements=st.floats(
                min_value=-1e4, max_value=1e4, allow_nan=False,
                width=32,
            ),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_never_exceeds_gate(self, img):
        cfg = DeltaCodecConfig()
        enc = encode_image(img, cfg)
        out = decode_image(enc).astype(np.float32)
        assert out.shape == img.shape
        scale = float(np.abs(img).max()) if img.size else 0.0
        if scale == 0.0:
            assert np.all(out == 0.0)
            return
        if scale < 1e-4:
            # below FP16's usable range the output format itself cannot
            # honour any relative-error bound (the paper's decoder emits
            # FP16 too); real samples are normalized well above this
            return
        sig = np.abs(img) > cfg.rel_floor * scale
        if sig.any():
            rel = np.abs(out - img)[sig] / np.abs(img)[sig]
            # encode gate 5% + FP16 cast 0.05%
            assert rel.max() <= cfg.rel_tol + 1e-3

    @given(
        hnp.arrays(
            np.float32,
            shape=st.tuples(st.integers(1, 4), st.integers(2, 60)),
            elements=st.floats(
                min_value=-100, max_value=100, allow_nan=False, width=32
            ),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_line_independence_property(self, img):
        enc = encode_image(img)
        full = decode_image(enc)
        i = img.shape[0] - 1
        assert np.array_equal(decode_line(enc, i), full[i])
