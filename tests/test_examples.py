"""Smoke tests: every example script runs end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs as a subprocess with reduced arguments where the
script accepts them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

pytestmark = pytest.mark.slow


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        proc = _run("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "bit-exact vs FP16 reference: True" in proc.stdout
        assert "lossy, near-zero values only" in proc.stdout

    def test_train_cosmoflow(self):
        proc = _run("train_cosmoflow.py", "--samples", "8", "--epochs", "2",
                    "--grid", "8")
        assert proc.returncode == 0, proc.stderr
        assert "convergence preserved" in proc.stdout

    def test_train_deepcam(self):
        proc = _run("train_deepcam.py", "--samples", "8", "--epochs", "3",
                    "--height", "16", "--width", "24", "--channels", "4")
        assert proc.returncode == 0, proc.stderr
        assert "validation per-class pixel recall" in proc.stdout

    def test_distributed_training(self):
        proc = _run("distributed_training.py", "--ranks", "2",
                    "--samples", "8", "--epochs", "2")
        assert proc.returncode == 0, proc.stderr
        assert "bit-identical after training" in proc.stdout

    def test_performance_model(self):
        proc = _run("performance_model.py")
        assert proc.returncode == 0, proc.stderr
        assert "Figure-10 row" in proc.stdout
        assert "interconnect sweep" in proc.stdout

    def test_new_workload_template(self):
        proc = _run("new_workload_template.py")
        assert proc.returncode == 0, proc.stderr
        assert "codec='delta'" in proc.stdout
        assert "the template transfers" in proc.stdout
