"""The networked data path under transport faults and corruption.

The robustness acceptance criteria for ``repro.serve`` live here:
dropped connections and truncated or CRC-damaged response frames are
retried with backoff and surface as ``CorruptSampleError``/quarantine —
the trainer never silently consumes wrong bytes.

Wire-level faults are produced by a :class:`ScriptedServer`, a
hand-driven protocol peer that misbehaves on request (corrupting,
truncating, or dropping specific responses); end-to-end payload faults
reuse :class:`~repro.robust.faults.FaultInjector` around a real
:class:`~repro.serve.client.RemoteSource`.
"""

import socket
import threading

import pytest

from repro.core.encoding.container import CorruptSampleError
from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.pipeline import DataLoader, ListSource
from repro.robust import FaultInjector, FaultPlan, RetryingSource, RetryPolicy
from repro.serve import DataServer, RemoteSource, protocol


@pytest.fixture(scope="module")
def blobs():
    cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(10, cfg, seed=13)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


class ScriptedServer:
    """Protocol peer that misbehaves per a script of READ behaviors.

    ``INFO`` is always answered honestly (the client handshakes with it);
    each ``READ`` consumes the next scripted behavior:

    * ``"ok"`` — correct response frame (also after the script runs out);
    * ``"corrupt"`` — flip a body byte, leave the CRC (payload damaged,
      stream still in sync);
    * ``"truncate"`` — send half the frame, then close (stream broken);
    * ``"drop"`` — close without responding.
    """

    def __init__(self, blobs, behaviors):
        self.blobs = blobs
        self.behaviors = list(behaviors)
        self.connections = 0
        self._closing = False
        self._listen = socket.create_server(("127.0.0.1", 0))
        self._listen.settimeout(0.05)
        self.address = self._listen.getsockname()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def close(self):
        self._closing = True
        self._thread.join(timeout=5.0)
        self._listen.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def _loop(self):
        while not self._closing:
            try:
                conn, _ = self._listen.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections += 1
            try:
                self._serve(conn)
            except OSError:
                pass

    def _serve(self, conn):
        with conn:
            conn.settimeout(0.05)
            while not self._closing:
                try:
                    frame = protocol.recv_frame(conn, frame_timeout_s=2.0)
                except socket.timeout:
                    continue
                except (protocol.ProtocolError, OSError):
                    return
                if frame is None:
                    return
                kind, body = frame
                if kind == protocol.OP_INFO:
                    conn.sendall(protocol.pack_frame(
                        protocol.ST_OK,
                        protocol.pack_json(
                            {"n_samples": len(self.blobs), "world_size": 1}
                        ),
                    ))
                    continue
                index = protocol.unpack_read(body)
                behavior = self.behaviors.pop(0) if self.behaviors else "ok"
                payload = self.blobs[index]
                wire = protocol.pack_frame(protocol.ST_OK, payload)
                if behavior == "ok":
                    conn.sendall(wire)
                elif behavior == "corrupt":
                    buf = bytearray(wire)
                    buf[protocol._HEAD.size + len(payload) // 2] ^= 0x20
                    conn.sendall(bytes(buf))
                elif behavior == "truncate":
                    conn.sendall(wire[: len(wire) // 2])
                    return
                elif behavior == "drop":
                    return
                else:  # pragma: no cover - script typo guard
                    raise AssertionError(behavior)


def _fast_retry(inner, **kw):
    return RetryingSource(
        inner,
        RetryPolicy(max_attempts=4, base_delay_s=0.001, max_delay_s=0.002),
        sleep=lambda s: None,
        **kw,
    )


class TestWireFaults:
    def test_corrupt_frame_surfaces_without_dropping_connection(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, ["corrupt"]) as server:
            src = RemoteSource(*server.address)
            with pytest.raises(CorruptSampleError) as exc_info:
                src.read(3)
            assert exc_info.value.sample_id == 3
            assert exc_info.value.section == "frame"
            # stream still in sync: the very next read succeeds on the
            # same connection (no reconnect)
            assert src.read(3) == raw[3]
            assert server.connections == 1
            src.close()

    def test_truncated_frame_breaks_stream_then_reconnects(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, ["truncate"]) as server:
            src = RemoteSource(*server.address)
            with pytest.raises(ConnectionError):
                src.read(0)
            assert src.read(0) == raw[0]  # transparent reconnect
            assert server.connections == 2
            src.close()

    def test_dropped_connection_raises_then_reconnects(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, ["drop"]) as server:
            src = RemoteSource(*server.address)
            with pytest.raises(ConnectionError):
                src.read(5)
            assert src.read(5) == raw[5]
            assert server.connections == 2
            src.close()

    def test_retrying_source_rides_out_wire_faults(self, blobs):
        """Each fault class is retryable: the trainer sees clean bytes."""
        _, raw = blobs
        script = ["corrupt", "drop", "truncate", "ok"]
        with ScriptedServer(raw, script) as server:
            src = _fast_retry(RemoteSource(*server.address))
            assert src.read(7) == raw[7]
            assert src.stats.retries == 3
            src.inner.close()

    def test_exhausted_retries_surface_the_corruption(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, ["corrupt"] * 10) as server:
            src = _fast_retry(RemoteSource(*server.address))
            with pytest.raises(CorruptSampleError):
                src.read(1)
            src.inner.close()


class TestEndToEndFaultStack:
    def test_transient_faults_yield_bit_identical_epoch(self, blobs):
        """Seeded transient I/O faults on the remote path change nothing."""
        plugin, raw = blobs

        def epoch(src):
            loader = DataLoader(src, plugin, batch_size=2, seed=3)
            return [
                (b.tobytes(), l.tobytes()) for b, l in loader.batches(0)
            ]

        reference = epoch(ListSource(raw))
        with DataServer(ListSource(raw)) as server:
            remote = RemoteSource(*server.address)
            flaky = FaultInjector(
                remote, FaultPlan(io_error_rate=0.3, seed=17)
            )
            assert epoch(_fast_retry(flaky, verify=True)) == reference
            assert flaky.stats.total_injected > 0
            remote.close()

    def test_permanent_corruption_quarantined_never_wrong_bytes(self, blobs):
        """The full stack: DataServer → RemoteSource → FaultInjector →
        RetryingSource(verify) → DataLoader(skip) quarantines exactly the
        corrupted ids and decodes everything else bit-identically."""
        plugin, raw = blobs
        bad = {2, 6}
        with DataServer(ListSource(raw)) as server:
            remote = RemoteSource(*server.address)
            stack = _fast_retry(
                FaultInjector(remote, FaultPlan(corrupt_ids=bad, seed=1)),
                verify=True,
            )
            loader = DataLoader(
                stack, plugin, batch_size=2, seed=3, bad_sample_policy="skip"
            )
            order = loader.epoch_order(0)
            good = [i for i in order.tolist() if i not in bad]
            rows = []
            for batch, _labels in loader.batches(0):
                rows.extend(row.tobytes() for row in batch)
            remote.close()
        assert set(loader.quarantine.ids()) == bad
        assert rows == [plugin.decode(raw[i])[0].tobytes() for i in good]
