"""The networked data path under transport faults and corruption.

The robustness acceptance criteria for ``repro.serve`` live here:
dropped connections and truncated or CRC-damaged response frames are
retried with backoff and surface as ``CorruptSampleError``/quarantine —
the trainer never silently consumes wrong bytes.

Wire-level faults are produced by a :class:`ScriptedServer`, a
hand-driven protocol peer that misbehaves on request (corrupting,
truncating, or dropping specific responses); end-to-end payload faults
reuse :class:`~repro.robust.faults.FaultInjector` around a real
:class:`~repro.serve.client.RemoteSource`.
"""

import socket
import threading
import time

import pytest

from repro.core.encoding.container import CorruptSampleError
from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.pipeline import DataLoader, ListSource
from repro.robust import FaultInjector, FaultPlan, RetryingSource, RetryPolicy
from repro.serve import DataServer, RemoteSource, ServerBusyError, protocol


@pytest.fixture(scope="module")
def blobs():
    cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(10, cfg, seed=13)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


class ScriptedServer:
    """Protocol peer that misbehaves per a script of READ behaviors.

    ``INFO`` is always answered honestly (the client handshakes with it);
    each ``READ`` or ``READ_BATCH`` consumes the next scripted behavior:

    * ``"ok"`` — correct response frame (also after the script runs out);
    * ``"corrupt"`` — flip a body byte, leave the CRC (payload damaged,
      stream still in sync);
    * ``"truncate"`` — send half the frame, then close (stream broken);
    * ``"drop"`` — close without responding;
    * ``"stall"`` — consume the request and answer nothing, connection
      held open (a wedged server trickling no bytes);
    * ``"busy"`` — answer with an admission-control ``ST_BUSY`` shed
      (``retry_after_s=0.05``).
    """

    def __init__(self, blobs, behaviors):
        self.blobs = blobs
        self.behaviors = list(behaviors)
        self.connections = 0
        self._closing = False
        self._listen = socket.create_server(("127.0.0.1", 0))
        self._listen.settimeout(0.05)
        self.address = self._listen.getsockname()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def close(self):
        self._closing = True
        self._thread.join(timeout=5.0)
        self._listen.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def _loop(self):
        while not self._closing:
            try:
                conn, _ = self._listen.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections += 1
            try:
                self._serve(conn)
            except OSError:
                pass

    def _serve(self, conn):
        with conn:
            conn.settimeout(0.05)
            while not self._closing:
                try:
                    frame = protocol.recv_frame(conn, frame_timeout_s=2.0)
                except socket.timeout:
                    continue
                except (protocol.ProtocolError, OSError):
                    return
                if frame is None:
                    return
                kind, body = frame
                if kind == protocol.OP_INFO:
                    conn.sendall(protocol.pack_frame(
                        protocol.ST_OK,
                        protocol.pack_json(
                            {"n_samples": len(self.blobs), "world_size": 1}
                        ),
                    ))
                    continue
                if kind == protocol.OP_READ_BATCH:
                    indices = protocol.unpack_indices(body)
                    reply = b"".join(
                        bytes(p)
                        for p in protocol.batch_reply_parts([
                            (protocol.SLOT_OK, self.blobs[int(i)])
                            for i in indices
                        ])
                    )
                    wire = protocol.pack_frame(protocol.ST_OK, reply)
                else:
                    index = protocol.unpack_read(body)
                    wire = protocol.pack_frame(
                        protocol.ST_OK, self.blobs[index]
                    )
                behavior = self.behaviors.pop(0) if self.behaviors else "ok"
                body_len = len(wire) - protocol._HEAD.size - protocol._CRC.size
                if behavior == "ok":
                    conn.sendall(wire)
                elif behavior == "corrupt":
                    buf = bytearray(wire)
                    buf[protocol._HEAD.size + body_len // 2] ^= 0x20
                    conn.sendall(bytes(buf))
                elif behavior == "truncate":
                    conn.sendall(wire[: len(wire) // 2])
                    return
                elif behavior == "drop":
                    return
                elif behavior == "stall":
                    continue
                elif behavior == "busy":
                    conn.sendall(protocol.pack_frame(
                        protocol.ST_BUSY,
                        protocol.pack_json(
                            {"retry_after_s": 0.05, "reason": "tokens"}
                        ),
                    ))
                else:  # pragma: no cover - script typo guard
                    raise AssertionError(behavior)


def _fast_retry(inner, **kw):
    return RetryingSource(
        inner,
        RetryPolicy(max_attempts=4, base_delay_s=0.001, max_delay_s=0.002),
        sleep=lambda s: None,
        **kw,
    )


class TestWireFaults:
    def test_corrupt_frame_surfaces_without_dropping_connection(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, ["corrupt"]) as server:
            src = RemoteSource(*server.address)
            with pytest.raises(CorruptSampleError) as exc_info:
                src.read(3)
            assert exc_info.value.sample_id == 3
            assert exc_info.value.section == "frame"
            # stream still in sync: the very next read succeeds on the
            # same connection (no reconnect)
            assert src.read(3) == raw[3]
            assert server.connections == 1
            src.close()

    def test_truncated_frame_breaks_stream_then_reconnects(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, ["truncate"]) as server:
            src = RemoteSource(*server.address)
            with pytest.raises(ConnectionError):
                src.read(0)
            assert src.read(0) == raw[0]  # transparent reconnect
            assert server.connections == 2
            src.close()

    def test_dropped_connection_raises_then_reconnects(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, ["drop"]) as server:
            src = RemoteSource(*server.address)
            with pytest.raises(ConnectionError):
                src.read(5)
            assert src.read(5) == raw[5]
            assert server.connections == 2
            src.close()

    def test_retrying_source_rides_out_wire_faults(self, blobs):
        """Each fault class is retryable: the trainer sees clean bytes."""
        _, raw = blobs
        script = ["corrupt", "drop", "truncate", "ok"]
        with ScriptedServer(raw, script) as server:
            src = _fast_retry(RemoteSource(*server.address))
            assert src.read(7) == raw[7]
            assert src.stats.retries == 3
            src.inner.close()

    def test_exhausted_retries_surface_the_corruption(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, ["corrupt"] * 10) as server:
            src = _fast_retry(RemoteSource(*server.address))
            with pytest.raises(CorruptSampleError):
                src.read(1)
            src.inner.close()


class TestReconnectBackoff:
    def test_connect_failures_are_counted_and_surfaced(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, []) as server:
            src = RemoteSource(
                *server.address,
                reconnect_backoff_s=0.001,
                reconnect_max_s=0.002,
            )
        # server is gone: the open socket dies first (EOF, not a connect
        # failure), then every dial is refused and counted
        with pytest.raises(OSError):
            src.read(0)
        assert src.reconnect_attempts == 0
        with pytest.raises(OSError):
            src.read(0)
        with pytest.raises(OSError):
            src.read(0)
        assert src.reconnect_attempts == 2
        snap = dict(src.stats.snapshot())
        assert snap["remote.connect_failures"][0] == 2
        src.close()

    def test_backoff_gate_defers_to_op_deadline_without_sleeping(self, blobs):
        """A huge pending backoff aborts the op immediately — it must not
        block a prefetch worker for the whole backoff."""
        _, raw = blobs
        with ScriptedServer(raw, []) as server:
            src = RemoteSource(
                *server.address,
                reconnect_backoff_s=30.0,
                op_timeout_s=0.5,
            )
        with pytest.raises(OSError):
            src.read(0)  # EOF on the handshake connection
        with pytest.raises(OSError):
            src.read(0)  # refused dial arms the ≥15 s backoff gate
        t0 = time.monotonic()
        with pytest.raises(TimeoutError):
            src.read(0)  # gate exceeds the 0.5 s budget: abort, not sleep
        assert time.monotonic() - t0 < 0.5
        src.close()

    def test_reconnect_success_resets_the_schedule(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, []) as server:
            host, port = server.address
            src = RemoteSource(
                host, port, reconnect_backoff_s=0.001, reconnect_max_s=0.002
            )
        with pytest.raises(OSError):
            src.read(0)
        with pytest.raises(OSError):
            src.read(0)
        assert src.reconnect_attempts >= 1
        with DataServer(ListSource(raw), host=host, port=port):
            assert src.read(0) == raw[0]
            assert src.reconnect_attempts == 0
            snap = dict(src.stats.snapshot())
            assert snap["remote.reconnects"][0] == 1
            src.close()


class TestOpDeadline:
    def test_stalled_server_aborts_at_op_deadline_not_socket_timeout(
        self, blobs
    ):
        """``op_timeout_s`` is the budget that matters: a server that
        accepts and goes silent must not wedge the client for the (much
        longer) socket timeout."""
        _, raw = blobs
        with ScriptedServer(raw, ["stall", "ok"]) as server:
            src = RemoteSource(
                *server.address, timeout_s=30.0, op_timeout_s=0.3
            )
            t0 = time.monotonic()
            with pytest.raises(OSError):  # socket.timeout is an OSError
                src.read(0)
            elapsed = time.monotonic() - t0
            assert 0.2 <= elapsed < 2.0
            src.close()

    def test_deadline_timeout_is_retryable(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, ["stall", "ok"]) as server:
            src = _fast_retry(
                RemoteSource(*server.address, op_timeout_s=0.3)
            )
            assert src.read(4) == raw[4]
            assert src.stats.retries == 1
            src.inner.close()


class TestBusyHandling:
    def test_busy_raises_server_busy_error_with_hint(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, ["busy"]) as server:
            src = RemoteSource(*server.address)
            with pytest.raises(ServerBusyError) as exc_info:
                src.read(2)
            assert exc_info.value.retry_after_s == pytest.approx(0.05)
            assert exc_info.value.reason == "tokens"
            # being shed is not a transport fault: same connection serves
            # the retry
            assert src.read(2) == raw[2]
            assert server.connections == 1
            assert dict(src.stats.snapshot())["remote.busy"][0] == 1
            src.close()

    def test_retry_delay_is_floored_by_the_shed_hint(self, blobs):
        """RetryPolicy honours retry_after_s: sleeping less than the
        server's token-refill estimate would just be shed again."""
        _, raw = blobs
        sleeps = []
        with ScriptedServer(raw, ["busy", "ok"]) as server:
            src = RetryingSource(
                RemoteSource(*server.address),
                RetryPolicy(
                    max_attempts=3, base_delay_s=0.0001, max_delay_s=0.0002
                ),
                sleep=sleeps.append,
            )
            assert src.read(1) == raw[1]
            assert src.stats.retries == 1
            assert sleeps == [pytest.approx(0.05)]
            src.inner.close()


class TestEndToEndFaultStack:
    def test_transient_faults_yield_bit_identical_epoch(self, blobs):
        """Seeded transient I/O faults on the remote path change nothing."""
        plugin, raw = blobs

        def epoch(src):
            loader = DataLoader(src, plugin, batch_size=2, seed=3)
            return [
                (b.tobytes(), l.tobytes()) for b, l in loader.batches(0)
            ]

        reference = epoch(ListSource(raw))
        with DataServer(ListSource(raw)) as server:
            remote = RemoteSource(*server.address)
            flaky = FaultInjector(
                remote, FaultPlan(io_error_rate=0.3, seed=17)
            )
            assert epoch(_fast_retry(flaky, verify=True)) == reference
            assert flaky.stats.total_injected > 0
            remote.close()

    def test_permanent_corruption_quarantined_never_wrong_bytes(self, blobs):
        """The full stack: DataServer → RemoteSource → FaultInjector →
        RetryingSource(verify) → DataLoader(skip) quarantines exactly the
        corrupted ids and decodes everything else bit-identically."""
        plugin, raw = blobs
        bad = {2, 6}
        with DataServer(ListSource(raw)) as server:
            remote = RemoteSource(*server.address)
            stack = _fast_retry(
                FaultInjector(remote, FaultPlan(corrupt_ids=bad, seed=1)),
                verify=True,
            )
            loader = DataLoader(
                stack, plugin, batch_size=2, seed=3, bad_sample_policy="skip"
            )
            order = loader.epoch_order(0)
            good = [i for i in order.tolist() if i not in bad]
            rows = []
            for batch, _labels in loader.batches(0):
                rows.extend(row.tobytes() for row in batch)
            remote.close()
        assert set(loader.quarantine.ids()) == bad
        assert rows == [plugin.decode(raw[i])[0].tobytes() for i in good]


class TestBatchWireFaults:
    """READ_BATCH under transport faults: a damaged frame hurts every
    slot at once (and is retryable); a damaged *sample* hurts one slot."""

    def test_corrupt_batch_frame_is_retryable_and_in_sync(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, ["corrupt"]) as server:
            src = RemoteSource(*server.address)
            with pytest.raises(CorruptSampleError) as exc_info:
                src.read_batch_slots([1, 4, 7])
            assert exc_info.value.section == "frame"
            assert exc_info.value.sample_id == (1, 4, 7)
            # CRC failure leaves the stream in sync: the retry rides the
            # same connection and every slot comes back clean
            assert src.read_batch([1, 4, 7]) == [raw[1], raw[4], raw[7]]
            assert server.connections == 1
            src.close()

    def test_truncated_batch_frame_breaks_stream_then_reconnects(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, ["truncate"]) as server:
            src = RemoteSource(*server.address)
            with pytest.raises(ConnectionError):
                src.read_batch_slots([0, 2])
            assert src.read_batch([0, 2]) == [raw[0], raw[2]]
            assert server.connections == 2
            src.close()

    def test_retrying_source_rides_out_batch_wire_faults(self, blobs):
        """A whole-frame fault damages every slot at once — and the
        whole-call retry recovers every slot at once."""
        _, raw = blobs
        with ScriptedServer(raw, ["corrupt", "truncate", "ok"]) as server:
            src = _fast_retry(RemoteSource(*server.address))
            assert src.read_batch_slots([3, 8, 5]) == [
                raw[3], raw[8], raw[5]
            ]
            assert src.stats.retries == 2
            src.inner.close()

    def test_busy_shed_covers_the_whole_batch(self, blobs):
        _, raw = blobs
        with ScriptedServer(raw, ["busy"]) as server:
            src = RemoteSource(*server.address)
            with pytest.raises(ServerBusyError) as exc_info:
                src.read_batch_slots([0, 1])
            assert exc_info.value.retry_after_s == pytest.approx(0.05)
            assert src.read_batch([0, 1]) == [raw[0], raw[1]]
            assert server.connections == 1
            src.close()

    def test_corrupt_sample_quarantines_only_its_slot(self, blobs):
        """One corrupt blob inside a READ_BATCH becomes one SLOT_ERROR:
        the batched loader quarantines exactly that sample and decodes
        its batch-mates bit-identically."""
        plugin, raw = blobs
        bad = {2}
        flaky = FaultInjector(
            ListSource(raw), FaultPlan(corrupt_ids=bad, seed=1)
        )
        with DataServer(flaky, verify=True) as server:
            remote = RemoteSource(*server.address)
            loader = DataLoader(
                remote, plugin, batch_size=3, seed=5,
                bad_sample_policy="skip", batched_fetch=True,
            )
            order = loader.epoch_order(0)
            rows = []
            for batch, _labels in loader.batches(0):
                rows.extend(row.tobytes() for row in batch)
            snap = dict(remote.stats.snapshot())
            remote.close()
        assert set(loader.quarantine.ids()) == bad
        good = [i for i in order.tolist() if i not in bad]
        assert rows == [plugin.decode(raw[i])[0].tobytes() for i in good]
        # the whole epoch went over the batch plane, one frame per group
        assert snap["remote.read_batch"][0] == -(-len(raw) // 3)

    def test_truncated_batch_frame_yields_bit_identical_epoch(self, blobs):
        """A batch frame lost mid-flight is a transport blip: the retry
        stack replays it and the batched epoch stays bit-identical."""
        plugin, raw = blobs

        def epoch(src, batched):
            loader = DataLoader(
                src, plugin, batch_size=2, seed=3, batched_fetch=batched
            )
            return [
                (b.tobytes(), l.tobytes()) for b, l in loader.batches(0)
            ]

        reference = epoch(ListSource(raw), False)
        with ScriptedServer(raw, ["truncate", "corrupt"]) as server:
            src = _fast_retry(RemoteSource(*server.address))
            assert epoch(src, True) == reference
            assert src.stats.retries == 2
            src.inner.close()
