"""Tests for the simulated accelerator: device, transfers, warp model,
kernels."""

import numpy as np
import pytest

from repro.accel import (
    A100,
    NVLINK,
    PCIE3,
    PCIE4,
    V100,
    SimulatedGpu,
    transfer_time,
)
from repro.accel.kernels import (
    k_cast,
    k_delta_decode,
    k_lut_decode,
    k_normalize,
    k_preprocess_log,
)
from repro.accel.transfer import pageable_bandwidth
from repro.accel.warp import WarpCostModel, estimate_delta_decode_time
from repro.core.encoding.delta import encode_image
from repro.core.encoding.lut import encode_sample

_MB = 1 << 20


class TestDevice:
    def test_table1_values(self):
        assert V100.sm_count == 80 and A100.sm_count == 104
        assert V100.hbm_bw_gbps == 900 and A100.hbm_bw_gbps == 1600
        assert V100.tensor_tflops == 120 and A100.tensor_tflops == 312
        assert V100.mem_capacity_gb == 16 and A100.mem_capacity_gb == 40

    def test_alloc_free_capacity(self):
        dev = SimulatedGpu(spec=V100)
        dev.alloc(10 * 10**9)
        with pytest.raises(MemoryError):
            dev.alloc(7 * 10**9)  # 17 GB > 16 GB
        dev.free(10 * 10**9)
        dev.alloc(15 * 10**9)

    def test_alloc_validation(self):
        dev = SimulatedGpu(spec=V100)
        with pytest.raises(ValueError):
            dev.alloc(-1)
        with pytest.raises(ValueError):
            dev.free(1)

    def test_kernel_time_bandwidth_bound(self):
        dev = SimulatedGpu(spec=V100)
        t = dev.kernel_time(bytes_moved=675_000_000_000)  # 1s at 675 GB/s
        assert t == pytest.approx(1.0, rel=0.01)

    def test_kernel_time_compute_bound(self):
        dev = SimulatedGpu(spec=V100)
        flops = V100.fp32_tflops * 1e12 * V100.flop_efficiency
        assert dev.kernel_time(0, flops) == pytest.approx(1.0, rel=0.01)

    def test_charge_accumulates(self):
        dev = SimulatedGpu(spec=V100)
        dev.charge("k1", bytes_moved=1000)
        dev.charge("k2", bytes_moved=1000, seconds=0.5)
        assert dev.busy_seconds > 0.5
        assert [k.name for k in dev.launches] == ["k1", "k2"]
        dev.reset()
        assert dev.busy_seconds == 0 and not dev.launches

    def test_a100_faster_than_v100_for_bandwidth_kernels(self):
        tv = SimulatedGpu(spec=V100).kernel_time(10**9)
        ta = SimulatedGpu(spec=A100).kernel_time(10**9)
        assert ta < tv


class TestTransfer:
    def test_paper_measured_pageable_ranges(self):
        # §IX-A: 4-8 GB/s (V100 node) and 6-8 GB/s (A100 node) for 4-64 MB
        for mb, lo, hi in ((4, 3.5, 8.5), (64, 3.5, 8.5)):
            bw = pageable_bandwidth(PCIE3, mb * _MB) / 1e9
            assert lo <= bw <= hi
        for mb in (4, 64):
            bw = pageable_bandwidth(PCIE4, mb * _MB) / 1e9
            assert 5.5 <= bw <= 8.5

    def test_pinned_peaks(self):
        assert PCIE3.pinned_bw_gbps == pytest.approx(12.4)
        assert PCIE4.pinned_bw_gbps == pytest.approx(24.7)

    def test_bandwidth_monotone_in_size(self):
        sizes = [1 * _MB, 4 * _MB, 16 * _MB, 64 * _MB, 256 * _MB]
        bws = [pageable_bandwidth(PCIE3, s) for s in sizes]
        assert all(a <= b for a, b in zip(bws, bws[1:]))

    def test_nvlink_faster_than_pcie(self):
        n = 32 * _MB
        assert transfer_time(NVLINK, n) < transfer_time(PCIE3, n)

    def test_pinned_faster_than_pageable(self):
        n = 32 * _MB
        assert transfer_time(PCIE3, n, pinned=True) < transfer_time(PCIE3, n)

    def test_latency_floor(self):
        assert transfer_time(PCIE3, 0) == PCIE3.latency_s

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            transfer_time(PCIE3, -1)

    def test_batching_amortizes(self):
        # one 8 MB transfer beats two 4 MB transfers (the baseline's reason
        # to like batching)
        one = transfer_time(PCIE3, 8 * _MB)
        two = 2 * transfer_time(PCIE3, 4 * _MB)
        assert one < two


def _smooth_channels(c=2, h=8, w=96, seed=0):
    rng = np.random.default_rng(seed)
    img = np.cumsum(rng.normal(0, 0.01, size=(c, h, w)), axis=2).astype(
        np.float32
    ) + 1.0
    return img, [encode_image(ch) for ch in img]


class TestWarpModel:
    def test_decode_time_positive_and_scales(self):
        # large enough that per-element work dominates launch overhead
        _, small = _smooth_channels(c=2, h=64, w=512)
        _, big = _smooth_channels(c=8, h=256, w=512)
        t_small = estimate_delta_decode_time(small, V100)
        t_big = estimate_delta_decode_time(big, V100)
        assert 0 < t_small < t_big

    def test_a100_not_slower_at_scale(self):
        # with many independent lines the throughput/HBM terms dominate and
        # the A100's wider machine wins; tiny single-line workloads are
        # legitimately clock-bound and can favour the V100's higher clock
        _, encs = _smooth_channels(c=8, h=256, w=512)
        assert estimate_delta_decode_time(encs, A100) <= (
            estimate_delta_decode_time(encs, V100)
        )

    def test_cost_model_knobs(self):
        _, encs = _smooth_channels(c=2, h=16)
        cheap = WarpCostModel(cycles_per_delta_elem=1.0)
        costly = WarpCostModel(cycles_per_delta_elem=500.0)
        assert estimate_delta_decode_time(encs, V100, cheap) < (
            estimate_delta_decode_time(encs, V100, costly)
        )


class TestKernels:
    def test_lut_decode_functional_and_charged(self, cosmo_sample):
        enc = encode_sample(cosmo_sample.data)
        dev = SimulatedGpu(spec=V100)
        out = k_lut_decode(
            dev, enc,
            table_func=lambda v: np.log1p(v.astype(np.float32)),
            out_dtype=np.float16,
        )
        want = np.log1p(cosmo_sample.data.astype(np.float32)).astype(
            np.float16
        )
        assert np.array_equal(out, want)
        assert dev.busy_seconds > 0

    def test_lut_decode_without_fusion(self, cosmo_sample):
        enc = encode_sample(cosmo_sample.data)
        dev = SimulatedGpu(spec=V100)
        out = k_lut_decode(dev, enc, out_dtype=np.int16)
        assert np.array_equal(out, cosmo_sample.data)
        assert [k.name for k in dev.launches] == ["lut_gather"]

    def test_delta_decode_matches_cpu(self):
        img, encs = _smooth_channels(c=3, h=8)
        dev = SimulatedGpu(spec=V100)
        out = k_delta_decode(dev, encs)
        from repro.core.encoding.delta import decode_image

        for c in range(3):
            assert np.array_equal(out[c], decode_image(encs[c]))
        assert any(k.name == "delta_decode" for k in dev.launches)

    def test_elementwise_kernels(self):
        dev = SimulatedGpu(spec=V100)
        x = np.arange(12, dtype=np.int16).reshape(3, 4)
        logd = k_preprocess_log(dev, x)
        assert np.allclose(logd, np.log1p(x.astype(np.float32)))
        mean = np.zeros(3, np.float32)
        std = np.ones(3, np.float32)
        norm = k_normalize(dev, x.astype(np.float32), mean, std)
        assert np.allclose(norm, x)
        cast = k_cast(dev, norm, np.float16)
        assert cast.dtype == np.float16
        assert len(dev.launches) == 3


class TestWarpCensus:
    def test_census_counts_known_modes(self):
        from repro.accel.warp import _census
        from repro.core.encoding.delta import encode_image

        rng = np.random.default_rng(9)
        img = np.empty((3, 80), dtype=np.float32)
        img[0] = 4.25  # CONST -> one broadcast task
        img[1] = np.cumsum(rng.normal(0, 0.01, 80)) + 1.0  # DELTA
        img[2] = (rng.standard_normal(80)
                  * 10.0 ** rng.integers(-6, 6, 80).astype(float))  # RAW
        enc = encode_image(img)
        w = _census(enc)
        assert w.n_broadcast_tasks == 1
        assert w.n_broadcast_elems == 80
        # raw line -> one copy task covering the full line; literal
        # segments of the delta line may add more copies
        assert w.n_copy_tasks >= 1
        assert w.n_delta_tasks >= 1
        assert w.n_tasks == (
            w.n_delta_tasks + w.n_copy_tasks + w.n_broadcast_tasks
        )
