"""Tests for the sample-compressibility analysis (Fig 5 machinery)."""

import numpy as np

from repro.core.encoding.analysis import (
    analyze_cosmoflow_sample,
    analyze_deepcam_sample,
    powerlaw_slope,
)


class TestPowerlawSlope:
    def test_exact_power_law(self):
        ranks = np.arange(1, 200)
        freqs = 1e6 * ranks**-1.5
        assert abs(powerlaw_slope(freqs) - (-1.5)) < 0.01

    def test_uniform_distribution_is_flat(self):
        assert abs(powerlaw_slope(np.full(100, 7.0))) < 1e-9

    def test_order_invariant(self):
        freqs = np.array([100.0, 10.0, 1.0, 1000.0])
        assert powerlaw_slope(freqs) == powerlaw_slope(freqs[::-1])

    def test_degenerate_inputs(self):
        assert powerlaw_slope(np.array([])) == 0.0
        assert powerlaw_slope(np.array([5.0])) == 0.0
        assert powerlaw_slope(np.array([0.0, 0.0])) == 0.0


class TestCosmoAnalysis:
    def test_crafted_sample_counts(self):
        # 2 channels, 3 voxels: values {0,1,2}; groups {(0,1),(1,2),(2,0)}
        sample = np.array([[[0, 1, 2]], [[1, 2, 0]]], dtype=np.int16)
        st = analyze_cosmoflow_sample(sample)
        assert st.n_values == 6
        assert st.n_unique_values == 3
        assert st.n_unique_groups == 3
        assert st.n_possible_permutations == 9.0
        assert st.group_fraction == 3 / 9
        assert st.keys_fit_16bit

    def test_coupled_channels_have_few_groups(self):
        rng = np.random.default_rng(0)
        base = rng.integers(0, 50, size=(10, 10, 10))
        coupled = np.stack([base, base + 1, base + 2, base + 3]).astype(np.int16)
        st = analyze_cosmoflow_sample(coupled)
        # groups are exactly the unique base values: far below permutations
        assert st.n_unique_groups == len(np.unique(base))
        assert st.group_fraction < 1e-4

    def test_frequencies_sorted_descending(self):
        sample = np.array([[[0, 0, 0, 1, 1, 2]]], dtype=np.int16)
        st = analyze_cosmoflow_sample(sample)
        assert list(st.value_frequencies) == [3, 2, 1]


class TestDeepcamAnalysis:
    def test_smooth_field_scores_smooth(self):
        x = np.linspace(0, 1, 64, dtype=np.float32)
        img = np.tile(1.0 + 0.1 * np.sin(2 * np.pi * x), (8, 1)).astype(
            np.float32
        )
        st = analyze_deepcam_sample(img)
        assert st.frac_smooth_lines >= 0.9
        assert st.abrupt_fraction < 0.01

    def test_noise_field_scores_rough(self):
        rng = np.random.default_rng(1)
        img = (rng.standard_normal((8, 64)) * 10.0 ** rng.integers(
            -5, 5, size=(8, 64)).astype(np.float64)).astype(np.float32)
        st = analyze_deepcam_sample(img)
        assert st.frac_smooth_lines < 0.5

    def test_x_smoother_than_y_detected(self):
        rng = np.random.default_rng(2)
        from scipy import ndimage

        noise = rng.standard_normal((32, 64))
        img = ndimage.gaussian_filter(noise, sigma=(1.0, 8.0)).astype(
            np.float32
        )
        st = analyze_deepcam_sample(img)
        assert st.mean_abs_diff_x < st.mean_abs_diff_y

    def test_constant_image(self):
        st = analyze_deepcam_sample(np.ones((4, 8), dtype=np.float32))
        assert st.frac_smooth_lines == 1.0
        assert st.mean_abs_diff_x == 0.0

    def test_rejects_non_2d(self):
        import pytest

        with pytest.raises(ValueError):
            analyze_deepcam_sample(np.zeros((2, 3, 4), dtype=np.float32))
