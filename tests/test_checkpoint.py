"""Tests for model/optimizer checkpointing."""

import numpy as np
import pytest

from repro.ml import Adam, SGD, Trainer, WarmupSchedule, build_cosmoflow
from repro.ml.checkpoint import load_checkpoint, restore_model, save_checkpoint
from repro.ml.losses import mse_loss

_RNG = np.random.default_rng(3)


def _model(seed=0):
    return build_cosmoflow(grid=8, in_channels=2, n_conv_layers=1,
                           base_filters=2, dense_units=(4,), seed=seed)


def _batch():
    x = _RNG.standard_normal((2, 2, 8, 8, 8)).astype(np.float32)
    y = _RNG.standard_normal((2, 4)).astype(np.float32)
    return x, y


class TestRoundtrip:
    def test_params_bit_exact(self, tmp_path):
        model = _model(seed=1)
        path = tmp_path / "ck.rpck"
        save_checkpoint(path, model)
        fresh = _model(seed=2)
        restore_model(path, fresh)
        for k, v in model.parameters().items():
            assert np.array_equal(fresh.parameters()[k], v)

    def test_header_metadata(self, tmp_path):
        model = _model()
        path = tmp_path / "ck.rpck"
        save_checkpoint(path, model, step_losses=[3.0, 2.0],
                        extra={"epoch": 7})
        _, header = load_checkpoint(path)
        assert header["step_losses"] == [3.0, 2.0]
        assert header["extra"] == {"epoch": 7}

    def test_corrupt_magic(self, tmp_path):
        path = tmp_path / "bad"
        path.write_bytes(b"XXXX" + b"\x00" * 32)
        with pytest.raises(ValueError, match="magic"):
            load_checkpoint(path)

    def test_truncated(self, tmp_path):
        path = tmp_path / "tiny"
        path.write_bytes(b"RP")
        with pytest.raises(ValueError, match="truncated"):
            load_checkpoint(path)


class TestResume:
    @pytest.mark.parametrize("opt_cls", [SGD, Adam])
    def test_training_resumes_bit_for_bit(self, tmp_path, opt_cls):
        x, y = _batch()

        def fresh_trainer(model):
            opt = opt_cls(model.parameters(), WarmupSchedule(base_lr=5e-3))
            return Trainer(model, mse_loss, opt, mixed_precision=False)

        # continuous run: 6 steps
        m_ref = _model(seed=5)
        tr_ref = fresh_trainer(m_ref)
        for _ in range(6):
            tr_ref.train_step(x, y)

        # checkpointed run: 3 steps, save, restore into new objects, 3 more
        m_a = _model(seed=5)
        tr_a = fresh_trainer(m_a)
        for _ in range(3):
            tr_a.train_step(x, y)
        path = tmp_path / "resume.rpck"
        save_checkpoint(path, m_a, tr_a.optimizer)

        m_b = _model(seed=999)  # different init, fully overwritten
        tr_b = fresh_trainer(m_b)
        restore_model(path, m_b, tr_b.optimizer)
        for _ in range(3):
            tr_b.train_step(x, y)

        for k, v in m_ref.parameters().items():
            assert np.array_equal(m_b.parameters()[k], v), k

    def test_optimizer_type_mismatch(self, tmp_path):
        m = _model()
        opt = SGD(m.parameters(), WarmupSchedule(base_lr=0.1))
        path = tmp_path / "ck.rpck"
        save_checkpoint(path, m, opt)
        other = Adam(m.parameters(), WarmupSchedule(base_lr=0.1))
        with pytest.raises(ValueError, match="state"):
            restore_model(path, m, other)
