"""Tests for automatic codec selection and metrics."""

import numpy as np
import pytest

from repro.accel.device import SimulatedGpu, V100
from repro.core.encoding import container
from repro.core.plugins import AutoPlugin, choose_codec
from repro.datasets import cosmoflow, deepcam
from repro.ml.metrics import (
    TimeToAccuracy,
    confusion_matrix,
    epochs_to_target,
    iou_per_class,
    mean_absolute_error,
    pixel_recall,
    time_to_accuracy,
)


@pytest.fixture(scope="module")
def cosmo32():
    return cosmoflow.generate_sample(
        cosmoflow.CosmoflowConfig(grid=32), seed=1
    )


@pytest.fixture(scope="module")
def deepcam8():
    return deepcam.generate_sample(
        deepcam.DeepcamConfig(height=32, width=48, n_channels=8), seed=1
    )


class TestChooseCodec:
    def test_cosmoflow_picks_lut(self, cosmo32):
        assert choose_codec(cosmo32.data).codec == "lut"

    def test_deepcam_picks_delta(self, deepcam8):
        assert choose_codec(deepcam8.data).codec == "delta"

    def test_noise_picks_raw(self):
        rng = np.random.default_rng(0)
        noise = (rng.standard_normal((2, 32, 32))
                 * 10.0 ** rng.integers(-5, 5, (2, 32, 32)).astype(float)
                 ).astype(np.float32)
        assert choose_codec(noise).codec == "raw"

    def test_small_lut_not_worth_it(self):
        # tiny integer volume: table overhead kills the ratio -> raw
        rng = np.random.default_rng(1)
        tiny = rng.integers(0, 3000, (4, 8, 8, 8)).astype(np.int16)
        assert choose_codec(tiny).codec == "raw"

    def test_1d_rejected(self):
        assert choose_codec(np.zeros(5)).codec == "raw"

    def test_reason_is_informative(self, cosmo32):
        choice = choose_codec(cosmo32.data)
        assert "unique groups" in choice.reason


class TestAutoPlugin:
    def test_cosmoflow_roundtrip(self, cosmo32):
        plugin = AutoPlugin("cpu")
        blob = plugin.encode(cosmo32.data, cosmo32.label)
        assert container.peek_codec(blob) == "lut"
        tensor, label = plugin.decode_cpu(blob)
        assert tensor.dtype == np.float16
        assert np.array_equal(tensor.astype(np.int16), cosmo32.data)
        assert np.array_equal(label, cosmo32.label)

    def test_deepcam_roundtrip_accuracy(self, deepcam8):
        plugin = AutoPlugin("cpu")
        blob = plugin.encode(deepcam8.data, deepcam8.label)
        assert container.peek_codec(blob) == "delta"
        tensor, _ = plugin.decode_cpu(blob)
        # decoded values are the standardized channels (fused normalize)
        C = deepcam8.data.shape[0]
        flat = deepcam8.data.reshape(C, -1).astype(np.float64)
        norm = (
            (deepcam8.data - flat.mean(axis=1)[:, None, None])
            / flat.std(axis=1)[:, None, None]
        ).astype(np.float32)
        scale = np.abs(norm).max()
        sig = np.abs(norm) > 0.01 * scale
        rel = np.abs(tensor.astype(np.float32) - norm)[sig] / np.abs(norm)[sig]
        assert rel.max() < 0.06

    def test_raw_passthrough_lossless(self):
        rng = np.random.default_rng(2)
        noise = (rng.standard_normal((2, 16, 16))
                 * 10.0 ** rng.integers(-5, 5, (2, 16, 16)).astype(float)
                 ).astype(np.float32)
        plugin = AutoPlugin("cpu")
        blob = plugin.encode(noise, np.zeros(1))
        tensor, _ = plugin.decode_cpu(blob)
        assert np.array_equal(tensor, noise)

    def test_gpu_placement_decodes_identically(self, cosmo32):
        plugin = AutoPlugin("gpu")
        blob = plugin.encode(cosmo32.data, cosmo32.label)
        dev = SimulatedGpu(spec=V100)
        t_gpu, _ = plugin.decode(blob, dev)
        t_cpu, _ = AutoPlugin("cpu").decode_cpu(blob)
        assert np.array_equal(t_gpu, t_cpu)
        assert dev.busy_seconds > 0

    def test_measure_costs(self, cosmo32, deepcam8):
        for sample in (cosmo32, deepcam8):
            cost = AutoPlugin("gpu").measure(sample.data, sample.label)
            assert cost.stored_bytes > 0
            assert cost.h2d_bytes == cost.stored_bytes
            assert cost.gpu_decode_seconds > 0

    def test_mixed_dataset_dispatch(self, cosmo32, deepcam8):
        plugin = AutoPlugin("cpu")
        blobs = [
            plugin.encode(cosmo32.data, cosmo32.label),
            plugin.encode(deepcam8.data, deepcam8.label),
        ]
        shapes = [plugin.decode_cpu(b)[0].shape for b in blobs]
        assert shapes == [(4, 32, 32, 32), (8, 32, 48)]

    def test_invalid_placement(self):
        with pytest.raises(ValueError):
            AutoPlugin("dpu")


class TestMetrics:
    def test_confusion_matrix(self):
        pred = np.array([0, 1, 1, 2])
        target = np.array([0, 1, 2, 2])
        cm = confusion_matrix(pred, target, 3)
        assert cm[0, 0] == 1 and cm[1, 1] == 1
        assert cm[2, 1] == 1 and cm[2, 2] == 1
        assert cm.sum() == 4

    def test_confusion_validation(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([3]), np.array([0]), 3)
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 1]), np.array([0]), 3)

    def test_iou_perfect(self):
        cm = np.diag([5, 3, 2])
        assert np.allclose(iou_per_class(cm), 1.0)

    def test_iou_absent_class_nan(self):
        cm = np.array([[4, 0], [0, 0]])
        iou = iou_per_class(cm)
        assert iou[0] == 1.0 and np.isnan(iou[1])

    def test_recall(self):
        cm = np.array([[3, 1], [2, 2]])
        rec = pixel_recall(cm)
        assert rec[0] == pytest.approx(0.75)
        assert rec[1] == pytest.approx(0.5)

    def test_mae(self):
        assert mean_absolute_error(
            np.array([1.0, -1.0]), np.array([0.0, 0.0])
        ) == 1.0
        with pytest.raises(ValueError):
            mean_absolute_error(np.zeros(2), np.zeros(3))

    def test_epochs_to_target(self):
        assert epochs_to_target([3.0, 2.0, 1.0], 2.0) == 2
        assert epochs_to_target([3.0, 2.5], 1.0) is None

    def test_time_to_accuracy(self):
        tta = time_to_accuracy([3.0, 1.0], target_loss=1.5,
                               samples_per_epoch=100,
                               throughput_samples_per_s=50.0)
        assert isinstance(tta, TimeToAccuracy)
        assert tta.epochs == 2 and tta.seconds == pytest.approx(4.0)
        assert time_to_accuracy([3.0], 1.0, 100, 50.0) is None
        with pytest.raises(ValueError):
            time_to_accuracy([1.0], 1.0, 100, 0.0)
