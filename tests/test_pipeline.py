"""Tests for sources, ops, pipeline graph, executor, and loader."""

import numpy as np
import pytest

from repro.accel.device import V100, SimulatedGpu
from repro.core.plugins import CosmoflowLutPlugin, DeepcamDeltaPlugin
from repro.datasets import cosmoflow, deepcam
from repro.pipeline import (
    CachedSource,
    DataLoader,
    ListSource,
    TfRecordSource,
    TierSource,
)
from repro.pipeline.executor import FailedItem, PrefetchExecutor
from repro.pipeline.graph import Pipeline
from repro.pipeline.ops import (
    CastOp,
    DecodeOp,
    LabelTransformOp,
    Op,
    PipelineItem,
    RandomFlipOp,
    ReadOp,
)
from repro.storage import SampleCache, Tier, TierSpec, tfrecord


@pytest.fixture(scope="module")
def deepcam_blobs():
    cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(5, cfg, seed=1)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


class TestSources:
    def test_list_source(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        src = ListSource(blobs)
        assert len(src) == 5
        assert src.read(2) == blobs[2]

    def test_tier_source(self, tmp_path, deepcam_blobs):
        _, blobs = deepcam_blobs
        tier = Tier(TierSpec("t", 1, 1, 0), tmp_path)
        names = []
        for i, b in enumerate(blobs):
            tier.write(f"s{i}", b)
            names.append(f"s{i}")
        src = TierSource(tier, names)
        assert len(src) == 5
        assert src.read(3) == blobs[3]

    def test_tfrecord_source(self, tmp_path, deepcam_blobs):
        _, blobs = deepcam_blobs
        path = tmp_path / "d.tfr"
        with tfrecord.TfRecordWriter(path) as w:
            for b in blobs:
                w.write(b)
        src = TfRecordSource(path)
        assert len(src) == 5
        assert src.read(4) == blobs[4]

    def test_tfrecord_source_reuses_one_handle(self, tmp_path, deepcam_blobs):
        _, blobs = deepcam_blobs
        path = tmp_path / "d.tfr"
        with tfrecord.TfRecordWriter(path) as w:
            for b in blobs:
                w.write(b)
        src = TfRecordSource(path)
        assert src._fh is None  # opened lazily, not at construction
        src.read(0)
        fh = src._fh
        assert fh is not None
        for i in (3, 1, 4, 0, 2):  # shuffled epoch access, one handle
            assert src.read(i) == blobs[i]
            assert src._fh is fh
        src.close()
        assert src._fh is None
        assert src.read(2) == blobs[2]  # transparently re-opened
        assert src._fh is not None and src._fh is not fh
        src.close()

    def test_tfrecord_source_concurrent_reads(self, tmp_path, deepcam_blobs):
        import threading

        _, blobs = deepcam_blobs
        path = tmp_path / "d.tfr"
        with tfrecord.TfRecordWriter(path) as w:
            for b in blobs:
                w.write(b)
        errors = []

        with TfRecordSource(path) as src:
            def sweep(seed):
                rng = np.random.default_rng(seed)
                try:
                    for _ in range(200):
                        i = int(rng.integers(0, len(blobs)))
                        assert src.read(i) == blobs[i]
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=sweep, args=(s,)) for s in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []

    def test_cached_source_hits(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        cache = SampleCache(10**9)
        src = CachedSource(ListSource(blobs), cache)
        src.read(0)
        src.read(0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_cached_source_small_cache_evicts(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        cache = SampleCache(len(blobs[0]) + 1)  # one blob fits
        src = CachedSource(ListSource(blobs), cache)
        for i in range(5):
            src.read(i)
        for i in range(5):
            src.read(i)
        assert cache.stats.hit_rate < 0.5


class TestOps:
    def test_read_decode_chain(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        pipe = Pipeline([ReadOp(ListSource(blobs)), DecodeOp(plugin)])
        item = pipe.run(1)
        assert item.tensor is not None and item.tensor.dtype == np.float16
        assert item.blob is None  # freed after decode
        assert item.meta["stored_bytes"] == len(blobs[1])

    def test_decode_requires_read(self, deepcam_blobs):
        plugin, _ = deepcam_blobs
        with pytest.raises(ValueError):
            DecodeOp(plugin)(PipelineItem(index=0))

    def test_flip_is_deterministic_per_epoch_and_index(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        op = RandomFlipOp(probability=0.5)
        outs = []
        for _ in range(2):
            item = PipelineItem(index=3, meta={"epoch": 2})
            item.blob = blobs[3]
            item = DecodeOp(plugin)(item)
            outs.append(op(item).tensor.copy())
        assert np.array_equal(outs[0], outs[1])

    def test_flip_flips_label_with_tensor(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        # probability 1: always flips
        op = RandomFlipOp(probability=1.0)
        item = PipelineItem(index=0)
        item.blob = blobs[0]
        item = DecodeOp(plugin)(item)
        t0, l0 = item.tensor.copy(), item.label.copy()
        item = op(item)
        assert np.array_equal(item.tensor, t0[..., ::-1])
        assert np.array_equal(item.label, l0[..., ::-1])

    def test_flip_probability_zero(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        op = RandomFlipOp(probability=0.0)
        item = PipelineItem(index=0)
        item.blob = blobs[0]
        item = DecodeOp(plugin)(item)
        t0 = item.tensor.copy()
        assert np.array_equal(op(item).tensor, t0)

    def test_label_transform(self):
        item = PipelineItem(index=0, label=np.array([2.0]))
        out = LabelTransformOp(lambda l: l * 3)(item)
        assert out.label[0] == 6.0

    def test_cast_op(self):
        item = PipelineItem(index=0, tensor=np.ones(3, np.float16))
        out = CastOp(np.float32)(item)
        assert out.tensor.dtype == np.float32

    def test_pipeline_rejects_duplicate_stage_names(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        with pytest.raises(ValueError):
            Pipeline([ReadOp(ListSource(blobs)), ReadOp(ListSource(blobs))])

    def test_stage_times_recorded(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        pipe = Pipeline([ReadOp(ListSource(blobs)), DecodeOp(plugin)])
        pipe.run(0)
        times = pipe.stage_times()
        assert set(times) == {"read", "decode"}
        assert times["decode"] > 0


class TestExecutor:
    def _pipe(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        return Pipeline([ReadOp(ListSource(blobs)), DecodeOp(plugin)])

    def test_sync_and_threaded_agree(self, deepcam_blobs):
        pipe = self._pipe(deepcam_blobs)
        sync = [i.tensor for i in PrefetchExecutor(pipe, 0).run([0, 1, 2, 3])]
        thr = [i.tensor for i in PrefetchExecutor(pipe, 3, 2).run([0, 1, 2, 3])]
        for a, b in zip(sync, thr):
            assert np.array_equal(a, b)

    def test_order_preserved(self, deepcam_blobs):
        pipe = self._pipe(deepcam_blobs)
        order = [4, 0, 3, 1, 2]
        items = list(PrefetchExecutor(pipe, 2, 2).run(order))
        assert [i.index for i in items] == order

    def test_exception_propagates(self, deepcam_blobs):
        pipe = self._pipe(deepcam_blobs)
        with pytest.raises(IndexError):
            list(PrefetchExecutor(pipe, 2, 2).run([0, 99]))

    def test_early_close_does_not_hang(self, deepcam_blobs):
        pipe = self._pipe(deepcam_blobs)
        gen = PrefetchExecutor(pipe, 2, 1).run([0, 1, 2, 3, 4])
        next(gen)
        gen.close()  # must not deadlock

    def test_validation(self, deepcam_blobs):
        pipe = self._pipe(deepcam_blobs)
        with pytest.raises(ValueError):
            PrefetchExecutor(pipe, num_workers=-1)
        with pytest.raises(ValueError):
            PrefetchExecutor(pipe, prefetch_depth=0)


class TestDataLoader:
    def test_batches_shapes(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        dl = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=0)
        batches = list(dl.batches(0))
        assert len(batches) == 3  # 5 samples -> 2+2+1
        assert batches[0][0].shape == (2, 4, 16, 24)
        assert batches[-1][0].shape[0] == 1

    def test_shuffle_differs_by_epoch_but_reproducible(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        dl = DataLoader(ListSource(blobs), plugin, batch_size=1, seed=3)
        assert not np.array_equal(dl.epoch_order(0), dl.epoch_order(1))
        dl2 = DataLoader(ListSource(blobs), plugin, batch_size=1, seed=3)
        assert np.array_equal(dl.epoch_order(0), dl2.epoch_order(0))

    def test_no_shuffle_sequential(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        dl = DataLoader(ListSource(blobs), plugin, batch_size=1, shuffle=False)
        assert list(dl.epoch_order(0)) == [0, 1, 2, 3, 4]

    def test_len(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        assert len(DataLoader(ListSource(blobs), plugin, batch_size=2)) == 3

    def test_gpu_plugin_with_device(self):
        cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=3000)
        ds = cosmoflow.generate_dataset(3, cfg, seed=2)
        plugin = CosmoflowLutPlugin("gpu")
        blobs = [plugin.encode(s.data, s.label) for s in ds]
        dev = SimulatedGpu(spec=V100)
        dl = DataLoader(
            ListSource(blobs), plugin, batch_size=3, device=dev,
            extra_ops=[LabelTransformOp(cosmoflow.normalize_label)],
        )
        (batch, labels), = list(dl.batches(0))
        assert batch.dtype == np.float16
        assert labels.shape == (3, 4)
        assert np.abs(labels).max() <= 1.01  # normalized parameters
        assert dev.busy_seconds > 0

    def test_batch_size_validation(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        with pytest.raises(ValueError):
            DataLoader(ListSource(blobs), plugin, batch_size=0)


class TestExecutorDeadlockRegression:
    def test_small_depth_out_of_order_completion(self, deepcam_blobs):
        """Regression: depth < workers with inverted task durations used to
        deadlock (slots were acquired after task pickup, so a fast later
        task could hold the only slot while the consumer waited on an
        earlier one)."""
        import time

        from repro.pipeline.graph import Pipeline
        from repro.pipeline.ops import Op, PipelineItem, ReadOp

        class SlowEarly(Op):
            name = "slow_early"

            def __call__(self, item: PipelineItem) -> PipelineItem:
                # earlier indices take longer -> completion inverts order
                time.sleep(0.05 if item.index == 0 else 0.001)
                item.tensor = np.zeros(1)
                item.label = np.zeros(1)
                return item

        _, blobs = deepcam_blobs
        pipe = Pipeline([ReadOp(ListSource(blobs)), SlowEarly()])
        for _ in range(5):  # repeat to give the race a chance
            ex = PrefetchExecutor(pipe, num_workers=2, prefetch_depth=1)
            items = list(ex.run([0, 1, 2, 3, 4]))
            assert [i.index for i in items] == [0, 1, 2, 3, 4]


class TestDropLast:
    def test_drop_last_discards_partial(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs  # 5 samples
        dl = DataLoader(ListSource(blobs), plugin, batch_size=2,
                        shuffle=False, drop_last=True)
        batches = list(dl.batches(0))
        assert len(batches) == 2 == len(dl)
        assert all(b.shape[0] == 2 for b, _ in batches)

    def test_drop_last_noop_when_divisible(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        dl = DataLoader(ListSource(blobs[:4]), plugin, batch_size=2,
                        shuffle=False, drop_last=True)
        assert sum(b.shape[0] for b, _ in dl.batches(0)) == 4


class TestSourceIndexValidation:
    """Satellite: negative indices must not wrap around Python-style."""

    def test_list_source_bounds(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        src = ListSource(blobs)
        for bad in (-1, -5, len(blobs), len(blobs) + 3):
            with pytest.raises(IndexError):
                src.read(bad)

    def test_tier_source_bounds(self, tmp_path, deepcam_blobs):
        _, blobs = deepcam_blobs
        tier = Tier(TierSpec("t", 1, 1, 0), tmp_path)
        tier.write("s0", blobs[0])
        src = TierSource(tier, ["s0"])
        with pytest.raises(IndexError):
            src.read(-1)
        with pytest.raises(IndexError):
            src.read(1)
        assert src.read(0) == blobs[0]

    def test_tfrecord_source_bounds(self, tmp_path, deepcam_blobs):
        _, blobs = deepcam_blobs
        path = tmp_path / "b.tfr"
        with tfrecord.TfRecordWriter(path) as w:
            for b in blobs[:2]:
                w.write(b)
        src = TfRecordSource(path)
        with pytest.raises(IndexError):
            src.read(-1)
        with pytest.raises(IndexError):
            src.read(2)


class TestCachedSourceVerification:
    def test_corrupt_blob_never_cached(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        damaged = bytearray(blobs[0])
        damaged[-1] ^= 0xFF
        cache = SampleCache(10**9)
        src = CachedSource(ListSource([bytes(damaged)]), cache, verify=True)
        from repro.core.encoding.container import CorruptSampleError

        for _ in range(3):
            with pytest.raises(CorruptSampleError):
                src.read(0)
        assert len(cache) == 0  # the bad blob was never stored

    def test_clean_blob_cached_when_verifying(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        cache = SampleCache(10**9)
        src = CachedSource(ListSource(blobs), cache, verify=True)
        assert src.read(1) == blobs[1]
        assert src.read(1) == blobs[1]
        assert cache.stats.hits == 1

    def test_failed_inner_read_not_cached(self, deepcam_blobs):
        _, blobs = deepcam_blobs

        class Exploding:
            def __len__(self):
                return 1

            def read(self, index):
                raise IOError("disk on fire")

        cache = SampleCache(10**9)
        src = CachedSource(Exploding(), cache)
        with pytest.raises(IOError):
            src.read(0)
        assert len(cache) == 0


class TestExecutorFailureIsolation:
    """Satellite regression: one failing sample with num_workers>=2 must
    surface its exception with the failing index, not hang, and shut the
    remaining workers down cleanly."""

    class _BoomOnIndex(Op):
        name = "boom"

        def __init__(self, bad_index):
            self.bad_index = bad_index

        def __call__(self, item: PipelineItem) -> PipelineItem:
            if item.index == self.bad_index:
                raise RuntimeError(f"decode failed for {item.index}")
            item.tensor = np.full(2, item.index, dtype=np.float32)
            item.label = np.zeros(1)
            return item

    def _pipe(self, blobs, bad_index):
        return Pipeline(
            [ReadOp(ListSource(blobs)), self._BoomOnIndex(bad_index)]
        )

    def test_exception_surfaces_with_failing_index_no_hang(
        self, deepcam_blobs
    ):
        import threading
        import time

        _, blobs = deepcam_blobs
        before = threading.active_count()
        ex = PrefetchExecutor(
            self._pipe(blobs, bad_index=2), num_workers=2, prefetch_depth=2
        )
        t0 = time.monotonic()
        with pytest.raises(RuntimeError) as ei:
            list(ex.run([0, 1, 2, 3, 4]))
        assert time.monotonic() - t0 < 5.0  # no wedged output buffer
        assert ei.value.sample_index == 2
        # remaining workers exit: thread count returns to the baseline
        deadline = time.monotonic() + 5.0
        while threading.active_count() > before:
            assert time.monotonic() < deadline, "workers did not shut down"
            time.sleep(0.01)

    def test_items_before_failure_are_delivered(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        ex = PrefetchExecutor(
            self._pipe(blobs, bad_index=3), num_workers=2, prefetch_depth=2
        )
        got = []
        with pytest.raises(RuntimeError):
            for item in ex.run([0, 1, 2, 3, 4]):
                got.append(item.index)
        assert got == [0, 1, 2]  # order preserved right up to the failure

    def test_yield_mode_delivers_failure_in_band(self, deepcam_blobs):
        from repro.pipeline.executor import FailedItem

        _, blobs = deepcam_blobs
        for workers in (0, 2):
            ex = PrefetchExecutor(
                self._pipe(blobs, bad_index=1), num_workers=workers,
                prefetch_depth=2,
            )
            out = list(ex.run([0, 1, 2], on_error="yield"))
            assert [type(o).__name__ for o in out] == [
                "PipelineItem", "FailedItem", "PipelineItem",
            ]
            failed = out[1]
            assert isinstance(failed, FailedItem)
            assert failed.index == 1
            assert isinstance(failed.error, RuntimeError)

    def test_sync_mode_attaches_index_too(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        ex = PrefetchExecutor(self._pipe(blobs, bad_index=0), num_workers=0)
        with pytest.raises(RuntimeError) as ei:
            list(ex.run([0]))
        assert ei.value.sample_index == 0

    def test_invalid_on_error_rejected(self, deepcam_blobs):
        _, blobs = deepcam_blobs
        ex = PrefetchExecutor(self._pipe(blobs, 0), num_workers=0)
        with pytest.raises(ValueError):
            list(ex.run([0], on_error="explode"))


class TestExecutorStats:
    """Satellite: instrumented executor keeps ordering and exact counters
    across worker counts and prefetch depths."""

    def _pipe(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        return Pipeline([ReadOp(ListSource(blobs)), DecodeOp(plugin)])

    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    @pytest.mark.parametrize("prefetch_depth", [1, 2, 8])
    def test_ordering_and_counts(
        self, deepcam_blobs, num_workers, prefetch_depth
    ):
        from repro.tune.stats import StatsRegistry

        pipe = self._pipe(deepcam_blobs)
        stats = StatsRegistry()
        ex = PrefetchExecutor(
            pipe, num_workers=num_workers, prefetch_depth=prefetch_depth,
            stats=stats,
        )
        order = [4, 0, 3, 1, 2, 0, 4]
        items = list(ex.run(order))
        assert [i.index for i in items] == order
        snap = stats.snapshot()
        n, busy = snap["executor.items"]
        assert n == len(order)
        assert busy > 0.0
        assert snap.get("executor.failed", (0, 0.0))[0] == 0

    @pytest.mark.parametrize("num_workers", [0, 2, 3])
    def test_failed_items_counted_in_band(self, deepcam_blobs, num_workers):
        from repro.pipeline.executor import FailedItem
        from repro.tune.stats import StatsRegistry

        class Boom(Op):
            name = "boom"

            def __call__(self, item: PipelineItem) -> PipelineItem:
                if item.index % 2 == 1:
                    raise RuntimeError("odd index")
                item.tensor = np.zeros(1)
                item.label = np.zeros(1)
                return item

        _, blobs = deepcam_blobs
        pipe = Pipeline([ReadOp(ListSource(blobs)), Boom()])
        stats = StatsRegistry()
        ex = PrefetchExecutor(
            pipe, num_workers=num_workers, prefetch_depth=2, stats=stats
        )
        out = list(ex.run([0, 1, 2, 3, 4], on_error="yield"))
        assert [isinstance(o, FailedItem) for o in out] == [
            False, True, False, True, False,
        ]
        snap = stats.snapshot()
        assert snap["executor.failed"][0] == 2
        assert snap["executor.items"][0] == 3  # successes only

    def test_sync_path_counts_wait_as_starvation(self, deepcam_blobs):
        from repro.tune.stats import StatsRegistry

        pipe = self._pipe(deepcam_blobs)
        stats = StatsRegistry()
        ex = PrefetchExecutor(pipe, num_workers=0, stats=stats)
        list(ex.run([0, 1, 2]))
        snap = stats.snapshot()
        # the consumer is the producer: every busy second is a wait second
        assert snap["executor.wait"][1] == pytest.approx(
            snap["executor.items"][1]
        )

    def test_uninstrumented_executor_still_works(self, deepcam_blobs):
        pipe = self._pipe(deepcam_blobs)
        items = list(PrefetchExecutor(pipe, 2, 2).run([0, 1, 2]))
        assert [i.index for i in items] == [0, 1, 2]


class TestLoaderStatsAndReconfigure:
    def test_loader_records_epoch_and_batches(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        dl = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=0)
        list(dl.batches(0))
        snap = dl.stats.snapshot()
        assert snap["loader.epoch"][0] == 1
        assert snap["loader.epoch"][1] > 0.0
        assert snap["loader.batches"][0] == 3  # 5 samples -> 2+2+1
        assert snap["executor.items"][0] == 5

    def test_reconfigure_keeps_determinism_and_state(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        ref = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=7,
                         num_workers=2)
        want = [b for b, _ in ref.batches(1)]

        dl = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=7,
                        num_workers=0)
        list(dl.batches(0))
        stats_before = dl.stats
        pipeline_before = dl.pipeline
        dl.reconfigure(num_workers=2, prefetch_depth=8)
        assert dl.executor.num_workers == 2
        assert dl.executor.prefetch_depth == 8
        assert dl.stats is stats_before  # counters survive the swap
        assert dl.pipeline is pipeline_before
        got = [b for b, _ in dl.batches(1)]
        for a, b in zip(want, got):
            assert np.array_equal(a, b)
        assert dl.stats.snapshot()["loader.epoch"][0] == 2

    def test_reconfigure_partial_keeps_other_knob(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        dl = DataLoader(ListSource(blobs), plugin, num_workers=3,
                        prefetch_depth=5)
        dl.reconfigure(prefetch_depth=2)
        assert dl.executor.num_workers == 3
        assert dl.executor.prefetch_depth == 2
        dl.reconfigure(num_workers=1)
        assert dl.executor.num_workers == 1
        assert dl.executor.prefetch_depth == 2


class TestReconfigureMidEpoch:
    """Satellite: the adaptive controller may call ``reconfigure()`` while
    a ``batches()`` generator is still being consumed.  The in-flight epoch
    must finish on the executor it started with (order intact), the next
    epoch must pick up the new settings, and the shared stats registry must
    keep accumulating across the swap."""

    def _reference_epochs(self, deepcam_blobs, seed=11):
        plugin, blobs = deepcam_blobs
        ref = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=seed)
        return [
            [b for b, _ in ref.batches(epoch)] for epoch in (0, 1)
        ]

    @pytest.mark.parametrize(
        "before,after",
        [
            ((0, 4), (2, 4)),   # scale up from synchronous
            ((2, 4), (0, 4)),   # scale down to synchronous
            ((2, 1), (2, 8)),   # depth-only change
            ((1, 2), (4, 1)),   # both knobs at once
        ],
    )
    def test_order_preserved_across_mid_epoch_reconfigure(
        self, deepcam_blobs, before, after
    ):
        plugin, blobs = deepcam_blobs
        want0, want1 = self._reference_epochs(deepcam_blobs)
        dl = DataLoader(
            ListSource(blobs), plugin, batch_size=2, seed=11,
            num_workers=before[0], prefetch_depth=before[1],
        )
        gen = dl.batches(0)
        got0 = [next(gen)[0]]  # epoch under way...
        dl.reconfigure(num_workers=after[0], prefetch_depth=after[1])
        got0.extend(b for b, _ in gen)  # ...finishes on the old executor
        assert len(got0) == len(want0)
        for a, b in zip(got0, want0):
            assert np.array_equal(a, b)
        # the next epoch runs on the new executor and is still bit-exact
        assert dl.executor.num_workers == after[0]
        assert dl.executor.prefetch_depth == after[1]
        got1 = [b for b, _ in dl.batches(1)]
        assert len(got1) == len(want1)
        for a, b in zip(got1, want1):
            assert np.array_equal(a, b)

    def test_stats_accumulate_across_mid_epoch_reconfigure(
        self, deepcam_blobs
    ):
        plugin, blobs = deepcam_blobs
        dl = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=3,
                        num_workers=0)
        gen = dl.batches(0)
        next(gen)
        dl.reconfigure(num_workers=2, prefetch_depth=2)
        list(gen)
        list(dl.batches(1))
        snap = dl.stats.snapshot()
        # 5 samples/epoch × 2 epochs, counted by two different executors
        # into the one registry
        assert snap["executor.items"][0] == 10
        assert snap["loader.epoch"][0] == 2
        assert snap["loader.batches"][0] == 6
        assert snap["executor.items"][1] > 0.0

    def test_quarantine_log_survives_reconfigure(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        bad = list(blobs)
        bad[2] = b"not a container"
        dl = DataLoader(ListSource(bad), plugin, batch_size=2, seed=0,
                        shuffle=False, bad_sample_policy="skip")
        list(dl.batches(0))
        assert dl.quarantine.ids() == [2]
        log_before = dl.quarantine
        dl.reconfigure(num_workers=2)
        assert dl.quarantine is log_before
        list(dl.batches(1))
        assert len(dl.quarantine) == 2  # same sample quarantined again


class TestFailedItemSerialization:
    """Satellite: ``FailedItem`` must describe the failure without the live
    exception object — ``repr`` + formatted traceback, JSON-safe."""

    def _failed(self):
        def inner_raiser():
            raise RuntimeError("decode went sideways")

        try:
            inner_raiser()
        except RuntimeError as exc:
            return FailedItem(index=7, error=exc)

    def test_repr_and_traceback_captured_eagerly(self):
        item = self._failed()
        assert item.error_repr == "RuntimeError('decode went sideways')"
        assert "inner_raiser" in item.traceback
        assert item.traceback.rstrip().endswith(
            "RuntimeError: decode went sideways"
        )

    def test_to_json_is_json_safe(self):
        import json

        item = self._failed()
        wire = json.dumps(item.to_json())
        back = json.loads(wire)
        assert back["index"] == 7
        assert "decode went sideways" in back["error"]
        assert "inner_raiser" in back["traceback"]

    def test_exception_without_traceback(self):
        item = FailedItem(index=0, error=ValueError("never raised"))
        assert item.error_repr == "ValueError('never raised')"
        assert item.traceback == ""
        assert item.to_json()["traceback"] == ""

    def test_executor_delivered_failures_are_serializable(
        self, deepcam_blobs
    ):
        import json

        plugin, blobs = deepcam_blobs
        bad = list(blobs)
        bad[1] = b"garbage"
        pipe = Pipeline([ReadOp(ListSource(bad)), DecodeOp(plugin)])
        for workers in (0, 2):
            ex = PrefetchExecutor(pipe, num_workers=workers,
                                  prefetch_depth=2)
            out = list(ex.run([0, 1, 2], on_error="yield"))
            failed = out[1]
            assert isinstance(failed, FailedItem)
            rec = json.loads(json.dumps(failed.to_json()))
            assert rec["index"] == 1
            assert rec["error"]
            assert "Traceback" in rec["traceback"]


class TestOpRoundTrips:
    """Satellite: dtype round-trips and augmentation determinism."""

    def test_cast_op_fp16_fp32_round_trip_is_lossless(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        item = PipelineItem(index=0, blob=blobs[0])
        item = DecodeOp(plugin)(item)
        original = item.tensor.copy()
        assert original.dtype == np.float16
        item = CastOp(np.float32)(item)
        assert item.tensor.dtype == np.float32
        item = CastOp(np.float16)(item)
        # every FP16 value survives the FP32 round trip bit-for-bit
        assert item.tensor.tobytes() == original.tobytes()

    def test_cast_op_int_round_trip_is_lossless(self):
        t = np.arange(-300, 300, dtype=np.int16)
        item = PipelineItem(index=0, tensor=t.copy())
        item = CastOp(np.int32)(item)
        item = CastOp(np.int16)(item)
        assert item.tensor.tobytes() == t.tobytes()

    def test_cast_op_same_dtype_does_not_copy(self):
        t = np.ones(4, dtype=np.float32)
        out = CastOp(np.float32)(PipelineItem(index=0, tensor=t))
        assert out.tensor is t  # astype(copy=False) short-circuits

    def test_flip_deterministic_across_runs_and_instances(self, deepcam_blobs):
        """The flip seed derives from (epoch, index) only — two fresh op
        instances agree per epoch, and reruns of the same epoch schedule
        are bit-identical."""
        plugin, blobs = deepcam_blobs
        for epoch in range(3):
            outs = []
            for _ in range(2):  # fresh op instance each run
                op = RandomFlipOp(probability=0.5)
                item = PipelineItem(
                    index=2, blob=blobs[2], meta={"epoch": epoch}
                )
                item = op(DecodeOp(plugin)(item))
                outs.append((item.tensor.tobytes(), item.label.tobytes()))
            assert outs[0] == outs[1]

    def test_flip_decision_varies_with_epoch(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        op = RandomFlipOp(probability=0.5)
        flips = set()
        for epoch in range(8):
            item = PipelineItem(index=1, blob=blobs[1], meta={"epoch": epoch})
            item = op(DecodeOp(plugin)(item))
            flips.add(bool(item.meta.get("flipped")))
        assert flips == {True, False}  # epoch enters the seed


class TestLabelTransformWithBadSamplePolicy:
    """Satellite: LabelTransformOp composes with every bad-sample policy —
    transformed labels for survivors, quarantine unaffected."""

    def _loader(self, deepcam_blobs, policy):
        plugin, blobs = deepcam_blobs
        bad = list(blobs)
        bad[2] = b"not a container"
        return DataLoader(
            ListSource(bad), plugin, batch_size=1, shuffle=False,
            bad_sample_policy=policy,
            extra_ops=[LabelTransformOp(lambda l: l.astype(np.float32) * 2)],
        )

    def test_skip_policy_transforms_survivors(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        dl = self._loader(deepcam_blobs, "skip")
        labels = [l[0] for _, l in dl.batches(0)]
        assert len(labels) == 4  # sample 2 skipped
        assert dl.quarantine.ids() == [2]
        for got, i in zip(labels, [0, 1, 3, 4]):
            _, want = plugin.decode(blobs[i])
            assert np.array_equal(got, want.astype(np.float32) * 2)

    def test_substitute_policy_reuses_transformed_label(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        dl = self._loader(deepcam_blobs, "substitute")
        labels = [l[0] for _, l in dl.batches(0)]
        assert len(labels) == 5  # geometry preserved
        # slot 2 repeats the transformed label of sample 1
        assert np.array_equal(labels[2], labels[1])
        _, want = plugin.decode(blobs[1])
        assert np.array_equal(labels[2], want.astype(np.float32) * 2)

    def test_raise_policy_propagates_with_index(self, deepcam_blobs):
        dl = self._loader(deepcam_blobs, "raise")
        with pytest.raises(Exception) as ei:
            list(dl.batches(0))
        assert ei.value.sample_index == 2


class TestThreadSafeStageTimes:
    """Satellite: per-worker stopwatch accumulation merged on read."""

    def test_counts_exact_under_threaded_executor(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        pipe = Pipeline([ReadOp(ListSource(blobs)), DecodeOp(plugin)])
        order = [i % 5 for i in range(40)]
        list(PrefetchExecutor(pipe, num_workers=4, prefetch_depth=4).run(order))
        merged = pipe.stopwatch
        assert merged.counts["read"] == len(order)
        assert merged.counts["decode"] == len(order)
        assert merged.totals["decode"] > 0.0

    def test_counts_exact_under_raw_thread_hammer(self, deepcam_blobs):
        import threading

        plugin, blobs = deepcam_blobs
        pipe = Pipeline([ReadOp(ListSource(blobs)), DecodeOp(plugin)])
        per_thread = 25

        def hammer():
            for i in range(per_thread):
                pipe.run(i % 5)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert pipe.stopwatch.counts["read"] == 6 * per_thread
        assert pipe.stage_times()["read"] > 0.0

    def test_stopwatch_property_returns_fresh_merged_copy(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        pipe = Pipeline([ReadOp(ListSource(blobs)), DecodeOp(plugin)])
        pipe.run(0)
        a = pipe.stopwatch
        pipe.run(1)
        b = pipe.stopwatch
        assert a is not b
        assert a.counts["read"] == 1  # snapshot unaffected by later runs
        assert b.counts["read"] == 2

    def test_flush_stage_stats_publishes_deltas(self, deepcam_blobs):
        from repro.tune.stats import StatsRegistry

        plugin, blobs = deepcam_blobs
        pipe = Pipeline([ReadOp(ListSource(blobs)), DecodeOp(plugin)])
        stats = StatsRegistry()
        for i in range(3):
            pipe.run(i)
        pipe.flush_stage_stats(stats)
        snap = stats.snapshot()
        assert snap["pipeline.read"][0] == 3
        assert snap["pipeline.decode"][1] > 0.0
        # second flush publishes only the delta
        pipe.run(3)
        pipe.run(4)
        pipe.flush_stage_stats(stats)
        snap = stats.snapshot()
        assert snap["pipeline.read"][0] == 5
        # nothing new: a further flush adds nothing
        flushed = pipe.flush_stage_stats(stats)
        assert flushed == {}
        assert stats.snapshot()["pipeline.read"][0] == 5

    def test_loader_publishes_pipeline_counters(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        dl = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=0,
                        num_workers=2)
        list(dl.batches(0))
        snap = dl.stats.snapshot()
        assert snap["pipeline.read"][0] == 5
        assert snap["pipeline.decode"][0] == 5
        assert snap["pipeline.decode"][1] > 0.0
        list(dl.batches(1))
        assert dl.stats.snapshot()["pipeline.read"][0] == 10
