"""Tests for the CosmoFlow lookup-table codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.encoding.lut import (
    LutCodecConfig,
    apply_to_tables,
    decode_sample,
    encode_sample,
)


def _sample(grid=8, channels=4, n_values=12, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.integers(0, n_values, size=(grid, grid, grid))
    # couple channels: later redshifts are deterministic-ish functions of
    # the base field plus small shifts, like the coupled snapshots
    out = np.stack(
        [np.clip(base + c + rng.integers(0, 2, base.shape), 0, None)
         for c in range(channels)]
    )
    return out.astype(np.int16)


class TestRoundtrip:
    def test_lossless(self):
        data = _sample()
        enc = encode_sample(data)
        assert np.array_equal(decode_sample(enc), data)

    def test_lossless_2d_volume(self):
        data = _sample()[:, :, :, 0]  # channel-first 2-D
        enc = encode_sample(data)
        assert np.array_equal(decode_sample(enc), data)

    def test_lossless_1_channel(self):
        data = _sample(channels=1)
        enc = encode_sample(data)
        assert np.array_equal(decode_sample(enc), data)

    def test_output_dtype_override(self):
        data = _sample()
        out = decode_sample(encode_sample(data), dtype=np.float16)
        assert out.dtype == np.float16
        assert np.array_equal(out.astype(np.int16), data)

    def test_out_buffer(self):
        data = _sample()
        enc = encode_sample(data)
        buf = np.empty(data.shape, dtype=data.dtype)
        res = decode_sample(enc, out=buf)
        assert res is buf and np.array_equal(buf, data)

    def test_out_buffer_validation(self):
        enc = encode_sample(_sample())
        with pytest.raises(ValueError):
            decode_sample(enc, out=np.empty((1, 2, 3), dtype=np.int16))

    def test_rejects_scalar_input(self):
        with pytest.raises(ValueError):
            encode_sample(np.int16(3))


class TestKeyWidths:
    def test_1_byte_keys_for_small_tables(self):
        data = np.zeros((4, 4, 4, 4), dtype=np.int16)
        data[0, 0, 0, 0] = 1  # two groups
        enc = encode_sample(data)
        assert enc.tables[0].key_width == 1

    def test_2_byte_keys_above_256_groups(self):
        # 512 distinct groups in one channel
        vals = np.arange(512, dtype=np.int16).reshape(1, 8, 8, 8)
        enc = encode_sample(vals)
        assert enc.tables[0].key_width == 2
        assert np.array_equal(decode_sample(enc), vals)

    def test_compression_on_lowish_cardinality(self):
        data = _sample(grid=16, n_values=30)
        enc = encode_sample(data)
        # 4 channels x int16 = 8 B/voxel vs ~2 B/voxel keys + small table
        assert enc.nbytes < data.nbytes / 2


class TestMultiTable:
    def test_splits_when_groups_exceed_limit(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 3000, size=(4, 8, 8, 8)).astype(np.int16)
        cfg = LutCodecConfig(max_groups_per_table=200)
        enc = encode_sample(data, cfg)
        assert len(enc.tables) > 1
        assert all(t.n_groups <= 200 for t in enc.tables)
        assert np.array_equal(decode_sample(enc), data)

    def test_regions_partition_volume(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 2000, size=(4, 8, 8, 8)).astype(np.int16)
        enc = encode_sample(data, LutCodecConfig(max_groups_per_table=100))
        voxels = sum(
            int(np.prod([hi - lo for lo, hi in t.region]))
            for t in enc.tables
        )
        assert voxels == 8 * 8 * 8

    def test_single_voxel_volume(self):
        # a 1-voxel region always has exactly one group, so even the
        # tightest limit never needs a split
        data = np.arange(8, dtype=np.int16).reshape(8, 1, 1, 1)
        enc = encode_sample(data, LutCodecConfig(max_groups_per_table=1))
        assert len(enc.tables) == 1
        assert np.array_equal(decode_sample(enc), data)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LutCodecConfig(max_groups_per_table=0)
        with pytest.raises(ValueError):
            LutCodecConfig(max_groups_per_table=1 << 17)


class TestOperatorFusion:
    def test_log_on_tables_equals_log_on_volume(self):
        data = _sample(grid=12, n_values=40, seed=3)
        enc = encode_sample(data)
        fused = apply_to_tables(
            enc, lambda v: np.log1p(v.astype(np.float32)),
            out_dtype=np.float16,
        )
        got = decode_sample(fused, dtype=np.float16)
        want = np.log1p(data.astype(np.float32)).astype(np.float16)
        assert np.array_equal(got, want)

    def test_fusion_touches_only_table_entries(self):
        data = _sample(grid=12)
        enc = encode_sample(data)
        calls = {"n": 0}

        def op(v):
            calls["n"] += v.size
            return v * 2

        apply_to_tables(enc, op)
        total_entries = sum(t.values.size for t in enc.tables)
        assert calls["n"] == total_entries
        assert total_entries < data.size  # the whole point of the fusion

    def test_fusion_shares_key_arrays(self):
        enc = encode_sample(_sample())
        fused = apply_to_tables(enc, lambda v: v + 1)
        for a, b in zip(enc.tables, fused.tables):
            assert a.keys is b.keys  # zero-copy on the bulky part

    def test_fusion_multi_table(self):
        rng = np.random.default_rng(4)
        data = rng.integers(0, 2000, size=(4, 8, 8, 8)).astype(np.int16)
        enc = encode_sample(data, LutCodecConfig(max_groups_per_table=128))
        fused = apply_to_tables(
            enc, lambda v: np.log1p(v.astype(np.float32)),
            out_dtype=np.float16,
        )
        got = decode_sample(fused, dtype=np.float16)
        want = np.log1p(data.astype(np.float32)).astype(np.float16)
        assert np.array_equal(got, want)


class TestProperties:
    @given(
        hnp.arrays(
            np.int16,
            shape=st.tuples(
                st.integers(1, 4), st.integers(1, 6),
                st.integers(1, 6), st.integers(1, 6),
            ),
            elements=st.integers(-300, 300),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        enc = encode_sample(data)
        assert np.array_equal(decode_sample(enc), data)

    @given(
        hnp.arrays(
            np.int16,
            shape=st.tuples(st.integers(2, 4), st.integers(2, 5),
                            st.integers(2, 5), st.integers(2, 5)),
            elements=st.integers(0, 50),
        ),
        st.integers(2, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_multitable_roundtrip_property(self, data, limit):
        enc = encode_sample(data, LutCodecConfig(max_groups_per_table=limit))
        assert np.array_equal(decode_sample(enc), data)
        assert all(t.n_groups <= limit for t in enc.tables)
