"""Tests for the autotuner: stats, cost model, search, controller."""

import time

import numpy as np
import pytest

from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.pipeline import DataLoader, ListSource
from repro.pipeline.graph import Pipeline
from repro.pipeline.ops import Op, PipelineItem, ReadOp
from repro.simulate.machine import MACHINES
from repro.tune import (
    AdaptiveController,
    EpochObservation,
    StatsRegistry,
    TuneConfig,
    collect_loader_stats,
    paper_config,
    predict_throughput,
    resolve_machine,
    simulate_config,
    tune,
    workload_space,
)

SUMMIT = MACHINES["Summit"]


@pytest.fixture(scope="module")
def deepcam_blobs():
    cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(6, cfg, seed=1)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


class TestStatsRegistry:
    def test_stat_identity_and_accumulation(self):
        reg = StatsRegistry()
        s = reg.stat("x")
        assert reg.stat("x") is s
        s.add(0.5)
        s.add(1.5, n=2)
        assert s.n == 3
        assert s.total == pytest.approx(2.0)
        assert s.mean == pytest.approx(2.0 / 3)

    def test_snapshot_diffable_and_clear(self):
        reg = StatsRegistry()
        reg.add("a", 1.0)
        before = reg.snapshot()
        reg.add("a", 2.0)
        after = reg.snapshot()
        assert after["a"][0] - before["a"][0] == 1
        assert after["a"][1] - before["a"][1] == pytest.approx(2.0)
        assert "a" in reg and len(reg) == 1
        reg.clear()
        assert len(reg) == 0

    def test_mean_empty_is_zero(self):
        assert StatsRegistry().stat("y").mean == 0.0


class TestCollectLoaderStats:
    def test_merges_all_layers(self, deepcam_blobs):
        from repro.pipeline import CachedSource
        from repro.storage import SampleCache

        plugin, blobs = deepcam_blobs
        cache = SampleCache(len(blobs[0]) * 2 + 1)
        dl = DataLoader(
            CachedSource(ListSource(blobs), cache), plugin, batch_size=2,
        )
        list(dl.batches(0))
        list(dl.batches(1))
        out = collect_loader_stats(dl)
        assert out["stages_s"]["decode"] > 0
        assert out["counters"]["executor.items"]["n"] == 12
        assert out["counters"]["loader.epoch"]["n"] == 2
        c = out["cache"]
        assert c["misses"] > 0 and c["evictions"] > 0
        assert c["evicted_bytes"] > 0
        assert c["used_bytes"] <= c["capacity_bytes"]


class TestTuneConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TuneConfig(plugin="x", placement="tpu")
        with pytest.raises(ValueError):
            TuneConfig(plugin="x", num_workers=0)
        with pytest.raises(ValueError):
            TuneConfig(plugin="x", prefetch_depth=0)
        with pytest.raises(ValueError):
            TuneConfig(plugin="x", cache_fraction=0.0)
        with pytest.raises(ValueError):
            TuneConfig(plugin="x", gzip_level=1.0)

    def test_describe_mentions_every_knob(self):
        cfg = TuneConfig(plugin="lut", placement="gpu", staged=False,
                         num_workers=2, prefetch_depth=8, cache_fraction=0.2)
        d = cfg.describe()
        assert "lut/gpu" in d and "unstaged" in d
        assert "w2" in d and "d8" in d and "c20%" in d


class TestCostModel:
    def _space(self):
        return workload_space("cosmoflow")

    def test_optimized_config_is_gpu_bound_and_fast(self):
        space = self._space()
        cfg = space.config("plugin", staged=True, num_workers=4)
        pred = predict_throughput(
            SUMMIT, space.workload, space.costs["plugin"], cfg, 2048
        )
        assert pred.bottleneck == "gpu"
        base = space.config("base", staged=True, num_workers=4)
        pred_base = predict_throughput(
            SUMMIT, space.workload, space.costs["base"], base, 2048
        )
        assert pred.steady_samples_per_s > pred_base.steady_samples_per_s

    def test_unstaged_pfs_hurts_cold_throughput(self):
        space = self._space()
        staged = space.config("plugin", staged=True)
        unstaged = space.config("plugin", staged=False)
        cost = space.costs["plugin"]
        p_staged = predict_throughput(SUMMIT, space.workload, cost, staged, 2048)
        p_unstaged = predict_throughput(
            SUMMIT, space.workload, cost, unstaged, 2048
        )
        assert p_unstaged.cold_samples_per_s < p_staged.cold_samples_per_s

    def test_small_samples_cache_better(self):
        space = self._space()
        cost_small = space.costs["plugin"]  # encoded: ~4x smaller
        cost_big = space.costs["base"]
        cfg_small = space.config("plugin", cache_fraction=0.1)
        cfg_big = space.config("base", cache_fraction=0.1)
        p_small = predict_throughput(
            SUMMIT, space.workload, cost_small, cfg_small, 2048
        )
        p_big = predict_throughput(
            SUMMIT, space.workload, cost_big, cfg_big, 2048
        )
        assert p_small.hit_rate > p_big.hit_rate

    def test_footprint_grows_with_depth_and_workers(self):
        space = self._space()
        cost = space.costs["plugin"]
        small = space.config("plugin", num_workers=1, prefetch_depth=4)
        big = space.config("plugin", num_workers=8, prefetch_depth=32)
        f_small = predict_throughput(
            SUMMIT, space.workload, cost, small, 2048
        ).footprint_bytes
        f_big = predict_throughput(
            SUMMIT, space.workload, cost, big, 2048
        ).footprint_bytes
        assert f_big > f_small

    def test_few_workers_bind_the_loader(self):
        space = self._space()
        cost = space.costs["base"]  # CPU-heavy representation
        cfg = space.config("base", num_workers=1, cache_fraction=0.1)
        pred = predict_throughput(SUMMIT, space.workload, cost, cfg, 2048)
        assert pred.bottleneck in ("loader", "cpu", "storage")
        more = space.config("base", num_workers=16, cache_fraction=0.1)
        pred_more = predict_throughput(SUMMIT, space.workload, cost, more, 2048)
        assert (
            pred_more.steady_samples_per_s >= pred.steady_samples_per_s
        )

    def test_rejects_empty_dataset(self):
        space = self._space()
        with pytest.raises(ValueError):
            predict_throughput(
                SUMMIT, space.workload, space.costs["plugin"],
                space.config("plugin"), 0,
            )


class TestSearch:
    def test_resolve_machine_case_insensitive(self):
        assert resolve_machine("summit").name == "Summit"
        assert resolve_machine("CORI_V100").name == "Cori-V100"
        with pytest.raises(ValueError):
            resolve_machine("frontier")

    def test_unknown_workload_and_plugin(self):
        with pytest.raises(ValueError):
            workload_space("resnet")
        with pytest.raises(ValueError):
            workload_space("cosmoflow").config("nope")

    def test_deterministic_for_seed(self):
        space = workload_space("cosmoflow")
        a = tune(SUMMIT, space, seed=3, validate=False)
        b = tune(SUMMIT, space, seed=3, validate=False)
        assert a.best.config == b.best.config
        assert [t.config for t in a.trials] == [t.config for t in b.trials]
        assert a.evaluations == b.evaluations

    def test_converges_and_ranks_trials(self):
        space = workload_space("cosmoflow")
        res = tune(SUMMIT, space, seed=0, validate=False)
        assert res.converged
        assert res.trials[0] is res.best
        scores = [t.prediction.steady_samples_per_s for t in res.trials]
        assert scores == sorted(scores, reverse=True) or len(set(scores)) > 1
        assert res.evaluations == len(res.trials)

    def test_acceptance_summit_cosmoflow_within_15pct(self):
        """Acceptance: converged search, prediction vs what-if within 15%."""
        space = workload_space("cosmoflow")
        res = tune(SUMMIT, space, seed=0, validate=True)
        assert res.converged
        best = res.best
        assert best.simulated_samples_per_s is not None
        assert best.prediction_error < 0.15

    @pytest.mark.parametrize("machine_name", list(MACHINES))
    @pytest.mark.parametrize("workload", ["cosmoflow", "deepcam"])
    def test_search_matches_or_beats_paper(self, machine_name, workload):
        machine = MACHINES[machine_name]
        space = workload_space(workload)
        res = tune(machine, space, seed=0, validate=True)
        paper = paper_config(machine, space)
        # the searched representation/placement reproduce the paper's choice
        assert res.best.config.plugin == paper.plugin
        assert res.best.config.placement == paper.placement
        assert res.best.config.staged == paper.staged
        paper_sim = simulate_config(
            machine, space, paper, res.samples_per_gpu
        ).node_samples_per_s
        assert res.best.simulated_samples_per_s >= paper_sim * 0.999

    def test_to_json_round_trips(self):
        import json

        space = workload_space("deepcam")
        res = tune(SUMMIT, space, seed=1, validate=False, max_rounds=2)
        blob = json.dumps(res.to_json())
        data = json.loads(blob)
        assert data["machine"] == "Summit"
        assert data["best"]["config"]["plugin"] in space.costs


class TestTrainSimOverrides:
    def test_validation(self):
        from repro.simulate.trainsim import TrainSimConfig

        space = workload_space("cosmoflow")
        base = dict(
            machine=SUMMIT, workload=space.workload,
            cost=space.costs["plugin"], plugin_name="plugin",
            placement="gpu", samples_per_gpu=64, batch_size=4, staged=True,
        )
        with pytest.raises(ValueError):
            TrainSimConfig(**base, num_workers=0)
        with pytest.raises(ValueError):
            TrainSimConfig(**base, cache_fraction=0.0)
        with pytest.raises(ValueError):
            TrainSimConfig(**base, cache_fraction=1.5)

    def test_worker_override_changes_cpu_bound_throughput(self):
        space = workload_space("cosmoflow")
        starved = simulate_config(
            SUMMIT, space,
            space.config("base", num_workers=1, cache_fraction=0.3), 256,
            epochs=2, sim_samples_cap=32,
        )
        fed = simulate_config(
            SUMMIT, space,
            space.config("base", num_workers=8, cache_fraction=0.3), 256,
            epochs=2, sim_samples_cap=32,
        )
        assert fed.node_samples_per_s > starved.node_samples_per_s

    def test_cache_override_changes_hit_rate(self):
        space = workload_space("cosmoflow")
        small = simulate_config(
            SUMMIT, space,
            space.config("base", cache_fraction=0.1), 4096,
            epochs=2, sim_samples_cap=32,
        )
        big = simulate_config(
            SUMMIT, space,
            space.config("base", cache_fraction=0.45), 4096,
            epochs=2, sim_samples_cap=32,
        )
        assert big.cache_hit_rate > small.cache_hit_rate


class _FakeExecutor:
    def __init__(self, num_workers, prefetch_depth):
        self.num_workers = num_workers
        self.prefetch_depth = prefetch_depth


class _FakeLoader:
    """Duck-typed stand-in so controller decisions can be unit-tested."""

    def __init__(self, num_workers=1, prefetch_depth=2):
        self.stats = StatsRegistry()
        self.executor = _FakeExecutor(num_workers, prefetch_depth)
        self.calls = []

    def reconfigure(self, num_workers=None, prefetch_depth=None):
        self.calls.append((num_workers, prefetch_depth))
        if num_workers is not None:
            self.executor.num_workers = num_workers
        if prefetch_depth is not None:
            self.executor.prefetch_depth = prefetch_depth


def _obs(loader, epoch_s, starvation, occupancy):
    return EpochObservation(
        epoch_s=epoch_s, starvation=starvation, occupancy=occupancy,
        num_workers=loader.executor.num_workers,
        prefetch_depth=loader.executor.prefetch_depth,
    )


class TestAdaptiveController:
    def test_starved_grows_workers_and_keeps_improvement(self):
        loader = _FakeLoader(num_workers=1)
        ctl = AdaptiveController(loader)
        action = ctl.observe(_obs(loader, 10.0, starvation=0.8, occupancy=0.9))
        assert action == "grow num_workers 1 -> 2"
        assert loader.executor.num_workers == 2
        # the grow halved the epoch: kept, and starvation continues growth
        action = ctl.observe(_obs(loader, 5.0, starvation=0.6, occupancy=0.9))
        assert action == "grow num_workers 2 -> 4"

    def test_useless_grow_reverts_and_locks(self):
        loader = _FakeLoader(num_workers=1)
        ctl = AdaptiveController(loader)
        ctl.observe(_obs(loader, 10.0, starvation=0.8, occupancy=0.9))
        # no improvement: revert and lock the (workers, +1) direction
        action = ctl.observe(_obs(loader, 10.0, starvation=0.8, occupancy=0.9))
        assert action.startswith("revert num_workers -> 1")
        assert loader.executor.num_workers == 1
        # still starved: workers locked, so depth grows instead
        action = ctl.observe(_obs(loader, 10.0, starvation=0.8, occupancy=0.9))
        assert action == "grow prefetch_depth 2 -> 4"

    def test_idle_shrinks_and_keeps_when_not_worse(self):
        loader = _FakeLoader(num_workers=8)
        ctl = AdaptiveController(loader)
        action = ctl.observe(_obs(loader, 10.0, starvation=0.0, occupancy=0.1))
        assert action == "shrink num_workers 8 -> 4"
        # not worse (and now busy enough): shrink sticks, nothing new
        action = ctl.observe(_obs(loader, 10.1, starvation=0.0, occupancy=0.6))
        assert action == "hold"
        assert loader.executor.num_workers == 4

    def test_harmful_shrink_reverts(self):
        loader = _FakeLoader(num_workers=8)
        ctl = AdaptiveController(loader)
        ctl.observe(_obs(loader, 10.0, starvation=0.0, occupancy=0.1))
        action = ctl.observe(_obs(loader, 15.0, starvation=0.3, occupancy=0.9))
        assert action.startswith("revert num_workers -> 8")
        assert loader.executor.num_workers == 8

    def test_converges_after_settle_epochs(self):
        loader = _FakeLoader(num_workers=2)
        ctl = AdaptiveController(loader, settle_epochs=2)
        assert not ctl.converged
        ctl.observe(_obs(loader, 10.0, starvation=0.01, occupancy=0.8))
        assert not ctl.converged
        ctl.observe(_obs(loader, 10.0, starvation=0.01, occupancy=0.8))
        assert ctl.converged
        assert loader.calls == []  # never touched the loader

    def test_validation(self):
        loader = _FakeLoader()
        with pytest.raises(ValueError):
            AdaptiveController(loader, min_workers=4, max_workers=2)
        with pytest.raises(ValueError):
            AdaptiveController(loader, min_depth=0)
        with pytest.raises(ValueError):
            AdaptiveController(loader, hysteresis=-0.1)

    def test_read_observation_diffs_epochs(self, deepcam_blobs):
        plugin, blobs = deepcam_blobs
        dl = DataLoader(ListSource(blobs), plugin, batch_size=2,
                        num_workers=2)
        ctl = AdaptiveController(dl)
        list(dl.batches(0))
        obs = ctl.read_observation()
        assert obs.epoch_s > 0
        assert 0.0 <= obs.starvation <= 1.0
        assert 0.0 <= obs.occupancy <= 1.0
        assert obs.num_workers == 2
        # second epoch diffs against the first snapshot, not the total
        list(dl.batches(1))
        obs2 = ctl.read_observation()
        total_epoch_s = dl.stats.snapshot()["loader.epoch"][1]
        assert obs2.epoch_s < total_epoch_s


class _SleepOp(Op):
    """Preparation dominated by a GIL-releasing stall (I/O-like)."""

    name = "sleepy"

    def __init__(self, seconds):
        self.seconds = seconds

    def __call__(self, item: PipelineItem) -> PipelineItem:
        time.sleep(self.seconds)
        item.tensor = np.zeros(2, dtype=np.float32)
        item.label = np.zeros(1, dtype=np.float32)
        return item


class TestControllerIntegration:
    def test_controller_beats_static_default(self, deepcam_blobs):
        """Acceptance: on a skewed-cost (stall-dominated) pipeline the
        controller's final epochs are measurably faster than the static
        initial configuration."""
        plugin, blobs = deepcam_blobs
        n, delay = 12, 0.004
        source = ListSource(blobs[:1] * n)
        loader = DataLoader(source, plugin, batch_size=4, shuffle=False,
                            num_workers=1, prefetch_depth=2,
                            extra_ops=[_SleepOp(delay)])
        ctl = AdaptiveController(loader, hysteresis=0.05, max_workers=8)

        epoch_times = []
        for epoch in range(8):
            t0 = time.perf_counter()
            for _ in loader.batches(epoch):
                pass
            epoch_times.append(time.perf_counter() - t0)
            ctl.after_epoch()

        assert loader.executor.num_workers > 1  # it actually scaled up
        # final config beats the static default by a clear margin
        assert min(epoch_times[-2:]) < epoch_times[0] * 0.7
        grew = [a for _, a in ctl.history if a.startswith("grow")]
        assert grew  # the improvement came from controller actions
