"""The batch plane, end to end: scatter-gather framing, batched sources,
vectorized multi-sample decode, executor batch mode, and the conformance
checks that hold every batched path bit-identical to the scalar one.

Layered to match docs/batching.md:

* wire — ``frame_parts``/``send_frame``/``batch_reply_parts`` are
  wire-identical to the scalar framing and move payload buffers by
  reference (zero-copy regression tests assert buffer *identity*, not
  just equality);
* sources — ``read_batch``/``read_batch_slots`` equal a sequential read
  loop for every source, under arbitrary batch sizes, orderings and
  duplicated indices (Hypothesis property tests);
* decode — ``check_batch_equivalence`` proves ``decode_batch`` ≡ a
  scalar decode loop for both workload plugins, including the
  mixed-shape fallback and simulated-GPU accounting;
* executor/loader — ``batched_fetch=True`` yields bit-identical epochs
  across worker counts and the process-pool decode backend, with
  unchanged quarantine semantics;
* tune/graph — the cost model's batch-size axis and the compiled plan's
  ``batch_overhead`` amortization reproduce the scalar numbers at B=1.
"""

import socket

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.device import V100, SimulatedGpu
from repro.conformance import check_batch_equivalence
from repro.core.plugins import CosmoflowLutPlugin, DeepcamDeltaPlugin
from repro.datasets import cosmoflow, deepcam
from repro.pipeline import CachedSource, DataLoader, ListSource, TfRecordSource
from repro.pipeline.sources import read_batch, read_batch_slots
from repro.serve import DataServer, RemoteSource, protocol
from repro.storage import SampleCache, tfrecord


@pytest.fixture(scope="module")
def deepcam_fix():
    cfg = deepcam.DeepcamConfig(height=12, width=20, n_channels=4)
    plugin = DeepcamDeltaPlugin("cpu")
    ds = deepcam.generate_dataset(10, cfg, seed=7)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


@pytest.fixture(scope="module")
def cosmo_fix():
    cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=3000)
    plugin = CosmoflowLutPlugin("cpu")
    ds = cosmoflow.generate_dataset(6, cfg, seed=9)
    return plugin, [plugin.encode(s.data, s.label) for s in ds]


# --------------------------------------------------------------------------
# wire framing
# --------------------------------------------------------------------------


class TestFrameParts:
    def test_wire_identical_to_pack_frame(self):
        parts = [b"abc", memoryview(b"defgh"), bytearray(b"ij"), b""]
        joined = b"".join(bytes(p) for p in parts)
        assert (
            b"".join(bytes(p) for p in protocol.frame_parts(protocol.ST_OK, parts))
            == protocol.pack_frame(protocol.ST_OK, joined)
        )

    def test_empty_parts_equal_empty_body(self):
        assert (
            b"".join(protocol.frame_parts(protocol.OP_INFO, []))
            == protocol.pack_frame(protocol.OP_INFO, b"")
        )

    def test_parts_enter_by_reference(self):
        """Zero-copy regression: the blob buffer itself is in the list."""
        blob = b"x" * 4096
        out = protocol.frame_parts(protocol.ST_OK, [blob])
        assert out[1] is blob

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            protocol.frame_parts(0x7F, [b""])

    def test_send_frame_round_trips_over_a_socket(self, deepcam_fix):
        _, blobs = deepcam_fix
        a, b = socket.socketpair()
        try:
            parts = [protocol._COUNT.pack(2), blobs[0], blobs[1]]
            sent = protocol.send_frame(a, protocol.ST_OK, parts)
            expect = b"".join(bytes(p) for p in parts)
            assert sent == protocol._HEAD.size + len(expect) + protocol._CRC.size
            kind, body = protocol.recv_frame(b, frame_timeout_s=5.0)
            assert kind == protocol.ST_OK
            assert body == expect
        finally:
            a.close()
            b.close()

    def test_send_frame_handles_many_small_buffers(self):
        """More parts than one sendmsg iovec batch still lands intact."""
        parts = [bytes([i % 251]) * 3 for i in range(2000)]
        a, b = socket.socketpair()
        try:
            b.settimeout(5.0)
            done = []
            import threading

            t = threading.Thread(
                target=lambda: done.append(
                    protocol.send_frame(a, protocol.ST_OK, parts)
                )
            )
            t.start()
            kind, body = protocol.recv_frame(b, frame_timeout_s=10.0)
            t.join(timeout=10.0)
            assert kind == protocol.ST_OK
            assert body == b"".join(parts)
        finally:
            a.close()
            b.close()


class TestBatchReplyBody:
    def _slots(self, blobs):
        err = protocol.pack_json({"error": "OSError", "message": "boom"})
        return [
            (protocol.SLOT_OK, blobs[0]),
            (protocol.SLOT_ERROR, err),
            (protocol.SLOT_OK, b""),
            (protocol.SLOT_OK, blobs[1]),
        ]

    def test_round_trip(self, deepcam_fix):
        _, blobs = deepcam_fix
        slots = self._slots(blobs)
        body = b"".join(bytes(p) for p in protocol.batch_reply_parts(slots))
        out = protocol.unpack_batch_reply(body)
        assert [(s, bytes(p)) for s, p in out] == [
            (s, bytes(p)) for s, p in slots
        ]

    def test_payloads_are_views_of_the_body(self, deepcam_fix):
        """Unpacking a batch reply never copies a payload."""
        _, blobs = deepcam_fix
        slots = self._slots(blobs)
        body = b"".join(bytes(p) for p in protocol.batch_reply_parts(slots))
        for _, payload in protocol.unpack_batch_reply(body):
            assert isinstance(payload, memoryview)
            assert payload.obj is body

    def test_reply_parts_hold_blobs_by_reference(self, deepcam_fix):
        _, blobs = deepcam_fix
        parts = protocol.batch_reply_parts([(protocol.SLOT_OK, blobs[3])])
        assert any(p is blobs[3] for p in parts)

    def test_empty_batch(self):
        body = b"".join(protocol.batch_reply_parts([]))
        assert protocol.unpack_batch_reply(body) == []

    def test_unknown_slot_status_rejected(self):
        with pytest.raises(ValueError):
            protocol.batch_reply_parts([(0x42, b"")])

    def test_truncated_and_overrun_bodies_are_protocol_errors(
        self, deepcam_fix
    ):
        _, blobs = deepcam_fix
        body = b"".join(
            bytes(p)
            for p in protocol.batch_reply_parts(
                [(protocol.SLOT_OK, blobs[0])]
            )
        )
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_batch_reply(b"\x01")  # shorter than the count
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_batch_reply(body[: protocol._COUNT.size + 2])
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_batch_reply(body[:-1])  # payload overruns
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_batch_reply(body + b"\x00")  # trailing bytes

    def test_indices_round_trip(self):
        for arr in ([], [0], [5, 3, 3, 9, 0]):
            got = protocol.unpack_indices(
                protocol.pack_indices(np.asarray(arr, dtype=np.int64))
            )
            assert got.tolist() == arr
            assert got.dtype == np.int64


# --------------------------------------------------------------------------
# batched sources
# --------------------------------------------------------------------------


class _Recorder:
    """Minimal source wrapper counting which read paths were exercised."""

    def __init__(self, blobs, with_batch=False, with_slots=False):
        self._blobs = list(blobs)
        self.reads = 0
        self.batch_calls = 0
        self.slot_calls = 0
        if with_batch:
            self.read_batch = self._read_batch
        if with_slots:
            self.read_batch_slots = self._read_batch_slots

    def __len__(self):
        return len(self._blobs)

    def read(self, index):
        self.reads += 1
        return self._blobs[index]

    def _read_batch(self, indices):
        self.batch_calls += 1
        return [self._blobs[int(i)] for i in indices]

    def _read_batch_slots(self, indices):
        self.slot_calls += 1
        return [self._blobs[int(i)] for i in indices]


class TestSourceBatchPlane:
    def test_list_source_read_batch(self, deepcam_fix):
        _, blobs = deepcam_fix
        src = ListSource(blobs)
        order = [3, 0, 3, 9, 1]
        assert src.read_batch(order) == [blobs[i] for i in order]
        with pytest.raises(IndexError):
            src.read_batch([0, len(blobs)])

    def test_tfrecord_source_read_batch(self, tmp_path, deepcam_fix):
        _, blobs = deepcam_fix
        path = tmp_path / "d.tfr"
        with tfrecord.TfRecordWriter(path) as w:
            for b in blobs:
                w.write(b)
        with TfRecordSource(path) as src:
            order = [9, 2, 2, 0, 5]
            assert src.read_batch(order) == [blobs[i] for i in order]
            assert src.read_batch([]) == []

    def test_cached_source_batches_only_the_misses(self, deepcam_fix):
        _, blobs = deepcam_fix
        inner = _Recorder(blobs, with_batch=True)
        src = CachedSource(inner, SampleCache(10**9))
        assert src.read_batch([0, 1, 2]) == blobs[:3]
        assert (inner.batch_calls, inner.reads) == (1, 0)
        # warm batch: served entirely from the cache, inner untouched
        assert src.read_batch([2, 0, 1]) == [blobs[2], blobs[0], blobs[1]]
        assert (inner.batch_calls, inner.reads) == (1, 0)
        # partial: one inner batched read for exactly the misses
        assert src.read_batch([1, 4, 0, 3]) == [
            blobs[1], blobs[4], blobs[0], blobs[3]
        ]
        assert (inner.batch_calls, inner.reads) == (2, 0)

    def test_helper_falls_back_to_a_read_loop(self, deepcam_fix):
        _, blobs = deepcam_fix
        plain = _Recorder(blobs)  # no batch methods at all
        assert read_batch(plain, [1, 1, 4]) == [blobs[1], blobs[1], blobs[4]]
        assert plain.reads == 3

    def test_helper_prefers_the_batched_method(self, deepcam_fix):
        _, blobs = deepcam_fix
        src = _Recorder(blobs, with_batch=True)
        assert read_batch(src, [0, 2]) == [blobs[0], blobs[2]]
        assert (src.batch_calls, src.reads) == (1, 0)

    def test_slots_helper_dispatches_to_native_slots(self, deepcam_fix):
        _, blobs = deepcam_fix
        src = _Recorder(blobs, with_batch=True, with_slots=True)
        assert read_batch_slots(src, [5, 6]) == [blobs[5], blobs[6]]
        assert (src.slot_calls, src.batch_calls) == (1, 0)

    def test_slots_helper_isolates_a_strict_batch_failure(self, deepcam_fix):
        """One bad index fails its slot, not its batch-mates."""
        _, blobs = deepcam_fix
        src = _Recorder(blobs, with_batch=True)
        bad = len(blobs) + 3
        slots = read_batch_slots(src, [1, bad, 4])
        assert slots[0] == blobs[1]
        assert isinstance(slots[1], IndexError)
        assert slots[2] == blobs[4]
        # the strict batched call failed once, then the per-index loop ran
        assert src.batch_calls == 1
        assert src.reads == 3

    def test_slots_helper_empty_batch(self, deepcam_fix):
        _, blobs = deepcam_fix
        assert read_batch_slots(ListSource(blobs), []) == []


class TestCacheZeroCopy:
    def test_get_view_returns_a_view_of_the_stored_blob(self, deepcam_fix):
        _, blobs = deepcam_fix
        cache = SampleCache(10**9)
        cache.put(0, blobs[0])
        view = cache.get_view(0)
        assert isinstance(view, memoryview)
        assert view.obj is blobs[0]  # zero-copy: not an owned copy
        assert bytes(view) == blobs[0]

    def test_get_view_miss_and_stats(self):
        cache = SampleCache(100)
        assert cache.get_view("absent") is None
        cache.put("k", b"abc")
        cache.get_view("k")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1


# --------------------------------------------------------------------------
# property tests: read_batch ≡ sequential read
# --------------------------------------------------------------------------


class TestBatchReadProperties:
    @given(order=st.lists(st.integers(0, 9), max_size=24))
    @settings(max_examples=60, deadline=None)
    def test_list_source_batch_equals_loop(self, deepcam_fix, order):
        _, blobs = deepcam_fix
        src = ListSource(blobs)
        expect = [src.read(i) for i in order]
        assert src.read_batch(order) == expect
        assert read_batch(src, order) == expect
        assert read_batch_slots(src, order) == expect

    @given(order=st.lists(st.integers(0, 9), max_size=24))
    @settings(max_examples=40, deadline=None)
    def test_cached_source_batch_equals_loop(self, deepcam_fix, order):
        _, blobs = deepcam_fix
        # a cache that can only hold ~3 blobs: the property must hold
        # through evictions and partial-hit batches alike
        src = CachedSource(
            ListSource(blobs), SampleCache(3 * len(blobs[0]) + 1)
        )
        assert src.read_batch(order) == [blobs[i] for i in order]

    @given(order=st.lists(st.integers(0, 9), max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_tfrecord_source_batch_equals_loop(
        self, tmp_path_factory, deepcam_fix, order
    ):
        _, blobs = deepcam_fix
        path = tmp_path_factory.getbasetemp() / "prop.tfr"
        if not path.exists():
            with tfrecord.TfRecordWriter(path) as w:
                for b in blobs:
                    w.write(b)
        with TfRecordSource(path) as src:
            assert src.read_batch(order) == [blobs[i] for i in order]

    def test_batch_of_one_and_empty(self, deepcam_fix):
        _, blobs = deepcam_fix
        src = ListSource(blobs)
        assert src.read_batch([]) == []
        assert src.read_batch([7]) == [blobs[7]]
        assert read_batch_slots(src, [7]) == [blobs[7]]


# --------------------------------------------------------------------------
# vectorized decode conformance
# --------------------------------------------------------------------------


class TestBatchDecodeEquivalence:
    def test_deepcam_batched_decode_bit_identical(self, deepcam_fix):
        plugin, blobs = deepcam_fix
        report = check_batch_equivalence(plugin, blobs)
        report.raise_if_failed()
        assert report.codec == "batch"

    def test_cosmoflow_batched_decode_bit_identical(self, cosmo_fix):
        plugin, blobs = cosmo_fix
        check_batch_equivalence(plugin, blobs).raise_if_failed()

    def test_mixed_shape_batch_falls_back_bit_identically(self):
        """Samples of different geometry can't stack into one vectorized
        pass; the fallback loop must still be bit-identical."""
        plugin = DeepcamDeltaPlugin("cpu")
        blobs = []
        for h, w, seed in ((8, 12, 1), (16, 8, 2), (8, 12, 3)):
            cfg = deepcam.DeepcamConfig(height=h, width=w, n_channels=3)
            s = deepcam.generate_dataset(1, cfg, seed=seed)[0]
            blobs.append(plugin.encode(s.data, s.label))
        check_batch_equivalence(plugin, blobs).raise_if_failed()

    def test_gpu_placement_batch_keeps_device_accounting(self, ):
        cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=2000)
        plugin = CosmoflowLutPlugin("gpu")
        ds = cosmoflow.generate_dataset(4, cfg, seed=11)
        blobs = [plugin.encode(s.data, s.label) for s in ds]
        report = check_batch_equivalence(
            plugin, blobs, device=SimulatedGpu(spec=V100)
        )
        report.raise_if_failed()

    def test_a_lying_decode_batch_is_caught(self, deepcam_fix):
        plugin, blobs = deepcam_fix

        class Lying(DeepcamDeltaPlugin):
            def decode_batch(self, batch, device=None):
                pairs = [
                    (t.copy(), label)
                    for t, label in super().decode_batch(batch, device)
                ]
                t, _ = pairs[1]
                t.flat[0] += 1  # one element, one sample
                return pairs

        report = check_batch_equivalence(Lying("cpu"), blobs)
        assert not report.ok
        assert len(report.mismatches) == 1

    def test_empty_batch(self, deepcam_fix):
        plugin, _ = deepcam_fix
        assert plugin.decode_batch([]) == []


# --------------------------------------------------------------------------
# executor / loader batch mode
# --------------------------------------------------------------------------


def _epoch_bytes(loader, epoch=0):
    return [
        (b.tobytes(), l.tobytes()) for b, l in loader.batches(epoch)
    ]


class TestLoaderBatchMode:
    @pytest.mark.parametrize(
        "workers,procs", [(0, 0), (3, 0), (0, 2), (3, 2)]
    )
    def test_batched_fetch_is_bit_identical(
        self, deepcam_fix, workers, procs
    ):
        plugin, blobs = deepcam_fix
        reference = _epoch_bytes(
            DataLoader(ListSource(blobs), plugin, batch_size=4, seed=3)
        )
        batched = DataLoader(
            ListSource(blobs), plugin, batch_size=4, seed=3,
            num_workers=workers, batched_fetch=True,
            decode_processes=procs,
        )
        assert _epoch_bytes(batched) == reference
        snap = dict(batched.stats.snapshot())
        assert snap["executor.items"][0] == len(blobs)
        assert snap["executor.groups"][0] == 3  # ceil(10 / 4)

    def test_batched_fetch_gpu_placement_identical(self):
        cfg = cosmoflow.CosmoflowConfig(grid=8, n_particles=2500)
        plugin = CosmoflowLutPlugin("gpu")
        ds = cosmoflow.generate_dataset(6, cfg, seed=5)
        blobs = [plugin.encode(s.data, s.label) for s in ds]

        def run(batched):
            return _epoch_bytes(DataLoader(
                ListSource(blobs), plugin, batch_size=3, seed=1,
                device=SimulatedGpu(spec=V100), batched_fetch=batched,
            ))

        assert run(True) == run(False)

    def test_skip_policy_quarantines_identically(self, deepcam_fix):
        plugin, blobs = deepcam_fix
        bad = list(blobs)
        bad[6] = b"garbage"

        def run(batched):
            dl = DataLoader(
                ListSource(bad), plugin, batch_size=4, seed=2,
                bad_sample_policy="skip", batched_fetch=batched,
            )
            return _epoch_bytes(dl), dl.quarantine.ids()

        scalar_rows, scalar_q = run(False)
        batch_rows, batch_q = run(True)
        assert batch_rows == scalar_rows
        assert batch_q == scalar_q == [6]

    def test_raise_policy_carries_the_sample_index(self, deepcam_fix):
        plugin, blobs = deepcam_fix
        bad = list(blobs)
        bad[2] = b"garbage"
        dl = DataLoader(
            ListSource(bad), plugin, batch_size=5, shuffle=False,
            batched_fetch=True,
        )
        with pytest.raises(Exception) as exc_info:
            list(dl.batches(0))
        assert getattr(exc_info.value, "sample_index", None) == 2

    def test_reconfigure_retunes_fetch_granularity(self, deepcam_fix):
        plugin, blobs = deepcam_fix
        dl = DataLoader(
            ListSource(blobs), plugin, batch_size=2, seed=4,
            batched_fetch=True,
        )
        reference = _epoch_bytes(
            DataLoader(ListSource(blobs), plugin, batch_size=5, seed=4)
        )
        dl.reconfigure(batch_size=5)
        assert dl.executor.fetch_batch_size == 5
        assert _epoch_bytes(dl) == reference

    def test_remote_batched_epoch_bit_identical(self, deepcam_fix):
        """One READ_BATCH round-trip per training batch over a real
        server, byte-equal to the all-local scalar epoch."""
        plugin, blobs = deepcam_fix
        reference = _epoch_bytes(
            DataLoader(ListSource(blobs), plugin, batch_size=4, seed=6)
        )
        with DataServer(ListSource(blobs)) as server:
            remote = RemoteSource(*server.address)
            dl = DataLoader(
                remote, plugin, batch_size=4, seed=6, batched_fetch=True,
            )
            got = _epoch_bytes(dl)
            snap = dict(remote.stats.snapshot())
            remote.close()
        assert got == reference
        assert snap["remote.read_batch"][0] == 3  # one per batch


# --------------------------------------------------------------------------
# tune: the batch-size axis
# --------------------------------------------------------------------------


class TestTuneBatchAxis:
    def _space(self):
        from repro.tune.search import resolve_machine, workload_space

        return resolve_machine("summit"), workload_space("deepcam")

    def test_fetch_overhead_amortizes_with_batch_size(self):
        from repro.tune.costmodel import predict_throughput

        machine, space = self._space()
        cost = space.costs["base"]
        small = space.config("base", batch_size=1)
        big = space.config("base", batch_size=32)
        p1 = predict_throughput(
            machine, space.workload, cost, small, 2048,
            fetch_overhead_s=2e-3,
        )
        p32 = predict_throughput(
            machine, space.workload, cost, big, 2048,
            fetch_overhead_s=2e-3,
        )
        assert p32.steady_samples_per_s > p1.steady_samples_per_s
        # without the fixed overhead there is nothing to amortize: the
        # B=1 prediction must equal the overhead-free one exactly
        bare = predict_throughput(machine, space.workload, cost, small, 2048)
        zero = predict_throughput(
            machine, space.workload, cost, small, 2048, fetch_overhead_s=0.0
        )
        assert bare.steady_samples_per_s == zero.steady_samples_per_s

    def test_negative_overhead_rejected(self):
        from repro.tune.costmodel import predict_throughput

        machine, space = self._space()
        with pytest.raises(ValueError):
            predict_throughput(
                machine, space.workload, space.costs["base"],
                space.config("base"), 2048, fetch_overhead_s=-1.0,
            )

    def test_tune_picks_the_amortizing_batch_size(self):
        from repro.tune.search import tune

        machine, space = self._space()
        res = tune(
            machine, space, seed=0, validate=False,
            batch_sizes=(1, 4, 32), fetch_overhead_s=2e-3,
        )
        assert res.best.config.batch_size == 32

    def test_without_the_axis_batch_size_stays_fixed(self):
        from repro.tune.search import tune

        machine, space = self._space()
        res = tune(machine, space, seed=0, validate=False, batch_size=6)
        assert res.best.config.batch_size == 6


# --------------------------------------------------------------------------
# graph cost: batch_overhead amortization
# --------------------------------------------------------------------------


class TestGraphBatchCost:
    def _plan(self, deepcam_fix, overhead):
        from repro.graph.compiler import compile_graph
        from repro.graph.ir import PipelineGraph

        plugin, blobs = deepcam_fix
        g = PipelineGraph("batchy")
        g.read(ListSource(blobs))
        g.decode(plugin, batch_overhead=overhead)
        return compile_graph(g, optimize=False)

    def _base(self):
        from repro.core.plugins.base import SampleCost

        return SampleCost(
            stored_bytes=1000, h2d_bytes=500,
            decoded_bytes=500, cpu_preprocess_elems=100,
        )

    def test_batch_size_one_reproduces_the_scalar_cost(self, deepcam_fix):
        plan = self._plan(deepcam_fix, 0.5)
        base = self._base()
        assert (
            plan.sample_cost(base, sample_elems=1000, batch_size=1)
            == plan.sample_cost(base, sample_elems=1000)
        )

    def test_overhead_amortizes_monotonically(self, deepcam_fix):
        plan = self._plan(deepcam_fix, 0.5)
        base = self._base()
        costs = [
            plan.sample_cost(base, sample_elems=1000, batch_size=b)
            for b in (1, 2, 8, 64)
        ]
        elems = [c.cpu_preprocess_elems for c in costs]
        assert elems == sorted(elems, reverse=True)
        # half the decode work is per-batch: at B→∞ it halves (the plan
        # integerizes element counts, so allow one element of rounding)
        assert abs(elems[-1] - elems[0] * (0.5 + 0.5 / 64)) <= 1

    def test_zero_overhead_is_batch_size_invariant(self, deepcam_fix):
        plan = self._plan(deepcam_fix, 0.0)
        base = self._base()
        assert (
            plan.sample_cost(base, sample_elems=1000, batch_size=64)
            == plan.sample_cost(base, sample_elems=1000, batch_size=1)
        )

    def test_invalid_knobs_rejected(self, deepcam_fix):
        from repro.graph.ir import OpAttrs

        with pytest.raises(ValueError):
            OpAttrs(batch_overhead=1.5)
        with pytest.raises(ValueError):
            OpAttrs(batch_overhead=-0.1)
        plan = self._plan(deepcam_fix, 0.5)
        with pytest.raises(ValueError):
            plan.sample_cost(self._base(), sample_elems=10, batch_size=0)
