"""Property tests for the ingest commit protocol and snapshot manifests.

Three properties hold for *arbitrary* payload sequences, publish points
and crash positions:

* **never torn** — any interleaving of appends, publishes and live
  reads only ever exposes fully committed records, in append order;
* **replay identity** — every published manifest replays byte-identical
  prefixes forever, no matter how far ingestion appends afterwards;
* **crash safety** — cutting or corrupting the shard file at *any* byte
  position, recovery preserves exactly the committed records whose
  frames precede the damage, bit for bit.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ingest import (
    AppendShard,
    IngestWriter,
    LiveIngestSource,
    ManifestSource,
    recover_shard,
)
from repro.ingest.shards import RECORD_OVERHEAD, scan_shard

payloads_st = st.lists(
    st.binary(min_size=0, max_size=60), min_size=1, max_size=12
)
# bool per payload: publish after this append?
publish_points_st = st.lists(st.booleans(), min_size=1, max_size=12)


@settings(max_examples=40, deadline=None)
@given(
    payloads=payloads_st,
    publishes=publish_points_st,
    shard_max=st.sampled_from([64, 100_000]),
)
def test_interleaved_append_publish_read_never_torn(
    payloads, publishes, shard_max
):
    with tempfile.TemporaryDirectory() as tmp:
        writer = IngestWriter(
            Path(tmp), fingerprint={}, shard_max_bytes=shard_max, fsync=False
        )
        live = LiveIngestSource(tmp)
        manifests = []
        for i, payload in enumerate(payloads):
            writer.append(payload)
            if publishes[i % len(publishes)]:
                manifests.append(writer.publish())
            writer.flush()
            # the live view exposes exactly the committed prefix, and
            # every byte it returns is what was appended at that index
            n = live.refresh()
            assert n == i + 1
            assert live.read(i) == payload
        writer.publish()
        writer.close()
        live.refresh()
        assert [live.read(i) for i in range(len(payloads))] == payloads
        for m in manifests:
            assert m.n_samples <= len(payloads)
        live.close()


@settings(max_examples=30, deadline=None)
@given(
    payloads=payloads_st,
    publishes=publish_points_st,
    shard_max=st.sampled_from([64, 100_000]),
)
def test_manifest_replay_is_byte_identical(payloads, publishes, shard_max):
    with tempfile.TemporaryDirectory() as tmp:
        writer = IngestWriter(
            Path(tmp), fingerprint={}, shard_max_bytes=shard_max, fsync=False
        )
        published = []  # (manifest, prefix frozen at publish time)
        for i, payload in enumerate(payloads):
            writer.append(payload)
            if publishes[i % len(publishes)]:
                published.append((writer.publish(), payloads[: i + 1]))
        published.append((writer.publish(), list(payloads)))
        writer.close()
        for manifest, frozen in published:
            assert manifest.n_samples == len(frozen)
            with ManifestSource(tmp, manifest) as src:
                assert len(src) == len(frozen)
                assert src.read_batch(range(len(frozen))) == frozen
        # ids are unique per distinct state and chain by parent
        distinct = {m.manifest_id: m for m, _ in published}
        chain = sorted(distinct.values(), key=lambda m: m.seq)
        for prev, nxt in zip(chain, chain[1:]):
            assert nxt.parent == prev.manifest_id


@settings(max_examples=40, deadline=None)
@given(payloads=payloads_st, data=st.data())
def test_crash_cut_preserves_committed_prefix(payloads, data):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "s.rec"
        ends = []  # frame end offset of each record
        with AppendShard(path) as shard:
            for payload in payloads:
                shard.append(payload)
                ends.append(shard.nbytes)
        size = path.stat().st_size
        assert size == ends[-1]
        cut = data.draw(st.integers(min_value=0, max_value=size), label="cut")
        with open(path, "r+b") as fh:
            fh.truncate(cut)
        report = recover_shard(path)
        expect = sum(1 for e in ends if e <= cut)
        assert report.n_records == expect
        assert report.valid_end == (ends[expect - 1] if expect else 0)
        scan = scan_shard(path)
        assert [
            path.read_bytes()[o:o + n] for o, n in scan.entries
        ] == payloads[:expect]


@settings(max_examples=40, deadline=None)
@given(payloads=payloads_st, data=st.data())
def test_corrupt_byte_never_yields_wrong_bytes(payloads, data):
    """Flipping any byte of the file: recovery keeps exactly the records
    before the damaged frame, and their payloads are untouched."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "s.rec"
        starts, ends = [], []
        offset = 0
        with AppendShard(path) as shard:
            for payload in payloads:
                starts.append(offset)
                shard.append(payload)
                offset = shard.nbytes
                ends.append(offset)
        size = path.stat().st_size
        pos = data.draw(
            st.integers(min_value=0, max_value=size - 1), label="pos"
        )
        raw = bytearray(path.read_bytes())
        raw[pos] ^= 0xA5
        path.write_bytes(raw)
        report = recover_shard(path)
        # the record containing pos is damaged; everything before it is
        # committed.  (A flipped length field can only shrink coverage
        # further, never extend it past a valid CRC.)
        damaged = next(
            i for i, (s, e) in enumerate(zip(starts, ends)) if s <= pos < e
        )
        assert report.n_records <= damaged
        scan = scan_shard(path)
        kept = [path.read_bytes()[o:o + n] for o, n in scan.entries]
        assert kept == payloads[: scan.n_records]
        assert RECORD_OVERHEAD * len(payloads) + sum(
            len(p) for p in payloads
        ) == size
