"""Fuzz tests: corrupted inputs fail loudly, never hang or crash oddly.

The container has no payload checksum by design (record-level CRC lives in
the TFRecord framing), so corruption inside a payload may decode to wrong
values; what must never happen is an unexpected exception type or a hang.
Header corruption must raise a clean error.
"""

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import container
from repro.core.encoding.delta import encode_image
from repro.core.encoding.lut import encode_sample

_EXPECTED = (ValueError, KeyError, zlib.error, struct.error, IndexError,
             TypeError, EOFError, OverflowError)


def _sample_blob():
    rng = np.random.default_rng(0)
    img = (np.cumsum(rng.normal(0, 0.01, (3, 4, 32)), axis=2) + 1.0).astype(
        np.float32
    )
    chans = [encode_image(c) for c in img]
    return container.pack_delta_sample(chans, np.arange(4, dtype=np.int8))


class TestContainerFuzz:
    @given(st.integers(0, 11), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_prefix_corruption_is_loud(self, pos, value):
        blob = bytearray(_sample_blob())
        if blob[pos] == value:
            return
        blob[pos] = value
        try:
            codec, payload, label, extra = container.unpack_sample(bytes(blob))
        except _EXPECTED:
            return
        # corrupting padding bytes is legitimately a no-op
        assert pos in (6, 7)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncation_is_loud(self, data):
        blob = _sample_blob()
        cut = data.draw(st.integers(0, len(blob) - 1))
        with pytest.raises(_EXPECTED):
            container.unpack_sample(blob[:cut])

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_random_bytes_never_crash_oddly(self, junk):
        try:
            container.unpack_sample(junk)
        except _EXPECTED:
            pass

    @given(st.integers(0, 10_000), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_payload_corruption_decodes_or_raises(self, pos, value):
        """Payload flips may change values (no checksum by design) but the
        decode path must either produce an array or raise cleanly."""
        from repro.core.encoding.delta import decode_image

        blob = bytearray(_sample_blob())
        hdr_len = struct.unpack_from("<I", blob, 8)[0]
        start = 12 + hdr_len
        target = start + (pos % (len(blob) - start))
        blob[target] = value
        try:
            codec, payload, label, _ = container.unpack_sample(bytes(blob))
        except _EXPECTED:
            return
        if codec == "delta":
            for enc in payload:
                try:
                    out = decode_image(enc)
                    assert out.shape == enc.shape
                except _EXPECTED:
                    return


class TestLutContainerFuzz:
    @given(st.integers(0, 255), st.integers(0, 5_000))
    @settings(max_examples=50, deadline=None)
    def test_lut_payload_corruption(self, value, pos):
        from repro.core.encoding.lut import decode_sample

        rng = np.random.default_rng(1)
        data = rng.integers(0, 40, (4, 6, 6, 6)).astype(np.int16)
        blob = bytearray(
            container.pack_lut_sample(encode_sample(data), np.zeros(4))
        )
        hdr_len = struct.unpack_from("<I", blob, 8)[0]
        start = 12 + hdr_len
        target = start + (pos % (len(blob) - start))
        blob[target] = value
        try:
            codec, enc, _, _ = container.unpack_sample(bytes(blob))
            out = decode_sample(enc)
            assert out.shape == enc.shape
        except _EXPECTED:
            pass
