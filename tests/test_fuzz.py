"""Fuzz tests: corrupted inputs fail loudly, never hang or crash oddly.

Since container v2 every byte after the fixed prefix is covered by a
CRC32 (header CRC in the prefix, per-section CRCs in the header), so any
corruption beyond the prefix must raise :class:`CorruptSampleError` —
silent decode-to-garbage is a bug.  Prefix corruption must still raise a
clean structural error; the only legitimately silent flips are the two
unused flag bytes.
"""

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import container
from repro.core.encoding.container import CorruptSampleError
from repro.core.encoding.delta import encode_image
from repro.core.encoding.lut import encode_sample

_EXPECTED = (ValueError, KeyError, zlib.error, struct.error, IndexError,
             TypeError, EOFError, OverflowError)

# v2 prefix: magic(4) version(1) codec(1) flags(2) hdr_len(4) hdr_crc(4)
_PREFIX = 16
#: flips with no observable effect: the two reserved flag bytes
_SILENT_PREFIX_POSITIONS = (6, 7)


def _sample_blob():
    rng = np.random.default_rng(0)
    img = (np.cumsum(rng.normal(0, 0.01, (3, 4, 32)), axis=2) + 1.0).astype(
        np.float32
    )
    chans = [encode_image(c) for c in img]
    return container.pack_delta_sample(chans, np.arange(4, dtype=np.int8))


def _payload_start(blob: bytes) -> int:
    hdr_len = struct.unpack_from("<I", blob, 8)[0]
    return _PREFIX + hdr_len


class TestContainerFuzz:
    @given(st.integers(0, _PREFIX - 1), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_prefix_corruption_is_loud(self, pos, value):
        blob = bytearray(_sample_blob())
        if blob[pos] == value:
            return
        blob[pos] = value
        try:
            container.unpack_sample(bytes(blob))
        except _EXPECTED:
            return
        # corrupting the reserved flag bytes is legitimately a no-op
        assert pos in _SILENT_PREFIX_POSITIONS

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncation_is_loud(self, data):
        blob = _sample_blob()
        cut = data.draw(st.integers(0, len(blob) - 1))
        with pytest.raises(_EXPECTED):
            container.unpack_sample(blob[:cut])

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_random_bytes_never_crash_oddly(self, junk):
        try:
            container.unpack_sample(junk)
        except _EXPECTED:
            pass

    @given(st.integers(0, 10_000), st.integers(0, 255))
    @settings(max_examples=80, deadline=None)
    def test_header_or_payload_corruption_always_detected(self, pos, value):
        """Any flipped byte beyond the prefix must raise CorruptSampleError
        — the v2 CRCs cover the JSON header and every payload section."""
        blob = bytearray(_sample_blob())
        target = _PREFIX + (pos % (len(blob) - _PREFIX))
        if blob[target] == value:
            return
        blob[target] = value
        with pytest.raises(CorruptSampleError):
            container.unpack_sample(bytes(blob))

    @given(st.integers(0, 10_000), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_unverified_decode_still_fails_cleanly(self, pos, value):
        """Opting out of verification may decode wrong values but must
        never raise an unexpected exception type or hang."""
        from repro.core.encoding.delta import decode_image

        blob = bytearray(_sample_blob())
        start = _payload_start(blob)
        target = start + (pos % (len(blob) - start))
        blob[target] = value
        try:
            codec, payload, label, _ = container.unpack_sample(
                bytes(blob), verify=False
            )
        except _EXPECTED:
            return
        if codec == "delta":
            for enc in payload:
                try:
                    out = decode_image(enc)
                    assert out.shape == enc.shape
                except _EXPECTED:
                    return


class TestLutContainerFuzz:
    @given(st.integers(0, 255), st.integers(0, 5_000))
    @settings(max_examples=50, deadline=None)
    def test_lut_payload_corruption_always_detected(self, value, pos):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 40, (4, 6, 6, 6)).astype(np.int16)
        blob = bytearray(
            container.pack_lut_sample(encode_sample(data), np.zeros(4))
        )
        target = _PREFIX + (pos % (len(blob) - _PREFIX))
        old = blob[target]
        blob[target] = value
        if old == value:
            return
        with pytest.raises(CorruptSampleError):
            container.unpack_sample(bytes(blob))


class TestRawContainerFuzz:
    @given(st.integers(0, 255), st.integers(0, 5_000))
    @settings(max_examples=50, deadline=None)
    def test_raw_payload_corruption_always_detected(self, value, pos):
        rng = np.random.default_rng(2)
        blob = bytearray(
            container.pack_raw_sample(
                rng.normal(size=(4, 8)).astype(np.float32),
                np.arange(4, dtype=np.int64),
            )
        )
        target = _PREFIX + (pos % (len(blob) - _PREFIX))
        old = blob[target]
        blob[target] = value
        if old == value:
            return
        with pytest.raises(CorruptSampleError):
            container.unpack_sample(bytes(blob))
