"""Finite-difference gradient checks and behaviour tests for every layer."""

import numpy as np
import pytest

from repro.ml.layers import (
    Concat,
    Conv2d,
    Conv3d,
    Dense,
    Dropout,
    Flatten,
    LeakyReLU,
    MaxPool,
    ReLU,
    Upsample,
)

_RNG = np.random.default_rng(0)


def check_gradients(layer, x, n_probe=4, eps=1e-3, tol=5e-3):
    """Compare analytic grads (params + input) against central differences
    of a random linear functional of the output."""
    y = layer.forward(x.copy())
    dy = _RNG.standard_normal(y.shape).astype(np.float32)

    def loss():
        out = layer.forward(x, training=False)
        return float((out.astype(np.float64) * dy).sum())

    dx = layer.backward(dy)
    assert dx.shape == x.shape
    for pname, p in layer.params.items():
        g = layer.grads[pname].reshape(-1)
        flat = p.reshape(-1)
        for i in _RNG.choice(flat.size, min(n_probe, flat.size), replace=False):
            orig = flat[i]
            flat[i] = orig + eps
            l1 = loss()
            flat[i] = orig - eps
            l2 = loss()
            flat[i] = orig
            fd = (l1 - l2) / (2 * eps)
            denom = max(abs(fd), abs(g[i]), 1e-4)
            assert abs(fd - g[i]) / denom < tol, (
                f"{layer.name}.{pname}[{i}]: fd={fd} analytic={g[i]}"
            )
    xf = x.reshape(-1)
    dxf = dx.reshape(-1)
    for i in _RNG.choice(xf.size, n_probe, replace=False):
        orig = xf[i]
        xf[i] = orig + eps
        l1 = loss()
        xf[i] = orig - eps
        l2 = loss()
        xf[i] = orig
        fd = (l1 - l2) / (2 * eps)
        denom = max(abs(fd), abs(dxf[i]), 1e-4)
        assert abs(fd - dxf[i]) / denom < tol, (
            f"{layer.name}.dx[{i}]: fd={fd} analytic={dxf[i]}"
        )


class TestConv2d:
    def test_gradients(self):
        layer = Conv2d("c", 3, 5, 3, rng=1)
        check_gradients(layer, _RNG.standard_normal((2, 3, 7, 9)).astype(np.float32))

    def test_1x1_kernel_gradients(self):
        layer = Conv2d("c", 4, 2, 1, rng=2)
        check_gradients(layer, _RNG.standard_normal((2, 4, 5, 5)).astype(np.float32))

    def test_same_padding_shape(self):
        layer = Conv2d("c", 2, 6, 5, rng=3)
        y = layer.forward(np.zeros((1, 2, 10, 12), np.float32))
        assert y.shape == (1, 6, 10, 12)

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            Conv2d("c", 1, 1, 4)

    def test_wrong_input_shape_rejected(self):
        layer = Conv2d("c", 3, 5, 3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 2, 8, 8), np.float32))

    def test_identity_kernel(self):
        layer = Conv2d("c", 1, 1, 3, rng=0)
        layer.params["w"][:] = 0
        layer.params["w"][0, 0, 1, 1] = 1.0
        x = _RNG.standard_normal((1, 1, 6, 6)).astype(np.float32)
        assert np.allclose(layer.forward(x, training=False), x, atol=1e-6)

    def test_backward_before_forward_raises(self):
        layer = Conv2d("c", 1, 1, 3)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 4, 4), np.float32))


class TestConv3d:
    def test_gradients(self):
        layer = Conv3d("c3", 2, 3, 3, rng=4)
        check_gradients(
            layer, _RNG.standard_normal((2, 2, 5, 6, 4)).astype(np.float32)
        )

    def test_same_padding_shape(self):
        layer = Conv3d("c3", 1, 2, 3)
        y = layer.forward(np.zeros((1, 1, 8, 8, 8), np.float32))
        assert y.shape == (1, 2, 8, 8, 8)


class TestDense:
    def test_gradients(self):
        layer = Dense("d", 11, 7, rng=5)
        check_gradients(layer, _RNG.standard_normal((4, 11)).astype(np.float32))

    def test_linearity(self):
        layer = Dense("d", 3, 2, rng=6)
        x = _RNG.standard_normal((2, 3)).astype(np.float32)
        y1 = layer.forward(2 * x, training=False)
        y0 = layer.forward(np.zeros_like(x), training=False)
        y = layer.forward(x, training=False)
        assert np.allclose(y1 - y0, 2 * (y - y0), atol=1e-4)


class TestActivations:
    def test_relu_gradients(self):
        check_gradients(ReLU(), _RNG.standard_normal((3, 8)).astype(np.float32) + 0.05)

    def test_relu_clamps(self):
        y = ReLU().forward(np.array([-1.0, 0.0, 2.0], dtype=np.float32))
        assert list(y) == [0.0, 0.0, 2.0]

    def test_leaky_relu_gradients(self):
        check_gradients(
            LeakyReLU(slope=0.2),
            _RNG.standard_normal((3, 8)).astype(np.float32) + 0.05,
        )

    def test_leaky_relu_negative_slope(self):
        y = LeakyReLU(slope=0.1).forward(np.array([-10.0], dtype=np.float32))
        assert y[0] == pytest.approx(-1.0)


class TestMaxPool:
    def test_forward_2d(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        y = MaxPool("p", 2).forward(x)
        assert y.shape == (1, 1, 2, 2)
        assert np.array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_gradients_2d(self):
        # add noise so maxima are unique (ties split gradients)
        x = _RNG.standard_normal((2, 3, 6, 8)).astype(np.float32)
        check_gradients(MaxPool("p", 2), x)

    def test_gradients_3d(self):
        x = _RNG.standard_normal((1, 2, 4, 4, 4)).astype(np.float32)
        check_gradients(MaxPool("p3", 3), x)

    def test_tie_splitting_conserves_gradient(self):
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        pool = MaxPool("p", 2)
        pool.forward(x)
        dx = pool.backward(np.array([[[[1.0]]]], dtype=np.float32))
        assert dx.sum() == pytest.approx(1.0)
        assert np.allclose(dx, 0.25)

    def test_odd_spatial_rejected(self):
        with pytest.raises(ValueError):
            MaxPool("p", 2).forward(np.zeros((1, 1, 3, 4), np.float32))


class TestUpsample:
    def test_forward_2d(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32)
        y = Upsample("u", 2).forward(x)
        assert y.shape == (1, 1, 4, 4)
        assert np.array_equal(y[0, 0, :2, :2], [[1, 1], [1, 1]])

    def test_gradients(self):
        check_gradients(
            Upsample("u", 2),
            _RNG.standard_normal((2, 2, 3, 4)).astype(np.float32),
        )

    def test_adjoint_of_repeat(self):
        # backward must sum the 2x2 blocks
        up = Upsample("u", 2)
        up.forward(np.zeros((1, 1, 1, 1), np.float32))
        dy = np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2)
        assert up.backward(dy)[0, 0, 0, 0] == 6.0


class TestFlattenDropoutConcat:
    def test_flatten_roundtrip(self):
        fl = Flatten()
        x = _RNG.standard_normal((2, 3, 4)).astype(np.float32)
        y = fl.forward(x)
        assert y.shape == (2, 12)
        assert fl.backward(y).shape == x.shape

    def test_dropout_inference_identity(self):
        drop = Dropout("d", 0.5, seed=1)
        x = np.ones((4, 4), np.float32)
        assert np.array_equal(drop.forward(x, training=False), x)

    def test_dropout_preserves_expectation(self):
        drop = Dropout("d", 0.5, seed=2)
        x = np.ones((200, 200), np.float32)
        y = drop.forward(x, training=True)
        assert abs(y.mean() - 1.0) < 0.05  # inverted dropout

    def test_dropout_mask_applied_to_grads(self):
        drop = Dropout("d", 0.5, seed=3)
        x = np.ones((10, 10), np.float32)
        y = drop.forward(x, training=True)
        dx = drop.backward(np.ones_like(y))
        assert np.array_equal(dx == 0, y == 0)

    def test_dropout_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout("d", 1.0)

    def test_concat_backward_splits(self):
        a = np.ones((1, 2, 3, 3), np.float32)
        b = np.ones((1, 5, 3, 3), np.float32)
        y = Concat.forward([a, b])
        assert y.shape == (1, 7, 3, 3)
        da, db = Concat.backward(np.ones_like(y), [2, 5])
        assert da.shape == a.shape and db.shape == b.shape


class TestBatchNorm:
    def test_normalizes_in_training(self):
        from repro.ml.layers import BatchNorm

        bn = BatchNorm("bn", 3)
        x = _RNG.standard_normal((8, 3, 6, 6)).astype(np.float32) * 5 + 2
        y = bn.forward(x)
        means = y.mean(axis=(0, 2, 3))
        stds = y.std(axis=(0, 2, 3))
        assert np.allclose(means, 0, atol=1e-5)
        assert np.allclose(stds, 1, atol=1e-4)

    def test_gradients(self):
        from repro.ml.layers import BatchNorm

        # FD must use training-mode forwards: eval mode normalizes with
        # *running* stats, a different function than the one backward
        # differentiates
        rng = np.random.default_rng(77)
        layer = BatchNorm("bn", 2)
        x = rng.standard_normal((4, 2, 5, 5)).astype(np.float32)
        y = layer.forward(x.copy(), training=True)
        dy = rng.standard_normal(y.shape).astype(np.float32)

        def loss():
            out = layer.forward(x, training=True)
            return float((out.astype(np.float64) * dy).sum())

        dx = layer.backward(dy)
        eps = 1e-3
        for pname in ("gamma", "beta"):
            g = layer.grads[pname]
            p = layer.params[pname]
            for i in range(p.size):
                orig = p[i]
                p[i] = orig + eps
                l1 = loss()
                p[i] = orig - eps
                l2 = loss()
                p[i] = orig
                fd = (l1 - l2) / (2 * eps)
                assert abs(fd - g[i]) / max(abs(fd), 1e-4) < 1e-2, pname
        xf = x.reshape(-1)
        dxf = dx.reshape(-1)
        for i in rng.choice(xf.size, 6, replace=False):
            orig = xf[i]
            xf[i] = orig + eps
            l1 = loss()
            xf[i] = orig - eps
            l2 = loss()
            xf[i] = orig
            fd = (l1 - l2) / (2 * eps)
            assert abs(fd - dxf[i]) / max(abs(fd), abs(dxf[i]), 1e-3) < 5e-2

    def test_running_stats_used_in_eval(self):
        from repro.ml.layers import BatchNorm

        bn = BatchNorm("bn", 2, momentum=1.0)  # adopt batch stats directly
        x = _RNG.standard_normal((16, 2, 4, 4)).astype(np.float32) * 3 + 1
        bn.forward(x, training=True)
        y_eval = bn.forward(x, training=False)
        assert np.allclose(y_eval.mean(axis=(0, 2, 3)), 0, atol=1e-4)

    def test_gamma_beta_applied(self):
        from repro.ml.layers import BatchNorm

        bn = BatchNorm("bn", 1)
        bn.params["gamma"][:] = 2.0
        bn.params["beta"][:] = 5.0
        x = _RNG.standard_normal((8, 1, 4)).astype(np.float32)
        y = bn.forward(x)
        assert abs(y.mean() - 5.0) < 1e-4
        assert abs(y.std() - 2.0) < 1e-3

    def test_validation(self):
        from repro.ml.layers import BatchNorm
        import pytest

        with pytest.raises(ValueError):
            BatchNorm("bn", 0)
        with pytest.raises(ValueError):
            BatchNorm("bn", 2, momentum=0.0)
        bn = BatchNorm("bn", 2)
        with pytest.raises(ValueError):
            bn.forward(np.zeros((2, 3, 4), np.float32))


class TestDilatedConv:
    def test_dilated_shape_preserved(self):
        layer = Conv2d("c", 1, 1, 3, rng=0, dilation=3)
        y = layer.forward(np.zeros((1, 1, 12, 14), np.float32))
        assert y.shape == (1, 1, 12, 14)

    def test_dilated_gradients(self):
        layer = Conv2d("c", 2, 2, 3, rng=5, dilation=2)
        check_gradients(
            layer, _RNG.standard_normal((2, 2, 9, 9)).astype(np.float32),
            tol=1e-2,  # FP32 FD noise; the analytic path is exact
        )

    def test_dilation_one_matches_default(self):
        a = Conv2d("a", 1, 1, 3, rng=7)
        b = Conv2d("b", 1, 1, 3, rng=7, dilation=1)
        x = _RNG.standard_normal((1, 1, 6, 6)).astype(np.float32)
        assert np.allclose(a.forward(x, training=False),
                           b.forward(x, training=False))

    def test_dilated_receptive_field(self):
        # a dilation-2 3x3 kernel reads taps 2 apart: an impulse at the
        # centre spreads to offsets {-2, 0, +2}
        layer = Conv2d("c", 1, 1, 3, rng=0, dilation=2)
        layer.params["w"][:] = 1.0
        layer.params["b"][:] = 0.0
        x = np.zeros((1, 1, 9, 9), np.float32)
        x[0, 0, 4, 4] = 1.0
        y = layer.forward(x, training=False)
        nz = np.argwhere(y[0, 0] != 0)
        offsets = {tuple(p - 4) for p in nz}
        assert offsets == {(dy, dx) for dy in (-2, 0, 2) for dx in (-2, 0, 2)}

    def test_dilation_validation(self):
        import pytest

        with pytest.raises(ValueError):
            Conv2d("c", 1, 1, 3, dilation=0)
