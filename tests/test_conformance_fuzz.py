"""Differential fuzzing: ≥1000 structured cases per codec, every run.

This is the acceptance gate the kit exists for: every delta decode
implementation (loop reference-from-docs, production loop, vectorized,
accelerator kernel) and every LUT decode path must agree bit-for-bit on
1000+ fuzzer-generated samples per codec, every tier-1 run.  The crash
corpus (``tests/crashes/``) is replayed too, so past failures stay fixed.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.accel.device import V100, SimulatedGpu
from repro.conformance import fuzz, replay_crashes
from repro.conformance.fuzzer import (
    DELTA_KINDS,
    LUT_KINDS,
    gen_delta_case,
    gen_lut_case,
    save_crash,
)
from repro.core.encoding.delta import DeltaCodecConfig
from repro.util.rng import make_rng

CRASH_DIR = Path(__file__).parent / "crashes"

#: acceptance criterion: at least this many fuzz samples per codec
N_SAMPLES = 1000


def _fail_detail(report):
    return "; ".join(
        [str(m) for m in report.mismatches[:5]]
        + [c["error"] for c in report.crashes[:5]]
    )


@pytest.fixture(scope="module")
def device():
    return SimulatedGpu(spec=V100)


def test_delta_differential_1000_samples(device):
    report = fuzz("delta", samples=N_SAMPLES, seed=42, device=device)
    assert report.cases >= N_SAMPLES
    assert report.ok, _fail_detail(report)
    # the structured corpus must actually exercise every kind
    assert set(report.by_kind) == set(DELTA_KINDS)


def test_lut_differential_1000_samples(device):
    report = fuzz("lut", samples=N_SAMPLES, seed=42, device=device)
    assert report.cases >= N_SAMPLES
    assert report.ok, _fail_detail(report)
    assert set(report.by_kind) == set(LUT_KINDS)


def test_crash_corpus_replays_clean(device):
    """Every saved reproducer in tests/crashes/ must pass forever."""
    report = replay_crashes(CRASH_DIR, device=device)
    assert report.ok, _fail_detail(report)


class TestGenerators:
    def test_deterministic_from_seed(self):
        for gen in (gen_delta_case, gen_lut_case):
            a_data, a_cfg, a_kind = gen(make_rng(9))
            b_data, b_cfg, b_kind = gen(make_rng(9))
            assert a_kind == b_kind and a_cfg == b_cfg
            assert a_data.tobytes() == b_data.tobytes()

    def test_delta_kinds_produce_targeted_structure(self):
        rng = make_rng(0)
        seen = {}
        for _ in range(300):
            img, cfg, kind = gen_delta_case(rng)
            seen[kind] = seen.get(kind, 0) + 1
            assert img.dtype == np.float32 and img.ndim == 2
            if kind == "specials":
                assert not np.isfinite(img).all()
            if kind == "denormal":
                finite = img[np.isfinite(img) & (img != 0)]
                if finite.size:
                    assert (
                        np.abs(finite).max()
                        < np.finfo(np.float32).tiny * 1e4
                    )
        assert set(seen) == set(DELTA_KINDS)

    def test_lut_kinds_produce_targeted_structure(self):
        rng = make_rng(0)
        seen = set()
        for _ in range(300):
            vol, cfg, kind = gen_lut_case(rng)
            seen.add(kind)
            assert vol.ndim >= 2
            if kind == "single_voxel":
                assert all(d == 1 for d in vol.shape[1:])
            if kind == "flat":
                assert np.unique(vol).size == 1
            if kind == "split":
                assert cfg.max_groups_per_table <= 16
        assert seen == set(LUT_KINDS)

    def test_budget_mode_stops_early(self):
        report = fuzz("lut", budget_s=0.2, seed=0)
        assert report.cases > 0
        assert report.elapsed_s < 5.0

    def test_requires_a_budget(self):
        with pytest.raises(ValueError, match="samples or budget_s"):
            fuzz("delta")

    def test_rejects_unknown_codec(self):
        with pytest.raises(ValueError, match="codec"):
            fuzz("gzip", samples=1)


class TestCrashCorpus:
    def test_save_and_replay_roundtrip(self, tmp_path):
        img, cfg, kind = gen_delta_case(make_rng(5))
        path = save_crash(tmp_path, "delta", img, cfg, kind=kind,
                          seed=5, case=0, detail="unit test")
        assert path.is_file()
        report = replay_crashes(tmp_path)
        assert report.cases == 1
        assert report.ok

    def test_save_is_idempotent_by_content(self, tmp_path):
        img, cfg, kind = gen_delta_case(make_rng(5))
        p1 = save_crash(tmp_path, "delta", img, cfg, kind=kind,
                        seed=5, case=0)
        p2 = save_crash(tmp_path, "delta", img, cfg, kind=kind,
                        seed=5, case=99)
        assert p1 == p2
        assert len(list(tmp_path.glob("*.npz"))) == 1

    def test_empty_corpus_replays_clean(self, tmp_path):
        report = replay_crashes(tmp_path)
        assert report.cases == 0 and report.ok

    def test_mismatch_is_saved_and_replay_fails(self, tmp_path, monkeypatch):
        """A diverging implementation produces a reproducer, and the
        reproducer keeps failing on replay until the codec is fixed."""
        import repro.conformance.differential as diff

        def bad_decode(enc, out=None):
            res = diff.decode_image(enc, out=out)
            res.view(np.uint16).reshape(-1)[0] ^= 1
            return res

        monkeypatch.setattr(diff, "decode_image_fast", bad_decode)
        report = fuzz("delta", samples=3, seed=1, crash_dir=tmp_path)
        assert not report.ok
        assert report.saved and list(tmp_path.glob("*.npz"))
        replay = replay_crashes(tmp_path)
        assert not replay.ok and replay.mismatches

    def test_crash_exception_is_recorded_serializably(
        self, tmp_path, monkeypatch
    ):
        """A decode-path crash surfaces as a FailedItem-style JSON record
        with repr + traceback, and is saved for replay."""
        import repro.conformance.differential as diff

        def explode(enc, out=None):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(diff, "decode_image_fast", explode)
        report = fuzz("delta", samples=2, seed=1, crash_dir=tmp_path)
        assert report.crashes
        rec = report.crashes[0]
        assert "kernel exploded" in rec["error"]
        assert "explode" in rec["traceback"]
        assert report.saved

    def test_replay_rebuilds_exact_config(self, tmp_path):
        cfg = DeltaCodecConfig(block_size=2, mantissa_bits=3,
                               quality_gate=False)
        img = np.linspace(0, 1, 24, dtype=np.float32).reshape(2, 12)
        save_crash(tmp_path, "delta", img, cfg, kind="manual",
                   seed=None, case=0)
        from repro.conformance.fuzzer import _load_crash

        codec, data, meta = _load_crash(next(tmp_path.glob("*.npz")))
        assert codec == "delta"
        assert data.tobytes() == img.tobytes()
        assert meta["config"]["block_size"] == 2
        assert meta["config"]["mantissa_bits"] == 3
        assert meta["config"]["quality_gate"] is False
