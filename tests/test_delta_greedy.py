"""Tests for the greedy variable-length segmentation variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.encoding.delta import DeltaCodecConfig, encode_image
from repro.core.encoding.delta_greedy import (
    decode_image_greedy,
    encode_image_greedy,
    greedy_segments,
)
from repro.util.fp16 import decompose_float32

_INT32_MIN = np.iinfo(np.int32).min


def _smooth(h=8, w=200, seed=0):
    rng = np.random.default_rng(seed)
    return (np.cumsum(rng.normal(0, 0.01, (h, w)), axis=1) + 1.0).astype(
        np.float32
    )


class TestGreedySegments:
    def test_smooth_line_is_one_segment(self):
        diffs = np.full(100, 0.01, dtype=np.float32)
        _, E, _ = decompose_float32(diffs)
        segs = greedy_segments(E, np.isfinite(diffs), eoff_max=7)
        assert len(segs) == 1
        assert segs[0][:2] == (0, 100)
        assert segs[0][2] is not None

    def test_segments_partition_line(self):
        rng = np.random.default_rng(1)
        diffs = rng.normal(0, 1, 300).astype(np.float32)
        diffs[50] = np.nan
        diffs[200] = np.inf
        _, E, _ = decompose_float32(diffs)
        segs = greedy_segments(E, np.isfinite(diffs), 7)
        covered = []
        for s, e, _ in segs:
            covered.extend(range(s, e))
        assert covered == list(range(300))

    def test_nonfinite_marked_literal(self):
        diffs = np.array([0.1, np.nan, 0.1], dtype=np.float32)
        _, E, _ = decompose_float32(diffs)
        segs = greedy_segments(E, np.isfinite(diffs), 7)
        kinds = [emin is None for _, _, emin in segs]
        assert True in kinds

    def test_length_cap(self):
        diffs = np.full(600, 0.5, dtype=np.float32)
        _, E, _ = decompose_float32(diffs)
        segs = greedy_segments(E, np.isfinite(diffs), 7)
        assert all(e - s <= 255 for s, e, _ in segs)
        assert len(segs) == 3  # 255 + 255 + 90


class TestGreedyCodec:
    def test_roundtrip_accuracy(self):
        img = _smooth()
        cfg = DeltaCodecConfig()
        enc = encode_image_greedy(img, cfg)
        out = decode_image_greedy(enc).astype(np.float32)
        scale = np.abs(img).max()
        sig = np.abs(img) > 0.01 * scale
        rel = np.abs(out - img)[sig] / np.abs(img)[sig]
        assert rel.max() <= 0.055

    def test_fewer_descriptor_bytes_on_smooth_runs(self):
        # greedy spends ~2 bytes per long run; the block codec spends one
        # descriptor per 64-diff block
        img = _smooth(h=16, w=1024, seed=2)
        block = encode_image(img)
        greedy = encode_image_greedy(img)
        assert greedy.nbytes <= block.nbytes

    def test_const_and_raw_modes(self):
        rng = np.random.default_rng(3)
        img = np.empty((3, 64), dtype=np.float32)
        img[0] = 2.5
        img[1] = np.cumsum(rng.normal(0, 0.01, 64)) + 1
        img[2] = (rng.standard_normal(64)
                  * 10.0 ** rng.integers(-6, 6, 64).astype(float))
        enc = encode_image_greedy(img)
        out = decode_image_greedy(enc)
        assert np.all(out[0] == np.float16(2.5))
        assert np.array_equal(out[2], img[2].astype(np.float16))

    def test_nan_survives(self):
        img = _smooth(h=2, w=64)
        img[0, 10] = np.nan
        enc = encode_image_greedy(img)
        out = decode_image_greedy(enc)
        assert np.isnan(out[0, 10])

    def test_width_one(self):
        img = np.array([[3.5]], dtype=np.float32)
        out = decode_image_greedy(encode_image_greedy(img))
        assert out[0, 0] == np.float16(3.5)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            encode_image_greedy(np.zeros(4, dtype=np.float32))

    @given(
        hnp.arrays(
            np.float32,
            shape=st.tuples(st.integers(1, 4), st.integers(1, 80)),
            elements=st.floats(min_value=-1e4, max_value=1e4,
                               allow_nan=False, width=32),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_gate_property(self, img):
        cfg = DeltaCodecConfig()
        enc = encode_image_greedy(img, cfg)
        out = decode_image_greedy(enc).astype(np.float32)
        assert out.shape == img.shape
        scale = float(np.abs(img).max()) if img.size else 0.0
        if scale == 0.0 or scale < 1e-4:
            return
        sig = np.abs(img) > cfg.rel_floor * scale
        if sig.any():
            rel = np.abs(out - img)[sig] / np.abs(img)[sig]
            assert rel.max() <= cfg.rel_tol + 1e-3
