"""Tests for ``repro.ingest``: shards, recovery, manifests, sources.

The subsystem's acceptance criteria live in three files:

* here — the commit protocol (CRC-framed appends, torn-tail recovery),
  the content-hashed manifest chain, the pinned/live sources, and the
  grown-dataset epoch coordination;
* ``test_ingest_properties.py`` — hypothesis property tests over
  arbitrary interleavings and crash points;
* ``test_ingest_serve.py`` — the MANIFEST/EPOCH_MANIFEST wire ops and
  the cluster growth path.
"""

import json

import numpy as np
import pytest

from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.ingest import (
    AppendShard,
    FingerprintMismatch,
    IngestWriter,
    LiveIngestSource,
    ManifestEpochCoordinator,
    ManifestSource,
    ManifestStore,
    recover_directory,
    recover_shard,
    scan_shard,
    verify_manifest,
)
from repro.ingest.manifest import Manifest
from repro.pipeline import DataLoader, ListSource
from repro.pipeline.sources import CachedSource
from repro.serve.coordination import EpochCoordinator, ShardPlan
from repro.storage.cache import SampleCache


def blob(i: int, size: int = 40) -> bytes:
    return bytes([i % 251]) * (size + i)


@pytest.fixture()
def plugin():
    return DeepcamDeltaPlugin("cpu")


@pytest.fixture()
def samples():
    cfg = deepcam.DeepcamConfig(height=8, width=12, n_channels=2)
    return deepcam.generate_dataset(6, cfg, seed=5)


# -- shard framing and recovery -------------------------------------------


class TestShards:
    def test_roundtrip_scan(self, tmp_path):
        path = tmp_path / "s.rec"
        with AppendShard(path) as shard:
            offsets = [shard.append(blob(i)) for i in range(5)]
        scan = scan_shard(path)
        assert scan.n_records == 5
        assert scan.torn_bytes == 0
        assert scan.entries == offsets
        with open(path, "rb") as fh:
            for i, (offset, length) in enumerate(scan.entries):
                fh.seek(offset)
                assert fh.read(length) == blob(i)

    def test_scan_stops_at_end_offset(self, tmp_path):
        path = tmp_path / "s.rec"
        with AppendShard(path) as shard:
            shard.append(blob(0))
            boundary = shard.nbytes
            shard.append(blob(1))
        scan = scan_shard(path, end_offset=boundary)
        assert scan.n_records == 1
        assert scan.valid_end == boundary
        # a record whose frame does not fit wholly under the limit is out
        assert scan_shard(path, end_offset=boundary + 3).n_records == 1

    @pytest.mark.parametrize("tail", [b"\x01", b"\xff" * 11, b"\x00" * 200])
    def test_torn_tail_truncated(self, tmp_path, tail):
        path = tmp_path / "s.rec"
        with AppendShard(path) as shard:
            for i in range(3):
                shard.append(blob(i))
            committed = shard.nbytes
        with open(path, "ab") as fh:
            fh.write(tail)
        report = recover_shard(path)
        assert report.n_records == 3
        assert report.truncated_bytes == len(tail)
        assert path.stat().st_size == committed
        # idempotent
        again = recover_shard(path)
        assert again.truncated_bytes == 0

    def test_corrupted_payload_cuts_from_there(self, tmp_path):
        path = tmp_path / "s.rec"
        with AppendShard(path) as shard:
            shard.append(blob(0))
            keep = shard.nbytes
            shard.append(blob(1))
            shard.append(blob(2))
        data = bytearray(path.read_bytes())
        data[keep + 14] ^= 0xFF  # flip a byte inside record 1's payload
        path.write_bytes(data)
        scan = scan_shard(path)
        assert scan.n_records == 1
        assert scan.valid_end == keep
        recover_shard(path)
        assert path.stat().st_size == keep

    def test_reopen_resumes_after_recovery(self, tmp_path):
        path = tmp_path / "s.rec"
        with AppendShard(path) as shard:
            shard.append(blob(0))
        with open(path, "ab") as fh:
            fh.write(b"torn!")
        with AppendShard(path) as shard:
            assert shard.recovered_bytes == 5
            assert shard.n_records == 1
            shard.append(blob(1))
        scan = scan_shard(path)
        assert scan.n_records == 2 and scan.torn_bytes == 0


# -- writer + manifest chain ----------------------------------------------


class TestWriterAndManifests:
    def test_publish_and_replay(self, tmp_path):
        writer = IngestWriter(tmp_path, fingerprint={"f": 1})
        for i in range(4):
            writer.append(blob(i))
        m1 = writer.publish()
        for i in range(4, 6):
            writer.append(blob(i))
        m2 = writer.publish()
        writer.close()
        assert (m1.n_samples, m2.n_samples) == (4, 6)
        assert m2.parent == m1.manifest_id and m2.seq == m1.seq + 1
        with ManifestSource(tmp_path, m1) as src:
            assert len(src) == 4
            assert [src.read(i) for i in range(4)] == [blob(i) for i in range(4)]
            with pytest.raises(IndexError):
                src.read(4)  # appended after the pin: invisible

    def test_publish_idempotent(self, tmp_path):
        writer = IngestWriter(tmp_path, fingerprint={})
        writer.append(blob(0))
        m1 = writer.publish()
        m2 = writer.publish()
        writer.close()
        assert m1.manifest_id == m2.manifest_id
        assert len(ManifestStore(tmp_path).ids()) == 1

    def test_shards_roll_and_numbering_is_contiguous(self, tmp_path):
        writer = IngestWriter(tmp_path, fingerprint={}, shard_max_bytes=120)
        for i in range(9):
            writer.append(blob(i))
        manifest = writer.publish()
        writer.close()
        names = [s.name for s in manifest.shards]
        assert names == sorted(names)
        assert len(names) > 1
        assert names[0] == "shard-00000.rec"
        assert [int(n[6:11]) for n in names] == list(range(len(names)))
        assert manifest.n_samples == 9

    def test_reopen_continues_global_numbering(self, tmp_path):
        writer = IngestWriter(tmp_path, fingerprint={}, shard_max_bytes=120)
        for i in range(5):
            assert writer.append(blob(i)) == i
        writer.publish()
        writer.close()
        writer = IngestWriter(tmp_path, fingerprint={}, shard_max_bytes=120)
        assert writer.n_samples == 5
        assert writer.append(blob(5)) == 5
        writer.close()

    def test_fingerprint_enforced(self, tmp_path):
        IngestWriter(tmp_path, fingerprint={"codec": "delta"}).close()
        with pytest.raises(FingerprintMismatch):
            IngestWriter(tmp_path, fingerprint={"codec": "lut"})
        # omitting it adopts the persisted one
        writer = IngestWriter(tmp_path)
        assert writer.fingerprint == {"codec": "delta"}
        writer.close()

    def test_manifest_id_is_content_hash(self, tmp_path):
        writer = IngestWriter(tmp_path, fingerprint={"f": 1})
        writer.append(blob(0))
        manifest = writer.publish()
        writer.close()
        assert manifest.manifest_id == Manifest.compute_id(manifest.body())
        store = ManifestStore(tmp_path)
        path = store.dir / f"{manifest.manifest_id}.json"
        doc = json.loads(path.read_text())
        doc["shards"][0]["n_samples"] = 99  # tamper
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="content hash"):
            store.load(manifest.manifest_id)

    def test_recover_directory_after_crash(self, tmp_path):
        writer = IngestWriter(tmp_path, fingerprint={}, shard_max_bytes=120)
        for i in range(6):
            writer.append(blob(i))
        manifest = writer.publish()
        writer.flush(sync=True)
        with open(writer._open.path, "ab") as fh:
            fh.write(b"\x13\x37\x00")
        writer.close()  # abandoned mid-append
        torn = sum(r.truncated_bytes for r in recover_directory(tmp_path))
        assert torn == 3
        # the published view is intact and deep-verifiable? (raw blobs
        # here, so structural only)
        report = verify_manifest(tmp_path, manifest)
        assert report["ok"] and report["n_samples"] == 6
        reopened = IngestWriter(tmp_path, fingerprint={}, shard_max_bytes=120)
        assert reopened.n_samples == 6
        reopened.close()

    def test_verify_manifest_detects_missing_bytes(self, tmp_path):
        writer = IngestWriter(tmp_path, fingerprint={})
        writer.append(blob(0))
        writer.append(blob(1))
        manifest = writer.publish()
        writer.close()
        shard = tmp_path / manifest.shards[0].name
        with open(shard, "r+b") as fh:
            fh.truncate(manifest.shards[0].end_offset - 2)
        with pytest.raises(ValueError, match="manifest freezes"):
            verify_manifest(tmp_path, manifest)

    def test_deep_verify_real_containers(self, tmp_path, plugin, samples):
        writer = IngestWriter(tmp_path, fingerprint={"plugin": "deepcam"})
        for s in samples:
            writer.append_sample(plugin, s.data, s.label)
        manifest = writer.publish()
        writer.close()
        report = verify_manifest(tmp_path, manifest, deep=True)
        assert report["ok"] and report["deep"]


# -- sources ---------------------------------------------------------------


class TestSources:
    def test_manifest_source_refuses_mismatched_dir(self, tmp_path):
        writer = IngestWriter(tmp_path, fingerprint={})
        writer.append(blob(0))
        manifest = writer.publish()
        writer.close()
        shard = tmp_path / manifest.shards[0].name
        with open(shard, "r+b") as fh:
            fh.truncate(manifest.shards[0].end_offset - 1)
        with pytest.raises(ValueError, match="does not match manifest"):
            ManifestSource(tmp_path, manifest)

    def test_live_source_grows_on_demand(self, tmp_path):
        writer = IngestWriter(tmp_path, fingerprint={}, shard_max_bytes=120)
        for i in range(3):
            writer.append(blob(i))
        writer.flush()
        live = LiveIngestSource(tmp_path)
        assert len(live) == 3
        for i in range(3, 8):
            writer.append(blob(i))
        writer.flush()
        # a read past the stale length triggers the refresh
        assert live.read(7) == blob(7)
        assert len(live) == 8
        with pytest.raises(IndexError):
            live.read(8)
        live.close()
        writer.close()

    def test_live_source_never_serves_torn_tail(self, tmp_path):
        writer = IngestWriter(tmp_path, fingerprint={})
        writer.append(blob(0))
        writer.flush()
        with open(writer._open.path, "ab") as fh:
            fh.write(b"\xba\xad")  # torn frame start
            fh.flush()
        live = LiveIngestSource(tmp_path)
        assert len(live) == 1
        with pytest.raises(IndexError):
            live.read(1)
        live.close()
        writer.close()

    def test_prefix_stability_keeps_caches_valid(self, tmp_path):
        writer = IngestWriter(tmp_path, fingerprint={})
        for i in range(4):
            writer.append(blob(i))
        m1 = writer.publish()
        src1 = ManifestSource(tmp_path, m1)
        cached = CachedSource(src1, SampleCache(1e6))
        first = [cached.read(i) for i in range(4)]
        for i in range(4, 7):
            writer.append(blob(i))
        m2 = writer.publish()
        writer.close()
        # re-pin the cache's inner source to the grown snapshot: cached
        # entries keyed by global index stay correct
        cached.inner = ManifestSource(tmp_path, m2)
        assert [cached.read(i) for i in range(4)] == first
        assert cached.read(6) == blob(6)
        assert m2.shards[0].end_offset >= m1.shards[0].end_offset

    def test_sources_compose_with_loader(self, tmp_path, plugin, samples):
        writer = IngestWriter(tmp_path, fingerprint={})
        blobs = [plugin.encode(s.data, s.label) for s in samples]
        for b in blobs:
            writer.append(b)
        manifest = writer.publish()
        writer.close()
        reference = DataLoader(
            ListSource(blobs), plugin, batch_size=3, seed=2
        )
        with ManifestSource(tmp_path, manifest) as src:
            pinned = DataLoader(src, plugin, batch_size=3, seed=2)
            for (a, la), (b, lb) in zip(
                reference.batches(0), pinned.batches(0)
            ):
                assert a.tobytes() == b.tobytes()
                assert la.tobytes() == lb.tobytes()


# -- grown-dataset epoch coordination --------------------------------------


class TestGrownEpochs:
    def test_dynamic_coordinator_samples_n_once_per_epoch(self):
        sizes = iter([4, 9, 9])
        coord = EpochCoordinator(
            world_size=2, seed=0, n_samples_fn=lambda e: next(sizes)
        )
        a0 = coord.begin_epoch(0, 0)
        b0 = coord.begin_epoch(1, 0)  # cached: does not consume a size
        assert sorted(np.concatenate([a0, b0])) == list(range(4))
        a1 = coord.begin_epoch(0, 1)
        b1 = coord.begin_epoch(1, 1)
        assert sorted(np.concatenate([a1, b1])) == list(range(9))

    @pytest.mark.parametrize("world_size", [1, 2, 3, 5])
    @pytest.mark.parametrize("grown_n", [7, 8, 11, 12])
    def test_remainder_coverage_after_growth(self, world_size, grown_n):
        """Every epoch covers its grown [0, n) exactly once, remainder
        ranks included."""
        ns = {0: 5, 1: grown_n}
        coord = EpochCoordinator(
            world_size=world_size, seed=3, n_samples_fn=lambda e: ns[e]
        )
        for epoch, n in ns.items():
            shards = [
                coord.begin_epoch(r, epoch) for r in range(world_size)
            ]
            sizes = [len(s) for s in shards]
            assert max(sizes) - min(sizes) <= 1
            assert sorted(np.concatenate(shards)) == list(range(n))

    def test_exactly_one_of_plan_or_fn(self):
        with pytest.raises(ValueError):
            EpochCoordinator()
        with pytest.raises(ValueError):
            EpochCoordinator(
                ShardPlan(4, 1, 0), n_samples_fn=lambda e: 4
            )
        with pytest.raises(ValueError):
            EpochCoordinator(n_samples_fn=lambda e: 4)  # no world_size

    def test_manifest_coordinator_pins_latest_per_epoch(self, tmp_path):
        writer = IngestWriter(tmp_path, fingerprint={})
        for i in range(4):
            writer.append(blob(i))
        m1 = writer.publish()
        store = ManifestStore(tmp_path)
        coord = ManifestEpochCoordinator(store, world_size=2, seed=0)
        shards0 = [coord.begin_epoch(r, 0) for r in range(2)]
        assert coord.manifest_for(0).manifest_id == m1.manifest_id
        for i in range(4, 10):
            writer.append(blob(i))
        m2 = writer.publish()
        writer.close()
        # epoch 0 stays pinned to m1 even after growth
        assert sorted(np.concatenate(shards0)) == list(range(4))
        assert coord.manifest_for(0).manifest_id == m1.manifest_id
        shards1 = [coord.begin_epoch(r, 1) for r in range(2)]
        assert sorted(np.concatenate(shards1)) == list(range(10))
        assert coord.manifest_for(1).manifest_id == m2.manifest_id
        assert coord.pinned() == {0: m1.manifest_id, 1: m2.manifest_id}

    def test_manifest_coordinator_requires_a_publish(self, tmp_path):
        IngestWriter(tmp_path, fingerprint={}).close()
        coord = ManifestEpochCoordinator(ManifestStore(tmp_path))
        with pytest.raises(RuntimeError, match="publish"):
            coord.begin_epoch(0, 0)

    def test_loader_reconfigure_order_fn(self, plugin, samples):
        blobs = [plugin.encode(s.data, s.label) for s in samples]
        loader = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=1)
        builtin = [b.tobytes() for b, _ in loader.batches(0)]
        order = np.arange(len(blobs))[::-1].copy()
        loader.reconfigure(order_fn=lambda e: order)
        sequential = [b.tobytes() for b, _ in loader.batches(0)]
        assert sequential != builtin
        # None restores the built-in shuffle; omitting order_fn keeps it
        loader.reconfigure(batch_size=2)
        assert [b.tobytes() for b, _ in loader.batches(0)] == sequential
        loader.reconfigure(order_fn=None)
        assert [b.tobytes() for b, _ in loader.batches(0)] == builtin
