"""Shard-plan and epoch-coordination invariants.

The distributed-sampling contract: every sample index appears exactly
once per epoch across the union of rank shards; consecutive epochs
shuffle differently yet reproducibly from the seed; uneven
``n % world_size`` remainders are assigned deterministically.
"""

import numpy as np
import pytest

from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.pipeline import DataLoader, ListSource
from repro.serve import DataServer, EpochCoordinator, RemoteSource, ShardPlan


class TestShardPlan:
    @pytest.mark.parametrize(
        "n,world", [(12, 1), (12, 3), (13, 3), (17, 4), (5, 8), (1, 1)]
    )
    def test_every_index_exactly_once_per_epoch(self, n, world):
        plan = ShardPlan(n, world_size=world, seed=7)
        for epoch in (0, 1, 5):
            union = np.concatenate(
                [plan.shard(r, epoch) for r in range(world)]
            )
            assert sorted(union.tolist()) == list(range(n))

    @pytest.mark.parametrize("n,world", [(13, 3), (17, 4), (10, 3)])
    def test_remainder_ranks_are_deterministic(self, n, world):
        plan = ShardPlan(n, world_size=world, seed=0)
        sizes = plan.shard_sizes()
        assert sum(sizes) == n
        # first n % world ranks carry the extra sample
        base, extra = divmod(n, world)
        assert sizes == [base + 1] * extra + [base] * (world - extra)
        assert [len(plan.shard(r, 3)) for r in range(world)] == sizes

    def test_epochs_shuffle_differently(self):
        plan = ShardPlan(64, world_size=2, seed=1)
        orders = [plan.epoch_order(e) for e in range(4)]
        for a in range(len(orders)):
            for b in range(a + 1, len(orders)):
                assert not np.array_equal(orders[a], orders[b])

    def test_same_seed_reproduces_and_seeds_differ(self):
        a = ShardPlan(40, world_size=4, seed=9)
        b = ShardPlan(40, world_size=4, seed=9)
        c = ShardPlan(40, world_size=4, seed=10)
        for epoch in (0, 3):
            for rank in range(4):
                assert np.array_equal(a.shard(rank, epoch), b.shard(rank, epoch))
        assert not np.array_equal(a.epoch_order(0), c.epoch_order(0))

    def test_world_size_one_is_a_plain_shuffle(self):
        plan = ShardPlan(20, world_size=1, seed=2)
        shard = plan.shard(0, 0)
        assert np.array_equal(shard, plan.epoch_order(0))
        assert sorted(shard.tolist()) == list(range(20))

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(10, world_size=0)
        with pytest.raises(ValueError):
            ShardPlan(-1, world_size=1)
        plan = ShardPlan(10, world_size=2)
        with pytest.raises(ValueError):
            plan.shard(2, 0)
        with pytest.raises(ValueError):
            plan.shard(-1, 0)


class TestEpochCoordinator:
    def test_progress_and_stragglers(self):
        coord = EpochCoordinator(ShardPlan(12, world_size=3, seed=0))
        coord.begin_epoch(0, 0)
        coord.begin_epoch(1, 0)
        coord.begin_epoch(0, 1)
        assert coord.progress() == {0: 1, 1: 0}
        assert coord.min_epoch() == 0
        assert set(coord.stragglers()) == {1}

    def test_begin_epoch_returns_the_plan_shard(self):
        plan = ShardPlan(10, world_size=2, seed=4)
        coord = EpochCoordinator(plan)
        assert np.array_equal(coord.begin_epoch(1, 2), plan.shard(1, 2))

    def test_same_epoch_rerequest_is_idempotent(self):
        """A retried ``EPOCH`` call (client reconnect, retry decorator)
        must hand back the identical shard and leave progress unchanged."""
        coord = EpochCoordinator(ShardPlan(24, world_size=3, seed=11))
        first = coord.begin_epoch(1, 4)
        again = coord.begin_epoch(1, 4)
        assert np.array_equal(first, again)
        assert coord.progress() == {1: 4}
        assert coord.min_epoch() == 4
        assert coord.stragglers() == []

    def test_out_of_order_epoch_begins(self):
        """Epoch requests need not arrive in order (a restarted rank
        replays an earlier epoch): each call returns that epoch's exact
        shard, and progress tracks the *latest request*, not the max."""
        plan = ShardPlan(20, world_size=2, seed=3)
        coord = EpochCoordinator(plan)
        assert np.array_equal(coord.begin_epoch(0, 5), plan.shard(0, 5))
        # rank 0 drops back to epoch 2 — a restart-from-checkpoint replay
        assert np.array_equal(coord.begin_epoch(0, 2), plan.shard(0, 2))
        coord.begin_epoch(1, 5)
        assert coord.progress() == {0: 2, 1: 5}
        assert coord.min_epoch() == 2
        assert coord.stragglers() == [0]

    def test_rank_that_disappears_mid_epoch_reads_as_straggler(self):
        """A rank that stops requesting epochs (crashed trainer) pins
        ``min_epoch`` and shows up in ``stragglers()`` so operators see
        the stall, while surviving ranks keep advancing unobstructed."""
        plan = ShardPlan(30, world_size=3, seed=8)
        coord = EpochCoordinator(plan)
        for rank in range(3):
            coord.begin_epoch(rank, 0)
        assert coord.stragglers() == []  # everyone level: no stragglers
        # rank 2 dies; ranks 0 and 1 run ahead for several epochs
        for epoch in (1, 2, 3):
            for rank in (0, 1):
                shard = coord.begin_epoch(rank, epoch)
                assert np.array_equal(shard, plan.shard(rank, epoch))
        assert coord.min_epoch() == 0
        assert coord.stragglers() == [2]
        assert coord.progress() == {0: 3, 1: 3, 2: 0}
        # the dead rank's shard is never redistributed — coverage per
        # epoch is the plan's contract, so its slice stays reserved
        union = np.concatenate([plan.shard(r, 3) for r in range(3)])
        assert sorted(union.tolist()) == list(range(30))

    def test_thread_safety_smoke(self):
        import threading

        coord = EpochCoordinator(ShardPlan(100, world_size=8, seed=0))

        def worker(rank):
            for epoch in range(20):
                coord.begin_epoch(rank, epoch)

        threads = [
            threading.Thread(target=worker, args=(r,)) for r in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert coord.progress() == {r: 19 for r in range(8)}
        assert coord.min_epoch() == 19


class TestRemoteSharding:
    @pytest.fixture(scope="class")
    def served(self):
        cfg = deepcam.DeepcamConfig(height=16, width=24, n_channels=4)
        plugin = DeepcamDeltaPlugin("cpu")
        ds = deepcam.generate_dataset(13, cfg, seed=5)
        blobs = [plugin.encode(s.data, s.label) for s in ds]
        with DataServer(ListSource(blobs), world_size=3, seed=21) as server:
            yield plugin, blobs, server

    def test_epoch_rpc_matches_local_plan(self, served):
        _, blobs, server = served
        plan = ShardPlan(len(blobs), world_size=3, seed=21)
        with RemoteSource(*server.address) as src:
            for epoch in (0, 1):
                for rank in range(3):
                    assert np.array_equal(
                        src.epoch_shard(rank, epoch), plan.shard(rank, epoch)
                    )

    def test_epoch_rpc_rejects_bad_rank(self, served):
        _, _, server = served
        with RemoteSource(*server.address) as src:
            with pytest.raises(ValueError):
                src.epoch_shard(3, 0)

    def test_sharded_loaders_jointly_cover_the_dataset(self, served):
        """Rank loaders on ``order_fn`` shards decode every sample once."""
        plugin, blobs, server = served
        n = len(blobs)
        seen = []
        reference = {
            i: plugin.decode(blobs[i])[0].tobytes() for i in range(n)
        }
        with RemoteSource(*server.address) as src:
            for rank in range(3):
                loader = DataLoader(
                    src,
                    plugin,
                    batch_size=2,
                    order_fn=lambda epoch, r=rank: src.epoch_shard(r, epoch),
                )
                order = loader.epoch_order(0)
                pos = 0
                for batch, _labels in loader.batches(0):
                    for row in batch:
                        idx = int(order[pos])
                        assert row.tobytes() == reference[idx]
                        pos += 1
                seen.extend(order.tolist())
        assert sorted(seen) == list(range(n))
