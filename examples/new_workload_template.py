#!/usr/bin/env python
"""Apply the paper's methodology to a *new* scientific workload.

The conclusion of the paper: "our approach can be used as a template to
optimize a wide variety of SciML codes."  This example walks that template
on a workload the paper never saw — a synthetic ocean-model field (sea
surface temperature + salinity + current components) — using
:class:`repro.core.plugins.AutoPlugin`:

1. generate representative samples,
2. let the content analysis pick a codec (the §V step),
3. measure compression and decode accuracy,
4. feed the encoded samples through the standard pipeline into training.

Run:  python examples/new_workload_template.py
"""

import numpy as np
from scipy import ndimage

from repro.accel import SimulatedGpu, V100
from repro.core.plugins import AutoPlugin, choose_codec
from repro.ml import SGD, Trainer, WarmupSchedule, build_deepcam
from repro.ml.losses import softmax_cross_entropy
from repro.pipeline import DataLoader, ListSource


def generate_ocean_sample(seed: int, height: int = 48, width: int = 72):
    """A toy ocean snapshot: smooth basin-scale fields + eddy anomalies.

    Channels: SST (K), salinity (PSU), u/v currents (m/s); the label marks
    eddy cores (a 2-class segmentation task).
    """
    rng = np.random.default_rng(seed)
    fields = np.empty((4, height, width), dtype=np.float32)
    scales = [290.0, 35.0, 0.4, 0.4]
    for c, scale in enumerate(scales):
        base = ndimage.gaussian_filter1d(
            rng.normal(0, 1, height), sigma=height / 6
        )[:, None]
        noise = ndimage.gaussian_filter(
            rng.normal(0, 1, (height, width)), sigma=(2.0, 8.0), mode="wrap"
        )
        fields[c] = scale * (1 + 0.03 * base + 0.01 * noise)
    mask = np.zeros((height, width), dtype=np.int8)
    for _ in range(3):  # mesoscale eddies: sharp rotating anomalies
        cy, cx = rng.uniform(8, height - 8), rng.uniform(8, width - 8)
        r = rng.uniform(3, 6)
        yy, xx = np.mgrid[0:height, 0:width].astype(np.float32)
        d2 = (yy - cy) ** 2 + (xx - cx) ** 2
        env = np.exp(-d2 / (2 * r * r)).astype(np.float32)
        fields[0] -= 2.0 * env  # cold core
        rr = np.sqrt(d2) + 1e-3
        fields[2] += 0.8 * env * (-(yy - cy) / rr)
        fields[3] += 0.8 * env * ((xx - cx) / rr)
        mask[d2 <= r * r] = 1
    return fields, mask


def main() -> None:
    samples = [generate_ocean_sample(seed) for seed in range(12)]

    # --- step 1-2: content analysis picks the representation -------------
    choice = choose_codec(samples[0][0])
    print(f"content analysis: codec={choice.codec!r} ({choice.reason})")

    plugin = AutoPlugin(placement="gpu")
    blobs = [plugin.encode(f, m) for f, m in samples]
    raw = sum(f.nbytes for f, _ in samples)
    enc = sum(len(b) for b in blobs)
    print(f"compression: {raw / 1e6:.2f} MB raw -> {enc / 1e6:.2f} MB "
          f"({raw / enc:.2f}x)")

    # --- step 3: decode accuracy ------------------------------------------
    device = SimulatedGpu(spec=V100)
    tensor, _ = plugin.decode(blobs[0], device)
    f0 = samples[0][0]
    norm = ((f0 - f0.reshape(4, -1).mean(axis=1)[:, None, None])
            / f0.reshape(4, -1).std(axis=1)[:, None, None])
    sig = np.abs(norm) > 0.01 * np.abs(norm).max()
    rel = np.abs(tensor.astype(np.float32) - norm)[sig] / np.abs(norm)[sig]
    print(f"decode: dtype={tensor.dtype}, max rel err on significant values "
          f"{100 * rel.max():.2f}%, modeled V100 time "
          f"{device.busy_seconds * 1e6:.0f} us")

    # --- step 4: train an eddy detector through the pipeline --------------
    loader = DataLoader(ListSource(blobs), plugin, batch_size=2, seed=0,
                        device=device)
    model = build_deepcam(in_channels=4, n_classes=2, base_filters=4, seed=0)
    weights = np.array([1.0, 6.0], dtype=np.float32)
    trainer = Trainer(
        model,
        lambda p, t: softmax_cross_entropy(p, t, class_weights=weights),
        SGD(model.parameters(), WarmupSchedule(base_lr=0.05, warmup_steps=4),
            momentum=0.9),
        mixed_precision=True,
    )
    for epoch in range(8):
        loss = trainer.train_epoch(loader.batches(epoch))
        print(f"epoch {epoch}: eddy-segmentation CE {loss:.4f}")
    drop = trainer.history.epoch_losses[0] - trainer.history.epoch_losses[-1]
    print(f"loss dropped by {drop:.3f} through the auto-encoded pipeline — "
          "the template transfers.")


if __name__ == "__main__":
    main()
