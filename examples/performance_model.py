#!/usr/bin/env python
"""Explore the data-movement performance model beyond the studied systems.

The paper motivates its staging/batching experiments as a way to "explore
architectural configurations outside the studied systems."  This example
does exactly that with the calibrated model:

1. reproduce one Figure-10 row (CosmoFlow small set on Cori-V100),
2. sweep a hypothetical node's NVMe bandwidth to find where staging stops
   mattering, and
3. swap the CPU-GPU interconnect (PCIe3 → PCIe4 → NVLink) to see where the
   baseline becomes link-insensitive (the paper's V100-vs-A100 observation).

Run:  python examples/performance_model.py
"""

import dataclasses

from repro.accel.transfer import NVLINK, PCIE3, PCIE4
from repro.experiments.config import COSMOFLOW, DEEPCAM, cosmoflow_costs, deepcam_costs
from repro.experiments.harness import print_table
from repro.simulate import CORI_V100, TrainSimConfig, simulate_node
from repro.storage.filesystem import TierSpec


def _throughput(machine, workload, cost, placement, spg=128, staged=True,
                bs=4):
    cfg = TrainSimConfig(
        machine=machine, workload=workload, cost=cost, plugin_name="x",
        placement=placement, samples_per_gpu=spg, batch_size=bs,
        staged=staged, epochs=3, sim_samples_cap=48,
    )
    return simulate_node(cfg).node_samples_per_s


def figure10_row() -> None:
    print("=== Figure-10 row: CosmoFlow small set, Cori-V100 ===")
    costs = cosmoflow_costs()
    rows = []
    for bs in (1, 2, 4, 8):
        base = _throughput(CORI_V100, COSMOFLOW, costs["base"], "cpu", bs=bs)
        plug = _throughput(CORI_V100, COSMOFLOW, costs["plugin"], "gpu", bs=bs)
        rows.append([bs, base, plug, plug / base])
    print_table(["batch", "base (samples/s)", "plugin", "speedup"], rows)


def nvme_bandwidth_sweep() -> None:
    print("\n=== Hypothetical NVMe sweep: DeepCAM large set, staged ===")
    costs = deepcam_costs()
    rows = []
    for bw in (0.5, 1.0, 2.0, 3.4, 8.0, 26.0):
        nvme = TierSpec("nvme-x", read_bw_gbps=bw, write_bw_gbps=bw / 2,
                        latency_s=1e-4, capacity_bytes=16e12)
        machine = dataclasses.replace(CORI_V100, nvme=nvme)
        base = _throughput(machine, DEEPCAM, costs["base"], "cpu",
                           spg=1536, staged=True)
        plug = _throughput(machine, DEEPCAM, costs["gpu"], "gpu",
                           spg=1536, staged=True)
        rows.append([bw, base, plug, plug / base])
    print_table(["NVMe GB/s", "base", "gpu plugin", "speedup"], rows)
    print("-> once the NVMe stops starving the baseline, the residual "
          "speedup is pure preprocessing/link relief")


def interconnect_sweep() -> None:
    print("\n=== Hypothetical interconnect sweep: DeepCAM small set ===")
    costs = deepcam_costs()
    rows = []
    for link in (PCIE3, PCIE4, NVLINK):
        machine = dataclasses.replace(CORI_V100, link=link)
        base = _throughput(machine, DEEPCAM, costs["base"], "cpu", spg=192)
        plug = _throughput(machine, DEEPCAM, costs["gpu"], "gpu", spg=192)
        rows.append([link.name, base, plug, plug / base])
    print_table(["link", "base", "gpu plugin", "speedup"], rows)
    print("-> the baseline barely improves with a faster link when the CPU "
          "preprocessing path is the bottleneck — the paper's V100-vs-A100 "
          "observation")


if __name__ == "__main__":
    figure10_row()
    nvme_bandwidth_sweep()
    interconnect_sweep()
