#!/usr/bin/env python
"""Quickstart: encode, decode, and inspect both codecs in two minutes.

Walks the package's core loop on synthetic data:

1. generate a CosmoFlow-like sample and a DeepCAM-like sample,
2. encode each with its domain-specific codec,
3. decode on the "CPU" and on the simulated GPU,
4. report compression ratios, accuracy, and the fused-preprocessing win.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.accel import SimulatedGpu, V100
from repro.core.plugins import (
    CosmoflowBaselinePlugin,
    CosmoflowLutPlugin,
    DeepcamBaselinePlugin,
    DeepcamDeltaPlugin,
)
from repro.datasets import cosmoflow, deepcam


def cosmoflow_demo() -> None:
    print("=== CosmoFlow: lookup-table codec ===")
    sample = cosmoflow.generate_sample(
        cosmoflow.CosmoflowConfig(grid=32), seed=1
    )
    print(f"sample: {sample.data.shape} {sample.data.dtype} "
          f"({sample.data.nbytes / 1e6:.2f} MB), "
          f"labels (cosmological params): {np.round(sample.label, 3)}")

    base = CosmoflowBaselinePlugin()
    plugin = CosmoflowLutPlugin(placement="gpu")
    base_blob = base.encode(sample.data, sample.label)
    enc_blob = plugin.encode(sample.data, sample.label)
    print(f"baseline container: {len(base_blob) / 1e6:.2f} MB | "
          f"LUT container: {len(enc_blob) / 1e6:.2f} MB "
          f"({len(base_blob) / len(enc_blob):.1f}x smaller)")

    device = SimulatedGpu(spec=V100)
    decoded, _ = plugin.decode(enc_blob, device)
    reference = np.log1p(sample.data.astype(np.float32)).astype(np.float16)
    print(f"GPU decode (fused log1p on the lookup table): "
          f"dtype={decoded.dtype}, "
          f"bit-exact vs FP16 reference: {np.array_equal(decoded, reference)}")
    print(f"simulated V100 kernel time: {device.busy_seconds * 1e6:.1f} us "
          f"({[k.name for k in device.launches]})")


def deepcam_demo() -> None:
    print("\n=== DeepCAM: differential codec ===")
    sample = deepcam.generate_sample(
        deepcam.DeepcamConfig(height=96, width=144), seed=2
    )
    print(f"sample: {sample.data.shape} {sample.data.dtype} "
          f"({sample.data.nbytes / 1e6:.2f} MB), mask classes: "
          f"{np.unique(sample.label).tolist()}")

    base = DeepcamBaselinePlugin()
    plugin = DeepcamDeltaPlugin(placement="gpu")
    base_blob = base.encode(sample.data, sample.label)
    enc_blob = plugin.encode(sample.data, sample.label)
    print(f"baseline container: {len(base_blob) / 1e6:.2f} MB | "
          f"delta container: {len(enc_blob) / 1e6:.2f} MB "
          f"({len(base_blob) / len(enc_blob):.1f}x smaller)")

    device = SimulatedGpu(spec=V100)
    decoded, _ = plugin.decode(enc_blob, device)
    truth, _ = base.decode_cpu(base_blob)
    err = np.abs(decoded.astype(np.float32) - truth)
    rel = err / np.maximum(np.abs(truth), 1e-12)
    print(f"GPU decode: dtype={decoded.dtype}; values with >10% error: "
          f"{100 * np.mean(rel > 0.1):.2f}% (lossy, near-zero values only)")
    print(f"simulated V100 decode time: {device.busy_seconds * 1e3:.2f} ms")


if __name__ == "__main__":
    cosmoflow_demo()
    deepcam_demo()
