#!/usr/bin/env python
"""Train DeepCAM segmentation through the optimized pipeline, with staging.

Demonstrates the full storage path of Figure 1: HDF5-like sample files on a
simulated parallel file system, stage-in to a node-local "NVMe" tier, a
host-memory sample cache, the delta-codec GPU-placed decoder plugin, flip
augmentation, and mixed-precision training — plus per-pixel accuracy on
held-out samples.

Run:  python examples/train_deepcam.py [--samples 16] [--epochs 12]
"""

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.accel import SimulatedGpu, V100
from repro.core.plugins import DeepcamDeltaPlugin
from repro.datasets import deepcam
from repro.ml import SGD, Trainer, WarmupSchedule, build_deepcam
from repro.ml.losses import softmax, softmax_cross_entropy
from repro.pipeline import CachedSource, DataLoader, TierSource
from repro.pipeline.ops import RandomFlipOp
from repro.storage import SampleCache, Tier, TierSpec, stage_dataset

CLASS_WEIGHTS = np.array([1.0, 5.0, 2.0], dtype=np.float32)


def loss_fn(pred, target):
    return softmax_cross_entropy(pred, target, class_weights=CLASS_WEIGHTS)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--samples", type=int, default=16)
    ap.add_argument("--epochs", type=int, default=12)
    ap.add_argument("--batch-size", type=int, default=2)
    ap.add_argument("--height", type=int, default=32)
    ap.add_argument("--width", type=int, default=48)
    ap.add_argument("--channels", type=int, default=8)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    cfg = deepcam.DeepcamConfig(
        height=args.height, width=args.width, n_channels=args.channels
    )
    train_set = deepcam.generate_dataset(args.samples, cfg, seed=args.seed)
    val_set = deepcam.generate_dataset(4, cfg, seed=args.seed + 999)
    plugin = DeepcamDeltaPlugin(placement="gpu")

    with tempfile.TemporaryDirectory() as tmp:
        # Figure 1 storage path: shared FS -> stage-in -> node NVMe
        pfs = Tier(TierSpec("pfs", read_bw_gbps=0.5, write_bw_gbps=0.5,
                            latency_s=10e-3), Path(tmp) / "pfs")
        nvme = Tier(TierSpec("nvme", read_bw_gbps=3.2, write_bw_gbps=1.8,
                             latency_s=1e-4), Path(tmp) / "nvme")
        names = []
        for i, s in enumerate(train_set):
            pfs.write(f"sample_{i:04d}.rprs", plugin.encode(s.data, s.label))
            names.append(f"sample_{i:04d}.rprs")
        report = stage_dataset(pfs, nvme, names)
        print(f"staged {report.n_files} files "
              f"({report.total_bytes / 1e6:.2f} MB) in a modeled "
              f"{report.modeled_seconds:.2f}s")

        cache = SampleCache(capacity_bytes=256 * 1024 * 1024)
        source = CachedSource(TierSource(nvme, names), cache)
        device = SimulatedGpu(spec=V100)
        loader = DataLoader(
            source, plugin, batch_size=args.batch_size, shuffle=True,
            seed=args.seed, device=device,
            extra_ops=[RandomFlipOp(probability=0.5)],
        )

        model = build_deepcam(
            in_channels=args.channels, base_filters=4, seed=args.seed
        )
        print(f"model parameters: {model.n_parameters():,}")
        schedule = WarmupSchedule(base_lr=0.05, warmup_steps=4)
        trainer = Trainer(model, loss_fn, SGD(model.parameters(), schedule,
                                              momentum=0.9),
                          mixed_precision=True)
        t0 = time.perf_counter()
        for epoch in range(args.epochs):
            loss = trainer.train_epoch(loader.batches(epoch))
            print(f"epoch {epoch}: weighted CE {loss:.4f} "
                  f"(cache hit rate {cache.stats.hit_rate:.0%})")
        print(f"training took {time.perf_counter() - t0:.1f}s; "
              f"simulated GPU decode total "
              f"{device.busy_seconds * 1e3:.1f} ms")

    # held-out evaluation: per-class pixel recall
    correct = {c: 0 for c in range(deepcam.N_CLASSES)}
    total = {c: 0 for c in range(deepcam.N_CLASSES)}
    for s in val_set:
        blob = plugin.encode(s.data, s.label)
        tensor, mask = plugin.decode_cpu(blob)
        logits = model.forward(tensor[None].astype(np.float32),
                               training=False)
        pred = softmax(logits)[0].argmax(axis=0)
        for c in range(deepcam.N_CLASSES):
            sel = mask == c
            total[c] += int(sel.sum())
            correct[c] += int((pred[sel] == c).sum())
    names = {0: "background", 1: "cyclone", 2: "river"}
    print("validation per-class pixel recall:")
    for c in range(deepcam.N_CLASSES):
        recall = correct[c] / total[c] if total[c] else float("nan")
        print(f"  {names[c]:10s}: {recall:.1%} ({total[c]} px)")


if __name__ == "__main__":
    main()
