#!/usr/bin/env python
"""Train the CosmoFlow 3-D CNN end to end through the optimized pipeline.

The full paper workflow at laptop scale: synthetic universes → lookup-table
encoding → TFRecord-style files on a storage tier → DataLoader with the
GPU-placed decoder plugin → mixed-precision training of the 3-D CNN, with a
baseline (FP32, CPU log) run for comparison.

Run:  python examples/train_cosmoflow.py [--samples 24] [--epochs 6]
"""

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.accel import SimulatedGpu, V100
from repro.core.plugins import CosmoflowBaselinePlugin, CosmoflowLutPlugin
from repro.datasets import cosmoflow
from repro.ml import Adam, Trainer, WarmupSchedule, build_cosmoflow
from repro.ml.losses import mae_loss, mse_loss
from repro.pipeline import DataLoader, TfRecordSource
from repro.pipeline.ops import LabelTransformOp
from repro.storage import tfrecord


def make_dataset(n_samples: int, grid: int, seed: int):
    cfg = cosmoflow.CosmoflowConfig(
        grid=grid, n_particles=40_000, n_clusters=16
    )
    return cosmoflow.generate_dataset(n_samples, cfg, seed=seed)


def write_records(samples, plugin, path: Path) -> None:
    with tfrecord.TfRecordWriter(path) as w:
        for s in samples:
            w.write(plugin.encode(s.data, s.label))


def train(variant: str, record_path: Path, plugin, args) -> list[float]:
    device = SimulatedGpu(spec=V100) if plugin.placement == "gpu" else None
    loader = DataLoader(
        TfRecordSource(record_path), plugin, batch_size=args.batch_size,
        shuffle=True, seed=args.seed, device=device,
        extra_ops=[LabelTransformOp(cosmoflow.normalize_label)],
        num_workers=args.workers,
    )
    model = build_cosmoflow(
        grid=args.grid, n_conv_layers=4, base_filters=4,
        dense_units=(32, 16), seed=args.seed,
    )
    print(f"[{variant}] model parameters: {model.n_parameters():,}")
    schedule = WarmupSchedule(
        base_lr=1e-3, warmup_steps=4,
        decay_steps={args.epochs * 4: 0.25},
    )
    trainer = Trainer(model, mse_loss, Adam(model.parameters(), schedule),
                      mixed_precision=True)
    t0 = time.perf_counter()
    for epoch in range(args.epochs):
        loss = trainer.train_epoch(loader.batches(epoch))
        print(f"[{variant}] epoch {epoch}: train mse {loss:.4f}")
    elapsed = time.perf_counter() - t0
    # evaluate MAE (the MLPerf metric) on the training set
    mae = Trainer(model, mae_loss, Adam(model.parameters(), schedule),
                  mixed_precision=True).evaluate(loader.batches(0))
    print(f"[{variant}] done in {elapsed:.1f}s; MAE {mae:.4f}")
    print(f"[{variant}] stage times: "
          + ", ".join(f"{k}={v:.2f}s" for k, v in loader.stage_times().items()))
    if device is not None:
        print(f"[{variant}] simulated GPU decode time total: "
              f"{device.busy_seconds * 1e3:.1f} ms")
    return trainer.history.epoch_losses


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--samples", type=int, default=24)
    ap.add_argument("--epochs", type=int, default=6)
    ap.add_argument("--batch-size", type=int, default=4)
    ap.add_argument("--grid", type=int, default=16)
    ap.add_argument("--workers", type=int, default=0)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    samples = make_dataset(args.samples, args.grid, args.seed)
    print(f"generated {len(samples)} universes "
          f"({samples[0].data.nbytes / 1e3:.0f} kB raw each)")

    with tempfile.TemporaryDirectory() as tmp:
        base_path = Path(tmp) / "base.tfr"
        enc_path = Path(tmp) / "encoded.tfr"
        write_records(samples, CosmoflowBaselinePlugin(), base_path)
        write_records(samples, CosmoflowLutPlugin("gpu"), enc_path)
        print(f"on-disk: baseline {base_path.stat().st_size / 1e6:.2f} MB, "
              f"encoded {enc_path.stat().st_size / 1e6:.2f} MB")

        base_losses = train(
            "base/FP32", base_path, CosmoflowBaselinePlugin(), args
        )
        dec_losses = train(
            "decoded/FP16", enc_path, CosmoflowLutPlugin("gpu"), args
        )

    print("\nepoch-loss comparison (base vs decoded):")
    for e, (b, d) in enumerate(zip(base_losses, dec_losses)):
        print(f"  epoch {e}: {b:.4f} vs {d:.4f}")
    drift = max(abs(b - d) for b, d in zip(base_losses, dec_losses))
    print(f"max epoch-loss difference: {drift:.4f} "
          "(convergence preserved)" if drift < 0.1 * base_losses[0]
          else f"max epoch-loss difference: {drift:.4f}")


if __name__ == "__main__":
    main()
