#!/usr/bin/env python
"""Data-parallel CosmoFlow training with an emulated ring allreduce.

Mirrors the paper's distributed setup (Horovod/NCCL over the node's GPUs)
in one process: P model replicas, split global batches, gradients averaged
with a real ring reduce-scatter/all-gather, identical updates everywhere —
plus the modeled allreduce time a V100 NVLink ring would take per step.

Run:  python examples/distributed_training.py [--ranks 4]
"""

import argparse

import numpy as np

from repro.core.plugins import CosmoflowLutPlugin
from repro.datasets import cosmoflow
from repro.ml import WarmupSchedule, build_cosmoflow
from repro.ml.distributed import DataParallel, allreduce_bytes
from repro.ml.losses import mse_loss
from repro.pipeline import DataLoader, ListSource
from repro.pipeline.ops import LabelTransformOp


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--ranks", type=int, default=4)
    ap.add_argument("--samples", type=int, default=16)
    ap.add_argument("--epochs", type=int, default=5)
    ap.add_argument("--grid", type=int, default=8)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    cfg = cosmoflow.CosmoflowConfig(grid=args.grid, n_particles=5000,
                                    n_clusters=8)
    ds = cosmoflow.generate_dataset(args.samples, cfg, seed=args.seed)
    plugin = CosmoflowLutPlugin("cpu")
    blobs = [plugin.encode(s.data, s.label) for s in ds]
    loader = DataLoader(
        ListSource(blobs), plugin, batch_size=args.ranks * 2, seed=args.seed,
        extra_ops=[LabelTransformOp(cosmoflow.normalize_label)],
        drop_last=True,  # every step's batch must split across the ranks
    )

    def build(seed):
        return build_cosmoflow(grid=args.grid, n_conv_layers=2,
                               base_filters=2, dense_units=(8,),
                               seed=args.seed)

    dp = DataParallel(build, n_ranks=args.ranks)
    n_params = dp.replicas[0].n_parameters()
    # the paper's learning-rate recipe scales with the rank count
    schedule = WarmupSchedule(base_lr=2e-3, warmup_steps=4,
                              rank_scale=float(args.ranks) ** 0.5)
    momentum = {k: np.zeros_like(v)
                for k, v in dp.replicas[0].parameters().items()}
    step = {"n": 0}

    ar_bytes = allreduce_bytes(n_params)
    nvlink_bw = 45e9
    ar_time = 2 * (args.ranks - 1) / args.ranks * n_params * 4 / nvlink_bw

    print(f"{args.ranks} ranks, {n_params:,} parameters; ring allreduce "
          f"moves {ar_bytes / 1e6:.2f} MB/rank/step "
          f"(~{ar_time * 1e3:.2f} ms on an NVLink ring)")

    for epoch in range(args.epochs):
        losses = []
        for x, y in loader.batches(epoch):
            loss, grads = dp.forward_backward(
                x.astype(np.float32), y, mse_loss
            )
            lr = schedule.lr_at(step["n"])
            step["n"] += 1

            def sgd_step(params):
                for k, p in params.items():
                    v = momentum[k]
                    v *= 0.9
                    v -= lr * grads[k]
                    p += v

            dp.apply_update(sgd_step)
            losses.append(loss)
        print(f"epoch {epoch}: loss {np.mean(losses):.4f} "
              f"(lr {schedule.lr_at(step['n']):.2e})")

    # verify the replicas never diverged
    p0 = dp.replicas[0].parameters()
    for r, rep in enumerate(dp.replicas[1:], start=1):
        for k, v in rep.parameters().items():
            assert np.array_equal(v, p0[k]), f"rank {r} diverged at {k}"
    print("all replicas bit-identical after training ✓")


if __name__ == "__main__":
    main()
